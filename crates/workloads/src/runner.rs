//! Closed-loop multi-user workload execution (the paper's procedure).
//!
//! Section 6.1: workloads are run twice to warm up (populating access
//! statistics, learned cost models and the data placement), access
//! structures are pre-loaded into the co-processor memory until the
//! buffer is full, and then the measured run executes a *fixed total
//! number of queries* distributed over `users` parallel sessions.

use robustq_core::Strategy;
use robustq_engine::exec::metrics::QueryOutcome;
use robustq_engine::plan::PlanNode;
use robustq_engine::{
    CostModelKind, EngineError, ExecOptions, Executor, ModelUpdate, ParallelCtx, RunMetrics,
    StagingStats,
};
use robustq_sim::{FaultPlan, RetryPolicy, SimConfig, VirtualTime};
use robustq_storage::{ColumnId, Database};
use robustq_trace::{chrome_trace_json, MetricsRegistry, TraceData, Tracer};

/// Runner options.
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// Parallel user sessions sharing the workload.
    pub users: usize,
    /// Warm-up executions of the full workload before measuring.
    pub warmup_runs: usize,
    /// Pin the hottest columns into the co-processor cache before the
    /// measured run. Usually unnecessary — warm-up runs already leave the
    /// cache warm (it persists across runs) — but useful for hot-cache
    /// scenarios without warm-up, like Figure 1's hot case.
    pub preload_hot_columns: bool,
    /// Queries between data-placement background-job runs (0 = never).
    pub placement_update_period: usize,
    /// Admission control: maximum concurrently admitted queries.
    pub max_concurrent_queries: usize,
    /// Keep full results in the outcomes.
    pub capture_results: bool,
    /// Real-CPU parallelism for the hot kernels. Results and virtual-time
    /// figures are bit-identical across settings; only wall-clock changes.
    pub parallel: ParallelCtx,
    /// Deterministic fault injection for the *measured* run (warm-up runs
    /// are always fault-free so the trained state matches the clean run).
    pub fault: FaultPlan,
    /// Recovery policy for transient transfer faults.
    pub retry: RetryPolicy,
    /// Record a structured trace of the *measured* run (warm-up runs are
    /// never traced). Read it back from [`RunReport::trace`].
    pub trace: bool,
    /// Intra-operator sharding: split qualifying leaf scans into up to
    /// this many device-shards (0 disables; clamped to the co-processor
    /// count at admission, so `usize::MAX` means one shard per device).
    pub shard_ways: usize,
    /// Only scans whose estimated input is at least this many bytes are
    /// sharded (tiny scans gain nothing from a merge barrier).
    pub shard_min_bytes: f64,
    /// Cost model driving run-time placement estimates (DESIGN.md §15).
    /// Applies to warm-up *and* measured runs, so an adaptive model
    /// enters the measured run already trained.
    pub cost_model: CostModelKind,
    /// Chunked out-of-core staging for operators whose device footprint
    /// exceeds the co-processor heap (default off: abort to CPU).
    pub chunked_staging: bool,
}

/// Which phase of the Section 6.1 run procedure an [`ExecOptions`] set
/// is built for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunPhase {
    /// Warm-up executions: fault-free, untraced, results dropped.
    Warmup,
    /// The measured run: faults, tracing and result capture apply.
    Measured,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            users: 1,
            warmup_runs: 1,
            preload_hot_columns: false,
            placement_update_period: 1,
            max_concurrent_queries: usize::MAX,
            capture_results: false,
            parallel: ParallelCtx::serial(),
            fault: FaultPlan::disabled(),
            retry: RetryPolicy::default(),
            trace: false,
            shard_ways: 0,
            shard_min_bytes: 0.0,
            cost_model: CostModelKind::Static,
            chunked_staging: false,
        }
    }
}

impl RunnerConfig {
    /// Set the number of parallel sessions.
    pub fn with_users(mut self, users: usize) -> Self {
        self.users = users.max(1);
        self
    }

    /// Fully cold start: no warm-up, no pre-load.
    pub fn cold_cache(mut self) -> Self {
        self.preload_hot_columns = false;
        self.warmup_runs = 0;
        self
    }

    /// Pin the hottest columns before the measured run.
    pub fn with_preload(mut self) -> Self {
        self.preload_hot_columns = true;
        self
    }

    /// Admit at most `n` queries concurrently (admission control).
    pub fn with_admission_limit(mut self, n: usize) -> Self {
        self.max_concurrent_queries = n.max(1);
        self
    }

    /// Run the data-placement background job every `n` completed queries.
    pub fn with_placement_period(mut self, n: usize) -> Self {
        self.placement_update_period = n;
        self
    }

    /// Run the hot kernels with the given parallelism context.
    pub fn with_parallel(mut self, parallel: ParallelCtx) -> Self {
        self.parallel = parallel;
        self
    }

    /// Inject faults from `plan` during the measured run.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault = plan;
        self
    }

    /// Recover transient transfer faults under `retry`.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Record a structured trace of the measured run.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Shard qualifying leaf scans `ways` ways across the co-processor
    /// fleet; only scans of at least `min_bytes` estimated input qualify.
    pub fn with_sharding(mut self, ways: usize, min_bytes: f64) -> Self {
        self.shard_ways = ways;
        self.shard_min_bytes = min_bytes;
        self
    }

    /// Drive run-time placement with `model` (static regressions by
    /// default; [`CostModelKind::Adaptive`] for online EWMA refinement).
    pub fn with_cost_model(mut self, model: CostModelKind) -> Self {
        self.cost_model = model;
        self
    }

    /// Stage over-heap operators through the co-processor in chunks
    /// instead of aborting them to the CPU.
    pub fn with_chunked_staging(mut self) -> Self {
        self.chunked_staging = true;
        self
    }

    /// The executor options for one phase of the run procedure — the
    /// single place runner configuration maps onto [`ExecOptions`].
    /// `preload` stays empty here; the runner fills it for the measured
    /// run once it has ranked the hot columns.
    pub fn exec_options(&self, phase: RunPhase) -> ExecOptions {
        let measured = phase == RunPhase::Measured;
        ExecOptions {
            capture_results: measured && self.capture_results,
            placement_update_period: self.placement_update_period,
            max_concurrent_queries: self.max_concurrent_queries,
            preload: Vec::new(),
            parallel: self.parallel,
            fault: if measured { self.fault.clone() } else { FaultPlan::disabled() },
            retry: self.retry,
            shard_ways: self.shard_ways,
            shard_min_bytes: self.shard_min_bytes,
            queue_cap: usize::MAX,
            admission_timeout: VirtualTime::ZERO,
            cost_model: self.cost_model,
            chunked_staging: self.chunked_staging,
            tracer: if measured && self.trace {
                Tracer::new()
            } else {
                Tracer::disabled()
            },
        }
    }
}

/// Result of one measured workload run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Display name of the strategy that ran.
    pub strategy: &'static str,
    /// Number of parallel sessions.
    pub users: usize,
    /// Aggregated run metrics.
    pub metrics: RunMetrics,
    /// Per-query outcomes, in completion order.
    pub outcomes: Vec<QueryOutcome>,
    /// The measured run's event stream, when [`RunnerConfig::trace`] was
    /// set (`None` otherwise).
    pub trace: Option<TraceData>,
    /// Every cost-model observation of the measured run, in completion
    /// order (est-vs-actual audit; see [`ModelUpdate::relative_error`]).
    pub model_samples: Vec<ModelUpdate>,
    /// Chunked-staging counters of the measured run.
    pub staging: StagingStats,
}

impl RunReport {
    /// The Chrome `trace_event` JSON for the measured run (load it in
    /// Perfetto or `chrome://tracing`). `None` when the run was untraced.
    pub fn chrome_trace(&self) -> Option<String> {
        self.trace.as_ref().map(|t| chrome_trace_json(&t.events))
    }

    /// Counters and histograms derived from the measured run's event
    /// stream. `None` when the run was untraced.
    pub fn metrics_registry(&self) -> Option<MetricsRegistry> {
        self.trace.as_ref().map(|t| MetricsRegistry::from_events(&t.events))
    }

    /// Mean query latency.
    pub fn mean_latency(&self) -> VirtualTime {
        RunMetrics::mean_latency(&self.outcomes)
    }

    /// The `p`-th latency percentile (nearest-rank), `0.0 < p <= 100.0`.
    ///
    /// Returns zero for an empty outcome set.
    pub fn latency_percentile(&self, p: f64) -> VirtualTime {
        if self.outcomes.is_empty() {
            return VirtualTime::ZERO;
        }
        let mut lat: Vec<VirtualTime> =
            self.outcomes.iter().map(|o| o.latency).collect();
        lat.sort();
        let p = p.clamp(f64::MIN_POSITIVE, 100.0);
        let rank = ((p / 100.0) * lat.len() as f64).ceil() as usize;
        lat[rank.saturating_sub(1)]
    }

    /// Median query latency.
    pub fn median_latency(&self) -> VirtualTime {
        self.latency_percentile(50.0)
    }

    /// 95th-percentile latency — the tail the paper's worst-case-execution
    /// -time argument is about.
    pub fn p95_latency(&self) -> VirtualTime {
        self.latency_percentile(95.0)
    }

    /// Latency of the `k`-th query of the original workload list (queries
    /// are distributed round-robin over sessions).
    pub fn latency_of_query(&self, k: usize) -> Option<VirtualTime> {
        let session = k % self.users;
        let seq = k / self.users;
        self.outcomes
            .iter()
            .find(|o| o.session == session && o.seq == seq)
            .map(|o| o.latency)
    }

    /// Mean latency over every repetition of original workload index
    /// `k mod workload_len` (useful when the workload list is the same
    /// query set repeated).
    pub fn mean_latency_of_slot(&self, slot: usize, workload_len: usize) -> VirtualTime {
        let mut total = 0u64;
        let mut n = 0u64;
        let mut k = slot;
        while let Some(l) = self.latency_of_query(k) {
            total += l.as_nanos();
            n += 1;
            k += workload_len;
        }
        match total.checked_div(n) {
            Some(mean) => VirtualTime::from_nanos(mean),
            None => VirtualTime::ZERO,
        }
    }
}

/// The workload runner: a database plus a simulated machine.
pub struct WorkloadRunner<'a> {
    db: &'a Database,
    config: SimConfig,
}

impl<'a> WorkloadRunner<'a> {
    /// A runner over `db` and the given machine.
    pub fn new(db: &'a Database, config: SimConfig) -> Self {
        WorkloadRunner { db, config }
    }

    /// The simulated machine configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Distribute `queries` round-robin over `users` sessions.
    pub fn sessions(queries: &[PlanNode], users: usize) -> Vec<Vec<PlanNode>> {
        let users = users.max(1);
        let mut sessions: Vec<Vec<PlanNode>> = vec![Vec::new(); users];
        for (i, q) in queries.iter().enumerate() {
            sessions[i % users].push(q.clone());
        }
        sessions
    }

    /// The hottest columns by access count, greedily packed into
    /// `capacity` bytes (the Section 6.1 pre-load).
    pub fn hot_columns(db: &Database, capacity: u64) -> Vec<ColumnId> {
        let stats = db.stats();
        let mut ranked: Vec<(ColumnId, u64)> = db
            .all_column_ids()
            .map(|id| (id, stats.access_count(id.index())))
            .filter(|&(_, c)| c > 0)
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut budget = capacity;
        let mut out = Vec::new();
        for (id, _) in ranked {
            let bytes = db.column_size(id);
            if bytes <= budget {
                budget -= bytes;
                out.push(id);
            }
        }
        out
    }

    /// Run `queries` (the fixed total workload) under `strategy`.
    ///
    /// Access statistics are reset first so strategies are compared
    /// fairly; warm-up runs then repopulate them, learned cost models and
    /// the data placement, before the measured run.
    pub fn run(
        &self,
        queries: &[PlanNode],
        strategy: Strategy,
        cfg: &RunnerConfig,
    ) -> Result<RunReport, EngineError> {
        let mut policy = strategy.build();
        self.run_with_policy(queries, policy.as_mut(), strategy.name(), cfg)
    }

    /// Like [`WorkloadRunner::run`] with a caller-constructed policy
    /// (custom data-placement budgets, slot overrides, …).
    pub fn run_with_policy(
        &self,
        queries: &[PlanNode],
        policy: &mut dyn robustq_engine::PlacementPolicy,
        label: &'static str,
        cfg: &RunnerConfig,
    ) -> Result<RunReport, EngineError> {
        self.db.stats().reset();
        let executor = Executor::new(self.db, self.config.clone());
        // The caches persist across warm-up and measured runs, exactly
        // like device memory across the paper's warm-up executions.
        let mut cache = robustq_sim::CacheSet::for_topology(
            &self.config.topology,
            self.config.cache_policy,
        );

        let warm_opts = cfg.exec_options(RunPhase::Warmup);
        for _ in 0..cfg.warmup_runs {
            executor.run_with_cache(
                Self::sessions(queries, cfg.users),
                policy,
                &warm_opts,
                &mut cache,
            )?;
        }

        let mut opts = cfg.exec_options(RunPhase::Measured);
        if cfg.preload_hot_columns {
            opts.preload = Self::hot_columns(self.db, self.config.gpu().cache_bytes);
        }
        let tracer = opts.tracer.clone();
        let out = executor.run_with_cache(
            Self::sessions(queries, cfg.users),
            policy,
            &opts,
            &mut cache,
        )?;
        Ok(RunReport {
            strategy: label,
            users: cfg.users,
            metrics: out.metrics,
            outcomes: out.outcomes,
            trace: tracer.is_enabled().then(|| tracer.take()),
            model_samples: out.model_samples,
            staging: out.staging,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::micro;
    use robustq_storage::gen::ssb::SsbGenerator;

    fn db() -> Database {
        SsbGenerator::new(1).with_rows_per_sf(2_000).generate()
    }

    #[test]
    fn sessions_distribute_round_robin() {
        let q = micro::parallel_selection_workload(7);
        let s = WorkloadRunner::sessions(&q, 3);
        assert_eq!(s.len(), 3);
        assert_eq!(s[0].len(), 3);
        assert_eq!(s[1].len(), 2);
        assert_eq!(s[2].len(), 2);
    }

    #[test]
    fn run_cpu_only_micro_workload() {
        let db = db();
        let runner = WorkloadRunner::new(&db, SimConfig::default());
        let queries = micro::parallel_selection_workload(6);
        let report = runner
            .run(&queries, Strategy::CpuOnly, &RunnerConfig::default().with_users(2))
            .unwrap();
        assert_eq!(report.outcomes.len(), 6);
        assert_eq!(report.metrics.h2d_bytes, 0);
        assert!(report.mean_latency() > VirtualTime::ZERO);
    }

    #[test]
    fn latency_slot_mapping() {
        let db = db();
        let runner = WorkloadRunner::new(&db, SimConfig::default());
        let queries = micro::parallel_selection_workload(4);
        let report = runner
            .run(&queries, Strategy::CpuOnly, &RunnerConfig::default().with_users(2))
            .unwrap();
        for k in 0..4 {
            assert!(report.latency_of_query(k).is_some(), "query {k}");
        }
        assert!(report.latency_of_query(4).is_none());
        assert!(report.mean_latency_of_slot(0, 4) > VirtualTime::ZERO);
    }

    #[test]
    fn warmup_trains_data_driven_placement() {
        let db = db();
        let runner = WorkloadRunner::new(&db, SimConfig::default());
        let queries = micro::serial_selection_workload(2);
        let report = runner
            .run(&queries, Strategy::DataDrivenChopping, &RunnerConfig::default())
            .unwrap();
        assert_eq!(report.outcomes.len(), 16);
        // After warmup the filter columns are pinned, so the measured run
        // executes selections on the GPU.
        assert!(
            report.metrics.ops_completed[robustq_sim::DeviceId::Gpu] > 0,
            "expected co-processor work after warmup"
        );
    }

    #[test]
    fn latency_percentiles() {
        use robustq_engine::exec::metrics::QueryOutcome;
        let mk = |ms: u64| QueryOutcome {
            session: 0,
            seq: 0,
            latency: VirtualTime::from_millis(ms),
            admit_wait: VirtualTime::ZERO,
            rows: 0,
            checksum: 0,
            faults: Default::default(),
            result: None,
        };
        let report = RunReport {
            strategy: "test",
            users: 1,
            metrics: RunMetrics::default(),
            outcomes: (1..=100).map(mk).collect(),
            trace: None,
            model_samples: vec![],
            staging: StagingStats::default(),
        };
        assert_eq!(report.median_latency(), VirtualTime::from_millis(50));
        assert_eq!(report.p95_latency(), VirtualTime::from_millis(95));
        assert_eq!(report.latency_percentile(100.0), VirtualTime::from_millis(100));
        assert_eq!(report.latency_percentile(1.0), VirtualTime::from_millis(1));

        let empty = RunReport {
            strategy: "empty",
            users: 1,
            metrics: RunMetrics::default(),
            outcomes: vec![],
            trace: None,
            model_samples: vec![],
            staging: StagingStats::default(),
        };
        assert_eq!(empty.p95_latency(), VirtualTime::ZERO);
    }

    #[test]
    fn hot_columns_respect_budget() {
        let db = db();
        for (c, _, _) in micro::SERIAL_SELECTIONS {
            let id = db.column_id("lineorder", c).unwrap();
            db.stats().record_access(id.index());
        }
        let cols = WorkloadRunner::hot_columns(&db, 3 * 8_000);
        assert!(!cols.is_empty());
        let total: u64 = cols.iter().map(|&c| db.column_size(c)).sum();
        assert!(total <= 3 * 8_000);
    }

    #[test]
    fn admission_control_config_plumbs_through() {
        let db = db();
        let runner = WorkloadRunner::new(&db, SimConfig::default());
        let queries = micro::parallel_selection_workload(4);
        let cfg = RunnerConfig::default().with_users(4).with_admission_limit(1);
        let report = runner.run(&queries, Strategy::GpuPreferred, &cfg).unwrap();
        assert_eq!(report.outcomes.len(), 4);
    }
}
