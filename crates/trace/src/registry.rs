//! Counter / histogram registry derived from the event stream.
//!
//! The registry is a *view* over [`TraceEvent`]s — build it after a run
//! with [`MetricsRegistry::from_events`]. Histograms use power-of-two
//! buckets (bucket `i` holds values in `[2^(i-1), 2^i)`), which is exact
//! enough for latency/queue-wait/transfer-size distributions while
//! staying allocation-light and deterministic.

use crate::event::{OpOutcome, TraceEvent};
use robustq_sim::{Direction, DeviceId};
use std::collections::BTreeMap;
use std::fmt;

/// A power-of-two-bucket histogram over `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// `buckets[i]` counts samples with `bit_length(v) == i` (bucket 0 is
    /// exactly the value zero).
    buckets: [u64; 65],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; 65], count: 0, sum: 0, min: 0, max: 0 }
    }
}

impl Histogram {
    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        let idx = (64 - value.leading_zeros()) as usize;
        self.buckets[idx] += 1;
        if self.count == 0 || value < self.min {
            self.min = value;
        }
        self.max = self.max.max(value);
        self.count += 1;
        self.sum += value as u128;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest sample (zero when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest sample (zero when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value (zero when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Non-empty `(bucket_upper_bound, count)` pairs, ascending. The
    /// upper bound of bucket `i` is `2^i - 1`... i.e. all values with at
    /// most `i` significant bits.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| {
                let hi = if i >= 64 { u64::MAX } else { (1u64 << i) - 1 };
                (hi, c)
            })
            .collect()
    }
}

/// Counters and histograms derived from one run's event stream.
///
/// Counter names are owned strings because per-device counters
/// (`ops_completed_gpu2`, …) are minted from the device ordinal; the
/// classic `ops_completed_cpu`/`ops_completed_gpu` names are stable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    /// Build the registry from an event stream.
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut reg = MetricsRegistry::default();
        for ev in events {
            match *ev {
                TraceEvent::QueryDone { submit, admit, end, .. } => {
                    reg.bump("queries", 1);
                    reg.histogram("query_latency_ns")
                        .record(end.saturating_sub(submit).as_nanos());
                    reg.histogram("admission_wait_ns")
                        .record(admit.saturating_sub(submit).as_nanos());
                    reg.histogram("query_service_ns")
                        .record(end.saturating_sub(admit).as_nanos());
                }
                TraceEvent::QueryShed { submit, at, .. } => {
                    reg.bump("queries_shed", 1);
                    reg.histogram("shed_wait_ns")
                        .record(at.saturating_sub(submit).as_nanos());
                }
                TraceEvent::OpSpan { device, queued_at, start, end, outcome, .. } => {
                    reg.histogram("op_queue_wait_ns")
                        .record(start.saturating_sub(queued_at).as_nanos());
                    match outcome {
                        OpOutcome::Completed => {
                            if device == DeviceId::Cpu {
                                reg.bump("ops_completed_cpu", 1);
                            } else if device == DeviceId::Gpu {
                                reg.bump("ops_completed_gpu", 1);
                            } else {
                                reg.bump_owned(
                                    format!("ops_completed_gpu{}", device.index()),
                                    1,
                                );
                            }
                            reg.histogram("op_span_ns")
                                .record(end.saturating_sub(start).as_nanos());
                        }
                        OpOutcome::Aborted { .. } => reg.bump("op_aborts", 1),
                    }
                }
                TraceEvent::Transfer { dir, bytes, service, .. } => {
                    reg.histogram(match dir {
                        Direction::HostToDevice => "transfer_bytes_h2d",
                        Direction::DeviceToHost => "transfer_bytes_d2h",
                    })
                    .record(bytes);
                    reg.histogram("transfer_service_ns").record(service.as_nanos());
                }
                TraceEvent::CacheProbe { hit, .. } => {
                    reg.bump(if hit { "cache_hits" } else { "cache_misses" }, 1)
                }
                TraceEvent::CacheEvict { .. } => reg.bump("cache_evictions", 1),
                TraceEvent::Fault { .. } => reg.bump("faults_injected", 1),
                TraceEvent::Retry { .. } => reg.bump("transfer_retries", 1),
                TraceEvent::Placement { .. } => reg.bump("placement_decisions", 1),
                TraceEvent::ShardFanout { shards, .. } => {
                    reg.bump("shard_fanouts", 1);
                    reg.bump("shards_spawned", shards as u64);
                }
                TraceEvent::ShardMerge { start, end, .. } => {
                    reg.bump("shard_merges", 1);
                    reg.histogram("shard_merge_ns")
                        .record(end.saturating_sub(start).as_nanos());
                }
                TraceEvent::ModelUpdate { predicted, actual, .. } => {
                    reg.bump("model_updates", 1);
                    reg.histogram("model_abs_error_ns").record(
                        predicted
                            .saturating_sub(actual)
                            .max(actual.saturating_sub(predicted))
                            .as_nanos(),
                    );
                }
                TraceEvent::OpStaged { chunks, .. } => {
                    reg.bump("staged_ops", 1);
                    reg.bump("staged_chunks", chunks as u64);
                }
                TraceEvent::Append { rows, bytes, .. } => {
                    reg.bump("appends", 1);
                    reg.bump("append_rows", rows);
                    reg.histogram("append_bytes").record(bytes);
                }
                TraceEvent::EpochSeal { .. } => reg.bump("epoch_seals", 1),
                TraceEvent::WindowFire { lo, hi, .. } => {
                    reg.bump("window_fires", 1);
                    reg.histogram("window_rows").record(hi.saturating_sub(lo));
                }
                TraceEvent::QuerySubmit { .. }
                | TraceEvent::CacheInsert { .. }
                | TraceEvent::HeapAlloc { .. }
                | TraceEvent::HeapFree { .. } => {}
            }
        }
        reg
    }

    fn bump(&mut self, name: &str, by: u64) {
        if let Some(v) = self.counters.get_mut(name) {
            *v += by;
        } else {
            self.counters.insert(name.to_string(), by);
        }
    }

    fn bump_owned(&mut self, name: String, by: u64) {
        *self.counters.entry(name).or_insert(0) += by;
    }

    fn histogram(&mut self, name: &'static str) -> &mut Histogram {
        self.histograms.entry(name).or_default()
    }

    /// The counter `name` (zero when never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The histogram `name`, if any samples were recorded.
    pub fn get_histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(&k, v)| (k, v))
    }
}

impl fmt::Display for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "counters:")?;
        for (name, v) in &self.counters {
            writeln!(f, "  {name:<24} {v}")?;
        }
        writeln!(f, "histograms:")?;
        for (name, h) in &self.histograms {
            writeln!(
                f,
                "  {name:<24} n={} min={} mean={:.1} max={}",
                h.count(),
                h.min(),
                h.mean(),
                h.max()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robustq_sim::{CacheKey, OpClass, VirtualTime};

    #[test]
    fn histogram_buckets_by_bit_length() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.sum(), 1010);
        // 0 → bucket 0; 1 → 1; 2,3 → 2; 4 → 3; 1000 → 10.
        assert_eq!(
            h.nonzero_buckets(),
            vec![(0, 1), (1, 1), (3, 2), (7, 1), (1023, 1)]
        );
    }

    #[test]
    fn registry_counts_by_kind() {
        let t = VirtualTime::from_micros;
        let events = vec![
            TraceEvent::CacheProbe { device: DeviceId::Gpu, key: CacheKey(1), bytes: 8, hit: false, at: t(0) },
            TraceEvent::CacheProbe { device: DeviceId::Gpu, key: CacheKey(1), bytes: 8, hit: true, at: t(1) },
            TraceEvent::OpSpan {
                query: 0,
                task: 0,
                op: OpClass::Selection,
                device: DeviceId::Gpu,
                queued_at: t(0),
                start: t(1),
                end: t(3),
                bytes_in: 8,
                bytes_out: 4,
                rows_out: 1,
                outcome: OpOutcome::Completed,
            },
            TraceEvent::QueryDone {
                query: 0,
                session: 0,
                seq: 0,
                submit: t(0),
                admit: t(1),
                end: t(4),
                rows: 1,
            },
            TraceEvent::QueryShed {
                session: 1,
                seq: 0,
                submit: t(2),
                reason: crate::event::ShedReason::QueueFull,
                at: t(5),
            },
        ];
        let reg = MetricsRegistry::from_events(&events);
        assert_eq!(reg.counter("cache_hits"), 1);
        assert_eq!(reg.counter("cache_misses"), 1);
        assert_eq!(reg.counter("ops_completed_gpu"), 1);
        assert_eq!(reg.counter("queries"), 1);
        assert_eq!(reg.counter("queries_shed"), 1);
        assert_eq!(reg.counter("never_bumped"), 0);
        let lat = reg.get_histogram("query_latency_ns").unwrap();
        assert_eq!(lat.count(), 1);
        assert_eq!(lat.max(), 4_000);
        assert_eq!(reg.get_histogram("admission_wait_ns").unwrap().max(), 1_000);
        assert_eq!(reg.get_histogram("query_service_ns").unwrap().max(), 3_000);
        assert_eq!(reg.get_histogram("shed_wait_ns").unwrap().max(), 3_000);
        assert_eq!(reg.get_histogram("op_queue_wait_ns").unwrap().max(), 1_000);
        assert!(reg.to_string().contains("query_latency_ns"));
    }
}
