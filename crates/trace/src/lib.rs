#![warn(missing_docs)]

//! Structured tracing and metrics keyed to virtual time (DESIGN.md §10).
//!
//! The paper's whole argument is about *explaining* where virtual time
//! goes — transfer stalls, aborted co-processor operators, placement
//! decisions. This crate records those explanations as typed events:
//!
//! * [`event::TraceEvent`] — operator/transfer/query spans, cache and
//!   heap activity, fault injections and placement-decision records,
//!   every one stamped with deterministic [`robustq_sim::VirtualTime`];
//! * [`tracer::Tracer`] — the cheap cloneable handle the executor
//!   threads through the simulation: a single-branch no-op when disabled
//!   (no allocations, runs byte-identical to untraced builds), a bounded
//!   ring buffer when enabled;
//! * [`chrome`] — a Chrome `trace_event` JSON exporter (one lane per
//!   device, per transfer direction and per session; loads in Perfetto);
//! * [`registry::MetricsRegistry`] — counters and power-of-two-bucket
//!   histograms (latency, queue wait, transfer sizes) derived from the
//!   event stream;
//! * [`lint`] — the validation behind the `trace-lint` tool: well-formed
//!   JSON, monotone timestamps per lane, balanced span nesting.
//!
//! Because events carry only virtual-time stamps and scalar payloads,
//! the stream for a given seed is byte-identical across kernel worker
//! counts and replayable under fault plans.

pub mod chrome;
pub mod event;
pub mod json;
pub mod lint;
pub mod registry;
pub mod tracer;

pub use chrome::chrome_trace_json;
pub use event::{
    EstVec, FaultKind, OpOutcome, PlacePhase, PlaceReason, ShedReason, TraceEvent, TransferKind,
};
pub use lint::{lint_chrome_trace, LintReport};
pub use registry::{Histogram, MetricsRegistry};
pub use tracer::{TraceData, Tracer};
