//! Validation of exported Chrome `trace_event` documents.
//!
//! `trace-lint` (the `robustq-bench` bin wrapping [`lint_chrome_trace`])
//! checks what a timeline viewer silently tolerates but CI should not:
//!
//! 1. the document is well-formed JSON with a `traceEvents` array,
//! 2. every event carries `name`/`ph`/`ts`/`pid`/`tid` of the right
//!    types (and `dur >= 0` for `X` events),
//! 3. timestamps are monotone non-decreasing per `(pid, tid)` lane,
//! 4. `B`/`E` span nesting is balanced per lane (every `E` matches the
//!    most recent open `B`, nothing left open at the end),
//! 5. shard spans are well-formed (DESIGN.md §12): every `X` span named
//!    `shard q<q> t<t>` — one sharded operator's fan-out → merge window —
//!    contains, on the same lane, a matching `merge q<q> t<t>` span, and
//!    every merge span lies inside its fan-out span (no orphan merges).

use crate::json::{parse, Json};
use std::collections::BTreeMap;

/// Summary of a successfully linted document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LintReport {
    /// Events in `traceEvents` (including metadata records).
    pub events: usize,
    /// Distinct `(pid, tid)` lanes.
    pub lanes: usize,
    /// `X` (complete) events checked.
    pub complete_spans: usize,
    /// Matched `B`/`E` pairs.
    pub span_pairs: usize,
    /// Shard fan-out spans validated against their merges.
    pub shard_spans: usize,
}

fn field_num(e: &Json, key: &str) -> Result<f64, String> {
    e.get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| format!("event missing numeric '{key}': {e:?}"))
}

fn field_str<'a>(e: &'a Json, key: &str) -> Result<&'a str, String> {
    e.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("event missing string '{key}': {e:?}"))
}

/// Lint `src` as a Chrome `trace_event` JSON document.
pub fn lint_chrome_trace(src: &str) -> Result<LintReport, String> {
    let doc = parse(src).map_err(|e| format!("malformed JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("document has no traceEvents array")?;

    let mut last_ts: BTreeMap<(u64, u64), f64> = BTreeMap::new();
    let mut open_spans: BTreeMap<(u64, u64), Vec<String>> = BTreeMap::new();
    let mut complete_spans = 0usize;
    let mut span_pairs = 0usize;
    // Shard/merge `X` spans keyed by (lane, "q<q> t<t>" id) with their
    // [start, end] intervals, cross-checked after the pass. Endpoints are
    // held in integer nanoseconds — the exporter emits exact
    // µs-with-3-decimals timestamps, and summing `ts + dur` in f64 can
    // put two spans sharing a real endpoint one ULP apart, which exact
    // containment checks would misread as an overhang.
    let mut shard_x: Vec<((u64, u64), String, i64, i64)> = Vec::new();
    let mut merge_x: Vec<((u64, u64), String, i64, i64)> = Vec::new();
    let ns = |us: f64| (us * 1_000.0).round() as i64;

    for (i, e) in events.iter().enumerate() {
        let name = field_str(e, "name").map_err(|err| format!("event {i}: {err}"))?;
        let ph = field_str(e, "ph").map_err(|err| format!("event {i}: {err}"))?;
        let ts = field_num(e, "ts").map_err(|err| format!("event {i}: {err}"))?;
        let pid = field_num(e, "pid").map_err(|err| format!("event {i}: {err}"))? as u64;
        let tid = field_num(e, "tid").map_err(|err| format!("event {i}: {err}"))? as u64;
        if !ts.is_finite() || ts < 0.0 {
            return Err(format!("event {i} ('{name}'): bad ts {ts}"));
        }
        if ph == "M" {
            continue; // metadata records are exempt from lane ordering
        }
        let lane = (pid, tid);
        if let Some(&prev) = last_ts.get(&lane) {
            if ts < prev {
                return Err(format!(
                    "event {i} ('{name}'): ts {ts} < {prev} — lane (pid {pid}, tid {tid}) not monotone"
                ));
            }
        }
        last_ts.insert(lane, ts);
        match ph {
            "X" => {
                let dur = field_num(e, "dur").map_err(|err| format!("event {i}: {err}"))?;
                if !dur.is_finite() || dur < 0.0 {
                    return Err(format!("event {i} ('{name}'): bad dur {dur}"));
                }
                if let Some(id) = name.strip_prefix("shard q") {
                    shard_x.push((lane, id.to_string(), ns(ts), ns(ts) + ns(dur)));
                } else if let Some(id) = name.strip_prefix("merge q") {
                    merge_x.push((lane, id.to_string(), ns(ts), ns(ts) + ns(dur)));
                }
                complete_spans += 1;
            }
            "B" => open_spans.entry(lane).or_default().push(name.to_string()),
            "E" => {
                let stack = open_spans.entry(lane).or_default();
                match stack.pop() {
                    Some(open) if open == name => span_pairs += 1,
                    Some(open) => {
                        return Err(format!(
                            "event {i}: 'E' for '{name}' closes '{open}' — spans interleave on lane (pid {pid}, tid {tid})"
                        ))
                    }
                    None => {
                        return Err(format!(
                            "event {i}: 'E' for '{name}' with no open span on lane (pid {pid}, tid {tid})"
                        ))
                    }
                }
            }
            "i" | "C" => {}
            other => {
                return Err(format!("event {i} ('{name}'): unsupported ph '{other}'"))
            }
        }
    }

    for ((pid, tid), stack) in &open_spans {
        if let Some(open) = stack.last() {
            return Err(format!(
                "span '{open}' left open on lane (pid {pid}, tid {tid})"
            ));
        }
    }

    // Shard-span rules: every fan-out span contains a matching merge on
    // its lane, and every merge nests inside its fan-out span.
    for (lane, id, lo, hi) in &shard_x {
        let matched = merge_x.iter().any(|(ml, mid, mlo, mhi)| {
            ml == lane && mid == id && *mlo >= *lo && *mhi <= *hi
        });
        if !matched {
            return Err(format!(
                "shard span 'shard q{id}' has no nested 'merge q{id}' on lane (pid {}, tid {})",
                lane.0, lane.1
            ));
        }
    }
    for (lane, id, lo, hi) in &merge_x {
        let contained = shard_x.iter().any(|(sl, sid, slo, shi)| {
            sl == lane && sid == id && *lo >= *slo && *hi <= *shi
        });
        if !contained {
            return Err(format!(
                "merge span 'merge q{id}' has no enclosing 'shard q{id}' span on lane (pid {}, tid {})",
                lane.0, lane.1
            ));
        }
    }

    Ok(LintReport {
        events: events.len(),
        lanes: last_ts.len(),
        complete_spans,
        span_pairs,
        shard_spans: shard_x.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chrome::chrome_trace_json;
    use crate::event::{OpOutcome, TraceEvent};
    use robustq_sim::{DeviceId, OpClass, VirtualTime};

    #[test]
    fn lints_exporter_output() {
        let t = VirtualTime::from_micros;
        let events = vec![
            TraceEvent::OpSpan {
                query: 0,
                task: 0,
                op: OpClass::Selection,
                device: DeviceId::Cpu,
                queued_at: t(0),
                start: t(0),
                end: t(2),
                bytes_in: 1,
                bytes_out: 1,
                rows_out: 1,
                outcome: OpOutcome::Completed,
            },
            TraceEvent::QueryDone {
                query: 0,
                session: 0,
                seq: 0,
                submit: t(0),
                admit: t(0),
                end: t(3),
                rows: 1,
            },
        ];
        let report = lint_chrome_trace(&chrome_trace_json(&events)).expect("clean lint");
        assert_eq!(report.complete_spans, 1);
        assert_eq!(report.span_pairs, 1);
        assert!(report.lanes >= 2);
    }

    #[test]
    fn rejects_non_monotone_lanes() {
        let doc = r#"{"traceEvents":[
            {"name":"a","ph":"i","s":"t","ts":5.0,"pid":1,"tid":1,"args":{}},
            {"name":"b","ph":"i","s":"t","ts":4.0,"pid":1,"tid":1,"args":{}}
        ]}"#;
        let err = lint_chrome_trace(doc).unwrap_err();
        assert!(err.contains("not monotone"), "{err}");
    }

    #[test]
    fn rejects_unbalanced_spans() {
        let open = r#"{"traceEvents":[
            {"name":"q","ph":"B","ts":1.0,"pid":1,"tid":7,"args":{}}
        ]}"#;
        assert!(lint_chrome_trace(open).unwrap_err().contains("left open"));

        let crossed = r#"{"traceEvents":[
            {"name":"q1","ph":"B","ts":1.0,"pid":1,"tid":7,"args":{}},
            {"name":"q2","ph":"B","ts":2.0,"pid":1,"tid":7,"args":{}},
            {"name":"q1","ph":"E","ts":3.0,"pid":1,"tid":7,"args":{}}
        ]}"#;
        assert!(lint_chrome_trace(crossed).unwrap_err().contains("interleave"));

        let orphan = r#"{"traceEvents":[
            {"name":"q","ph":"E","ts":1.0,"pid":1,"tid":7,"args":{}}
        ]}"#;
        assert!(lint_chrome_trace(orphan).unwrap_err().contains("no open span"));
    }

    #[test]
    fn lints_shard_spans_from_the_exporter() {
        let t = VirtualTime::from_micros;
        let events = vec![
            TraceEvent::ShardFanout { query: 0, task: 4, shards: 2, at: t(0) },
            TraceEvent::ShardMerge {
                query: 0,
                task: 4,
                shards: 2,
                rows: 10,
                bytes: 80,
                start: t(3),
                end: t(5),
            },
        ];
        let report = lint_chrome_trace(&chrome_trace_json(&events)).expect("clean lint");
        assert_eq!(report.shard_spans, 1);
        assert_eq!(report.complete_spans, 2);
    }

    #[test]
    fn rejects_shard_span_without_merge() {
        let doc = r#"{"traceEvents":[
            {"name":"shard q0 t4","ph":"X","ts":1.0,"dur":5.0,"pid":1,"tid":9,"args":{}}
        ]}"#;
        let err = lint_chrome_trace(doc).unwrap_err();
        assert!(err.contains("no nested 'merge"), "{err}");
    }

    #[test]
    fn rejects_merge_outside_its_shard_span() {
        let escaped = r#"{"traceEvents":[
            {"name":"shard q0 t4","ph":"X","ts":1.0,"dur":2.0,"pid":1,"tid":9,"args":{}},
            {"name":"merge q0 t4","ph":"X","ts":2.0,"dur":4.0,"pid":1,"tid":9,"args":{}}
        ]}"#;
        let err = lint_chrome_trace(escaped).unwrap_err();
        assert!(err.contains("no nested 'merge"), "{err}");

        let orphan = r#"{"traceEvents":[
            {"name":"merge q0 t4","ph":"X","ts":2.0,"dur":1.0,"pid":1,"tid":9,"args":{}}
        ]}"#;
        let err = lint_chrome_trace(orphan).unwrap_err();
        assert!(err.contains("no enclosing 'shard"), "{err}");
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(lint_chrome_trace("not json").is_err());
        assert!(lint_chrome_trace("{}").unwrap_err().contains("traceEvents"));
        let no_ts = r#"{"traceEvents":[{"name":"a","ph":"i","pid":1,"tid":1}]}"#;
        assert!(lint_chrome_trace(no_ts).unwrap_err().contains("'ts'"));
        let bad_dur = r#"{"traceEvents":[{"name":"a","ph":"X","ts":1.0,"dur":-2.0,"pid":1,"tid":1}]}"#;
        assert!(lint_chrome_trace(bad_dur).unwrap_err().contains("bad dur"));
    }
}
