//! The tracer handle and its ring-buffer sink.
//!
//! A [`Tracer`] is a cheap cloneable handle — `None` when disabled, an
//! `Arc<Mutex<ring buffer>>` when enabled. The disabled path is one
//! branch on an `Option` and never allocates ([`TraceEvent`]s are `Copy`
//! stacks of scalars), so threading a disabled tracer through the
//! executor is free and runs stay byte-identical to an untraced build.

use crate::event::TraceEvent;
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex};

/// Default ring-buffer capacity (events retained before dropping the
/// oldest). Roughly a hundred megabytes at the event size — far above
/// any workload in the repository, but bounded so a runaway loop cannot
/// exhaust memory.
pub const DEFAULT_CAPACITY: usize = 1 << 20;

#[derive(Debug)]
struct Ring {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    /// Events ever emitted (monotone; `dropped = emitted - events.len()`).
    emitted: u64,
    dropped: u64,
}

/// A drained snapshot of the ring buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceData {
    /// Retained events, in emission order.
    pub events: Vec<TraceEvent>,
    /// Events dropped because the ring buffer was full.
    pub dropped: u64,
}

/// Cloneable tracing handle, no-op when disabled.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Mutex<Ring>>>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.inner.is_some() {
            f.write_str("Tracer(enabled)")
        } else {
            f.write_str("Tracer(disabled)")
        }
    }
}

impl Tracer {
    /// A disabled tracer: every emit is a no-op (the default).
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// An enabled tracer with the default ring capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// An enabled tracer retaining at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer {
            inner: Some(Arc::new(Mutex::new(Ring {
                events: VecDeque::new(),
                capacity: capacity.max(1),
                emitted: 0,
                dropped: 0,
            }))),
        }
    }

    /// Whether events are recorded. Callers may guard non-trivial event
    /// construction behind this; plain scalar events can be passed to
    /// [`Tracer::emit`] unconditionally.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Record `event`. No-op (a single branch) when disabled.
    #[inline]
    pub fn emit(&self, event: TraceEvent) {
        let Some(inner) = &self.inner else {
            return;
        };
        let mut ring = inner.lock().expect("tracer ring poisoned");
        ring.emitted += 1;
        if ring.events.len() == ring.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(event);
    }

    /// Events emitted so far (including dropped ones); a *mark* for
    /// [`Tracer::events_since`]. Zero when disabled.
    pub fn mark(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.lock().expect("tracer ring poisoned").emitted,
            None => 0,
        }
    }

    /// Events retained in the buffer.
    pub fn len(&self) -> usize {
        match &self.inner {
            Some(inner) => inner.lock().expect("tracer ring poisoned").events.len(),
            None => 0,
        }
    }

    /// True when no events are retained (or the tracer is disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The events emitted since `mark`, or `None` when the tracer is
    /// disabled or any of them were dropped from the ring (so callers
    /// never reconcile against a truncated stream).
    pub fn events_since(&self, mark: u64) -> Option<Vec<TraceEvent>> {
        let inner = self.inner.as_ref()?;
        let ring = inner.lock().expect("tracer ring poisoned");
        let oldest = ring.emitted - ring.events.len() as u64;
        if mark < oldest {
            return None;
        }
        Some(ring.events.iter().skip((mark - oldest) as usize).copied().collect())
    }

    /// Snapshot the buffer without draining it.
    pub fn snapshot(&self) -> TraceData {
        match &self.inner {
            Some(inner) => {
                let ring = inner.lock().expect("tracer ring poisoned");
                TraceData {
                    events: ring.events.iter().copied().collect(),
                    dropped: ring.dropped,
                }
            }
            None => TraceData::default(),
        }
    }

    /// Drain the buffer, returning everything retained so far.
    pub fn take(&self) -> TraceData {
        match &self.inner {
            Some(inner) => {
                let mut ring = inner.lock().expect("tracer ring poisoned");
                let dropped = ring.dropped;
                TraceData { events: ring.events.drain(..).collect(), dropped }
            }
            None => TraceData::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robustq_sim::VirtualTime;

    fn ev(q: u32) -> TraceEvent {
        TraceEvent::QuerySubmit { query: q, session: 0, seq: 0, at: VirtualTime::ZERO }
    }

    #[test]
    fn disabled_tracer_is_a_noop() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.emit(ev(1));
        assert_eq!(t.len(), 0);
        assert_eq!(t.mark(), 0);
        assert_eq!(t.take(), TraceData::default());
        assert!(t.events_since(0).is_none());
    }

    #[test]
    fn clones_share_the_buffer() {
        let t = Tracer::new();
        let u = t.clone();
        t.emit(ev(1));
        u.emit(ev(2));
        assert_eq!(t.len(), 2);
        let data = t.take();
        assert_eq!(data.events, vec![ev(1), ev(2)]);
        assert_eq!(data.dropped, 0);
        assert_eq!(u.len(), 0, "take drains the shared buffer");
    }

    #[test]
    fn ring_drops_oldest_and_reports_it() {
        let t = Tracer::with_capacity(2);
        for q in 0..5 {
            t.emit(ev(q));
        }
        let data = t.snapshot();
        assert_eq!(data.events, vec![ev(3), ev(4)]);
        assert_eq!(data.dropped, 3);
        assert!(t.events_since(0).is_none(), "dropped events invalidate the mark");
        assert_eq!(t.events_since(3), Some(vec![ev(3), ev(4)]));
    }

    #[test]
    fn events_since_slices_from_a_mark() {
        let t = Tracer::new();
        t.emit(ev(0));
        let mark = t.mark();
        t.emit(ev(1));
        t.emit(ev(2));
        assert_eq!(t.events_since(mark), Some(vec![ev(1), ev(2)]));
        assert_eq!(t.events_since(t.mark()), Some(vec![]));
    }
}
