//! The typed event model.
//!
//! Every event is a small `Copy` struct stamped with deterministic
//! virtual time, so event streams are byte-identical across repeated
//! runs, kernel worker counts and replayed fault plans. Events carry the
//! *why* behind the aggregates in `RunMetrics`: which operator ran where
//! and for how long, what crossed the bus, what the cache and heap did,
//! which faults fired, and — the paper's Section 3/5 decisions made
//! auditable — what each placement policy estimated and chose.

use robustq_sim::{CacheKey, DeviceId, Direction, OpClass, PerDevice, VirtualTime};

/// A compact, `Copy` per-device estimate vector for [`TraceEvent::Placement`].
///
/// [`PerDevice`] is heap-backed (topology-sized), so trace events can no
/// longer embed it without allocating. `EstVec` inlines up to
/// [`EstVec::MAX`] device estimates — plenty for the simulated fleets —
/// and silently drops estimates beyond that (the trace records the
/// decision; the policy still used every estimate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EstVec {
    len: u8,
    vals: [VirtualTime; EstVec::MAX],
}

impl EstVec {
    /// Inline capacity (device 0 = CPU, 1.. = co-processors).
    pub const MAX: usize = 8;

    /// No estimates recorded (policies without a cost model).
    pub const EMPTY: EstVec = EstVec { len: 0, vals: [VirtualTime::ZERO; EstVec::MAX] };

    /// The classic CPU/GPU pair.
    pub fn pair(cpu: VirtualTime, gpu: VirtualTime) -> Self {
        let mut v = EstVec::EMPTY;
        v.push(cpu);
        v.push(gpu);
        v
    }

    /// Capture a topology-sized estimate table (entries past
    /// [`EstVec::MAX`] are dropped).
    pub fn from_per_device(est: &PerDevice<VirtualTime>) -> Self {
        let mut v = EstVec::EMPTY;
        for (_, &t) in est.iter() {
            v.push(t);
        }
        v
    }

    /// Append one device's estimate (dense device order); saturates at
    /// [`EstVec::MAX`].
    pub fn push(&mut self, t: VirtualTime) {
        if (self.len as usize) < EstVec::MAX {
            self.vals[self.len as usize] = t;
            self.len += 1;
        }
    }

    /// Number of recorded estimates.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when no estimates were recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The estimate for `device` (`ZERO` when absent — exporters print
    /// missing CPU/GPU estimates as zero, matching cost-model-free
    /// policies).
    pub fn get(&self, device: DeviceId) -> VirtualTime {
        if device.index() < self.len as usize {
            self.vals[device.index()]
        } else {
            VirtualTime::ZERO
        }
    }

    /// `(device, estimate)` pairs in dense device order.
    pub fn iter(&self) -> impl Iterator<Item = (DeviceId, VirtualTime)> + '_ {
        (0..self.len as usize).map(|i| (DeviceId::from_index(i), self.vals[i]))
    }
}

/// How an operator span ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpOutcome {
    /// The kernel ran to completion on its device.
    Completed,
    /// The co-processor operator aborted mid-flight and will restart on
    /// the CPU; `injected` marks aborts forced by the fault plan.
    Aborted {
        /// True when the fault layer forced the abort.
        injected: bool,
    },
}

/// What a transfer was moving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransferKind {
    /// Operator inputs: base columns or intermediate results.
    Input,
    /// A query result returning to the host.
    Result,
    /// Background data-placement traffic (Section 3.2's manager).
    Placement,
}

/// The fault-plan decision behind a [`TraceEvent::Fault`] record.
///
/// Kinds mirror the plan's own `FaultStats` accounting (a device→host
/// "permanent" draw is counted — and reported here — as transient,
/// exactly as the plan degrades it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A co-processor heap allocation was failed at `stage`.
    AllocFail {
        /// Staged-allocation step (0 = upfront, 1..=3 = growth).
        stage: u32,
    },
    /// A transfer attempt failed transiently (retryable).
    TransferTransient,
    /// A host→device transfer failed permanently (aborts the operator).
    TransferPermanent,
    /// A transfer was slowed by a latency spike.
    TransferSpike,
    /// A co-processor kernel aborted right before computing.
    KernelAbort,
    /// A kernel launch was deferred by a device stall window.
    Stall {
        /// Virtual time the launch waited for the window to close.
        wait: VirtualTime,
    },
}

/// Why an admission-control layer shed a submitted query instead of
/// executing it (open-loop serving, DESIGN.md §13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShedReason {
    /// The admission queue was at its configured depth cap when the
    /// query arrived.
    QueueFull,
    /// The query waited in the admission queue longer than the
    /// configured admission timeout.
    Timeout,
}

/// When a placement decision was taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlacePhase {
    /// At query admission (compile-time annotation, Section 2.5.2).
    Compile,
    /// When the task became ready (run-time placement, Section 4).
    Ready,
    /// Forced to the CPU after a co-processor abort (Section 2.5.1).
    Fallback,
}

/// Why a placement policy chose its device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlaceReason {
    /// A fixed rule (CPU-only, GPU-preferred, …) — no cost model.
    Static,
    /// A learned/analytical cost model compared per-device estimates.
    CostModel,
    /// Input-data residency decided (data-driven placement, Section 3).
    DataResidency,
    /// Device heap pressure vetoed the co-processor.
    HeapPressure,
    /// A shard of a partitioned operator, spread across the fleet by
    /// shard index rather than argmin (intra-operator sharding, §12).
    ShardSpread,
    /// The executor's abort recovery forced the CPU.
    AbortFallback,
    /// A standing query's memoized first-fire placement was replayed
    /// instead of re-estimating (recurring-footprint memoization, §16).
    Recurring,
}

/// One structured trace event, stamped in virtual time.
///
/// All payloads are scalar (`Copy`), so constructing an event never
/// allocates — the zero-overhead-when-disabled contract of the tracer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A session submitted a query (admission waiting counts toward its
    /// latency, so `at` is the submission instant).
    QuerySubmit {
        /// Executor-wide query id.
        query: u32,
        /// Issuing session.
        session: u32,
        /// Position within the session's queue.
        seq: u32,
        /// Submission instant.
        at: VirtualTime,
    },
    /// A query's result reached the host.
    QueryDone {
        /// Executor-wide query id.
        query: u32,
        /// Issuing session.
        session: u32,
        /// Position within the session's queue.
        seq: u32,
        /// Submission instant (latency = `end - submit`).
        submit: VirtualTime,
        /// Admission instant (queue wait = `admit - submit`, service =
        /// `end - admit`).
        admit: VirtualTime,
        /// Completion instant.
        end: VirtualTime,
        /// Result row count.
        rows: u64,
    },
    /// A submitted query was shed by admission control instead of
    /// executing (open-loop overload protection, DESIGN.md §13). Shed
    /// queries produce no outcome and no operator activity.
    QueryShed {
        /// Issuing session.
        session: u32,
        /// Position within the session's queue.
        seq: u32,
        /// Submission instant.
        submit: VirtualTime,
        /// Why admission refused the query.
        reason: ShedReason,
        /// Shedding instant (`at - submit` is the time wasted queueing).
        at: VirtualTime,
    },
    /// One operator execution attempt on one device, from worker-slot
    /// acquisition (`start`) to completion or abort (`end`).
    OpSpan {
        /// Query the operator belongs to.
        query: u32,
        /// Executor-wide task id.
        task: u32,
        /// Cost-model class of the operator.
        op: OpClass,
        /// Device the attempt ran on.
        device: DeviceId,
        /// When the task entered the device's ready queue.
        queued_at: VirtualTime,
        /// Worker-slot acquisition (transfers and allocation included).
        start: VirtualTime,
        /// Completion or abort instant.
        end: VirtualTime,
        /// Exact input payload bytes.
        bytes_in: u64,
        /// Output payload bytes.
        bytes_out: u64,
        /// Output rows.
        rows_out: u64,
        /// How the span ended.
        outcome: OpOutcome,
    },
    /// One transfer attempt that occupied the link (clean, spiked, or a
    /// failed transient attempt; permanently failed attempts never move
    /// bytes and appear only as [`TraceEvent::Fault`]).
    Transfer {
        /// Co-processor whose host link carried the payload.
        device: DeviceId,
        /// Direction over the link.
        dir: Direction,
        /// What the payload was.
        kind: TransferKind,
        /// Query charged, when attributable (`u32::MAX` encodes "none",
        /// see [`TraceEvent::NO_QUERY`] — keeps the event `Copy`+compact).
        query: u32,
        /// Payload bytes.
        bytes: u64,
        /// When the transfer was requested.
        start: VirtualTime,
        /// When the payload (or failure) cleared the link.
        end: VirtualTime,
        /// Service time occupying the FIFO.
        service: VirtualTime,
        /// True for spiked or failed attempts.
        faulted: bool,
        /// Virtual time lost to the injection (spike excess, or a failed
        /// attempt's service plus its backoff).
        waste: VirtualTime,
    },
    /// A cache lookup by a co-processor operator.
    CacheProbe {
        /// Co-processor whose cache was probed.
        device: DeviceId,
        /// Base-column key.
        key: CacheKey,
        /// Column bytes.
        bytes: u64,
        /// Hit or miss.
        hit: bool,
        /// Lookup instant.
        at: VirtualTime,
    },
    /// A column entered the cache.
    CacheInsert {
        /// Co-processor whose cache admitted the column.
        device: DeviceId,
        /// Base-column key.
        key: CacheKey,
        /// Column bytes.
        bytes: u64,
        /// Insertion instant.
        at: VirtualTime,
    },
    /// A column was evicted to make room.
    CacheEvict {
        /// Co-processor whose cache evicted the column.
        device: DeviceId,
        /// Base-column key.
        key: CacheKey,
        /// Column bytes.
        bytes: u64,
        /// Eviction instant.
        at: VirtualTime,
    },
    /// A co-processor heap allocation attempt.
    HeapAlloc {
        /// Co-processor whose heap served the attempt.
        device: DeviceId,
        /// Engine-chosen allocation tag.
        tag: u64,
        /// Bytes requested.
        bytes: u64,
        /// Heap bytes in use after the attempt.
        used: u64,
        /// False when the heap could not satisfy the request.
        ok: bool,
        /// Attempt instant.
        at: VirtualTime,
    },
    /// A heap tag was released.
    HeapFree {
        /// Co-processor whose heap released the tag.
        device: DeviceId,
        /// Engine-chosen allocation tag.
        tag: u64,
        /// Bytes freed.
        bytes: u64,
        /// Heap bytes in use after the release.
        used: u64,
        /// Release instant.
        at: VirtualTime,
    },
    /// A fault-plan decision fired.
    Fault {
        /// What the plan injected.
        kind: FaultKind,
        /// Query charged (`u32::MAX` = not attributable).
        query: u32,
        /// Injection instant.
        at: VirtualTime,
    },
    /// A transfer retry was scheduled after a transient fault.
    Retry {
        /// Query charged (`u32::MAX` = not attributable).
        query: u32,
        /// Backoff waited before the retry.
        backoff: VirtualTime,
        /// Scheduling instant.
        at: VirtualTime,
    },
    /// A sharded scan fanned out at admission: `shards` ScanShard tasks
    /// were created under merge-barrier task `task` (DESIGN.md §12).
    ShardFanout {
        /// Query the sharded operator belongs to.
        query: u32,
        /// Executor-wide task id of the merge barrier.
        task: u32,
        /// Number of shards the operator was split into.
        shards: u32,
        /// Fan-out instant (query admission).
        at: VirtualTime,
    },
    /// A merge barrier combined its shards' partial results back into the
    /// unsharded operator output.
    ShardMerge {
        /// Query the sharded operator belongs to.
        query: u32,
        /// Executor-wide task id of the merge barrier.
        task: u32,
        /// Number of shards merged.
        shards: u32,
        /// Merged output rows.
        rows: u64,
        /// Merged output bytes.
        bytes: u64,
        /// When the last shard's result was available.
        start: VirtualTime,
        /// Merge completion instant.
        end: VirtualTime,
    },
    /// A placement decision: the policy's per-device completion
    /// estimates and the device it chose.
    Placement {
        /// Query the operator belongs to.
        query: u32,
        /// Executor-wide task id.
        task: u32,
        /// Cost-model class of the operator.
        op: OpClass,
        /// When the decision was taken.
        phase: PlacePhase,
        /// Estimated completion per device in dense device order
        /// (empty when the policy does not model costs).
        est: EstVec,
        /// The chosen device.
        chosen: DeviceId,
        /// Why it was chosen.
        reason: PlaceReason,
        /// Decision instant.
        at: VirtualTime,
    },
    /// An adaptive cost model refined a per-(operator-class, device)
    /// estimate from an observed kernel duration (DESIGN.md §15). Static
    /// models never emit this — default traces stay byte-identical.
    ModelUpdate {
        /// Query whose operator produced the observation.
        query: u32,
        /// Executor-wide task id of the observed operator.
        task: u32,
        /// Cost-model class of the operator.
        op: OpClass,
        /// Device the observation came from.
        device: DeviceId,
        /// What the model predicted before seeing the observation.
        predicted: VirtualTime,
        /// The observed kernel duration.
        actual: VirtualTime,
        /// Observation instant (operator completion).
        at: VirtualTime,
    },
    /// A larger-than-heap operator entered the chunked out-of-core
    /// staging pipeline instead of aborting to the CPU (DESIGN.md §15).
    OpStaged {
        /// Query the operator belongs to.
        query: u32,
        /// Executor-wide task id.
        task: u32,
        /// Co-processor running the staged pipeline.
        device: DeviceId,
        /// Number of partitions the operator streams through.
        chunks: u32,
        /// Fixed device-heap bytes held for the pipeline (worst-case
        /// chunk: input slice + working footprint + chunk result).
        chunk_bytes: u64,
        /// When the pipeline was set up (first chunk transfer request).
        at: VirtualTime,
    },
    /// A feed batch committed: rows appended to a base table mid-run,
    /// bumping the database epoch (streaming feeds, DESIGN.md §16).
    Append {
        /// Registration index of the table appended to.
        table: u32,
        /// Rows this batch added.
        rows: u64,
        /// Raw payload bytes the batch added.
        bytes: u64,
        /// The epoch the append committed under.
        epoch: u32,
        /// Commit instant.
        at: VirtualTime,
    },
    /// An append crossed the seal threshold: an open segment sealed and
    /// its stats were recomputed exactly.
    EpochSeal {
        /// Registration index of the table owning the segment.
        table: u32,
        /// Index of the sealed segment within the table.
        segment: u32,
        /// Rows in the sealed segment.
        rows: u64,
        /// The epoch the seal committed under.
        epoch: u32,
        /// Seal instant.
        at: VirtualTime,
    },
    /// A standing query fired for one window tick: the registered plan
    /// was re-submitted over the window's row range of the feed table.
    WindowFire {
        /// Standing-query registration index.
        standing: u32,
        /// Window tick number (0-based).
        tick: u32,
        /// Executor-wide query id of the submitted execution.
        query: u32,
        /// First feed-table row in the window.
        lo: u64,
        /// One past the last feed-table row in the window.
        hi: u64,
        /// Fire instant.
        at: VirtualTime,
    },
}

impl TraceEvent {
    /// Sentinel `query` value for events not attributable to one query
    /// (background placement traffic and its faults).
    pub const NO_QUERY: u32 = u32::MAX;

    /// The virtual-time stamp of the event (spans report their end).
    pub fn at(&self) -> VirtualTime {
        match *self {
            TraceEvent::QuerySubmit { at, .. }
            | TraceEvent::CacheProbe { at, .. }
            | TraceEvent::CacheInsert { at, .. }
            | TraceEvent::CacheEvict { at, .. }
            | TraceEvent::HeapAlloc { at, .. }
            | TraceEvent::HeapFree { at, .. }
            | TraceEvent::Fault { at, .. }
            | TraceEvent::Retry { at, .. }
            | TraceEvent::Placement { at, .. }
            | TraceEvent::ShardFanout { at, .. }
            | TraceEvent::QueryShed { at, .. }
            | TraceEvent::ModelUpdate { at, .. }
            | TraceEvent::OpStaged { at, .. }
            | TraceEvent::Append { at, .. }
            | TraceEvent::EpochSeal { at, .. }
            | TraceEvent::WindowFire { at, .. } => at,
            TraceEvent::QueryDone { end, .. }
            | TraceEvent::OpSpan { end, .. }
            | TraceEvent::Transfer { end, .. }
            | TraceEvent::ShardMerge { end, .. } => end,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_copy_and_comparable() {
        let e = TraceEvent::Fault {
            kind: FaultKind::KernelAbort,
            query: 3,
            at: VirtualTime::from_micros(5),
        };
        let f = e; // Copy
        assert_eq!(e, f);
        assert_eq!(e.at(), VirtualTime::from_micros(5));
    }

    #[test]
    fn est_vec_pads_with_zero_and_saturates() {
        let mut v = EstVec::pair(VirtualTime::from_micros(10), VirtualTime::from_micros(4));
        assert_eq!(v.len(), 2);
        assert_eq!(v.get(DeviceId::Cpu), VirtualTime::from_micros(10));
        assert_eq!(v.get(DeviceId::Gpu), VirtualTime::from_micros(4));
        assert_eq!(v.get(DeviceId::coprocessor(2)), VirtualTime::ZERO);
        for _ in 0..20 {
            v.push(VirtualTime::from_micros(1));
        }
        assert_eq!(v.len(), EstVec::MAX);
        let pd = PerDevice::new(VirtualTime::from_micros(1), VirtualTime::from_micros(2));
        let w = EstVec::from_per_device(&pd);
        assert_eq!(w.iter().count(), 2);
        assert_eq!(w.get(DeviceId::Gpu), VirtualTime::from_micros(2));
        assert!(EstVec::EMPTY.is_empty());
    }

    #[test]
    fn span_events_stamp_their_end() {
        let e = TraceEvent::Transfer {
            device: DeviceId::Gpu,
            dir: Direction::HostToDevice,
            kind: TransferKind::Input,
            query: 0,
            bytes: 10,
            start: VirtualTime::from_micros(1),
            end: VirtualTime::from_micros(4),
            service: VirtualTime::from_micros(3),
            faulted: false,
            waste: VirtualTime::ZERO,
        };
        assert_eq!(e.at(), VirtualTime::from_micros(4));
    }
}
