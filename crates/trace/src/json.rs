//! A minimal JSON reader/writer.
//!
//! The build environment has no registry access (no `serde`), and the
//! Chrome exporter plus `trace-lint` only need a small, strict subset:
//! objects, arrays, strings, finite numbers, booleans and null. The
//! parser is a plain recursive-descent over bytes; the writer is just
//! string escaping.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is not preserved (sorted), which is fine for
    /// validation.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The object field `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parse `src` as one JSON document (trailing whitespace allowed).
pub fn parse(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            got => Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos.saturating_sub(1),
                got.map(|g| g as char)
            )),
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(map)),
                got => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos.saturating_sub(1),
                        got.map(|g| g as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                got => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos.saturating_sub(1),
                        got.map(|g| g as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        if self.pos + 4 > self.bytes.len() {
                            return Err("truncated \\u escape".into());
                        }
                        let hex =
                            std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| "bad \\u escape".to_string())?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        self.pos += 4;
                        // Surrogate pairs are not needed by our exporter;
                        // reject them rather than mis-decode.
                        let ch = char::from_u32(cp)
                            .ok_or_else(|| "surrogate \\u escape".to_string())?;
                        out.push(ch);
                    }
                    got => {
                        return Err(format!("bad escape {:?}", got.map(|g| g as char)))
                    }
                },
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control byte 0x{b:02x} in string"))
                }
                Some(b) => {
                    // Re-assemble UTF-8 multibyte sequences byte-for-byte.
                    let start = self.pos - 1;
                    let len = utf8_len(b)?;
                    if start + len > self.bytes.len() {
                        return Err("truncated UTF-8 sequence".into());
                    }
                    let s = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        let n: f64 =
            s.parse().map_err(|_| format!("invalid number '{s}' at byte {start}"))?;
        if !n.is_finite() {
            return Err(format!("non-finite number '{s}'"));
        }
        Ok(Json::Num(n))
    }
}

fn utf8_len(first: u8) -> Result<usize, String> {
    match first {
        0x00..=0x7f => Ok(1),
        0xc0..=0xdf => Ok(2),
        0xe0..=0xef => Ok(3),
        0xf0..=0xf7 => Ok(4),
        _ => Err(format!("invalid UTF-8 lead byte 0x{first:02x}")),
    }
}

/// Append `s` to `out` as a JSON string literal (with quotes).
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "e": "x\ny"}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_num(), Some(2.5));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_num(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Null));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,]", "{\"a\":}", "[1 2]", "\"abc", "01a", "{]", "nul"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
        assert!(parse("[1] trailing").is_err());
    }

    #[test]
    fn roundtrips_escapes() {
        let mut out = String::new();
        write_escaped(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
        assert_eq!(parse(&out).unwrap().as_str(), Some("a\"b\\c\nd\u{1}"));
    }

    #[test]
    fn parses_unicode_strings() {
        assert_eq!(parse(r#""café ☕""#).unwrap().as_str(), Some("café ☕"));
    }
}
