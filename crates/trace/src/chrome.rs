//! Chrome `trace_event` JSON export (Perfetto-loadable).
//!
//! One process (`pid` 1) with one lane (`tid`) per device for operator
//! spans, one per transfer direction, auxiliary lanes for heap, cache,
//! fault and placement events, and one lane per session carrying `B`/`E`
//! query spans. Timestamps are virtual-time microseconds with
//! nanosecond-resolution fractions.
//!
//! Device lanes use `X` (complete) events; concurrent kernels *overlap*
//! within a lane, which is the processor-sharing model rendered
//! faithfully rather than a bug. Transfer lanes never overlap (the link
//! is FIFO per direction). Session lanes are strictly nested: queries of
//! one session run closed-loop, so every `B` closes before the next
//! opens — the balance property `trace-lint` checks. Open-loop serving
//! (DESIGN.md §13) breaks that guarantee — one session may have several
//! queries in flight — so a query span that overlaps an earlier span on
//! its session lane degrades to an `X` (complete) event, keeping `B`/`E`
//! nesting balanced; shed queries appear as instants on their lane.

use crate::event::{OpOutcome, TraceEvent, TransferKind};
use crate::json::write_escaped;
use robustq_sim::DeviceId;
use std::fmt::Write as _;

/// Lane (`tid`) assignments within the single trace process.
///
/// The first co-processor keeps the historical lane numbers (2..=6), so
/// a K = 1 trace is byte-identical to the pre-topology exporter. Each
/// further co-processor gets its own block of five lanes starting at
/// [`lane::EXTRA_DEVICES`]; the shared fault/placement lanes and the
/// session lanes keep their fixed slots.
mod lane {
    pub const CPU_OPS: u64 = 1;
    pub const GPU_OPS: u64 = 2;
    pub const H2D: u64 = 3;
    pub const D2H: u64 = 4;
    pub const HEAP: u64 = 5;
    pub const CACHE: u64 = 6;
    pub const FAULTS: u64 = 7;
    pub const PLACEMENT: u64 = 8;
    /// Shard fan-out/merge spans (DESIGN.md §12). The label is emitted
    /// lazily on the first shard event, so unsharded exports stay
    /// byte-identical to earlier releases.
    pub const SHARDS: u64 = 9;
    /// Lane blocks of co-processors 2.. start here, [`BLOCK`] lanes
    /// each (co-processor ordinal `o ≥ 2` occupies
    /// `EXTRA_DEVICES + (o-2)*BLOCK ..`, staying below [`SESSIONS`]
    /// for any realistic fleet).
    pub const EXTRA_DEVICES: u64 = 10;
    /// Lanes per co-processor block: ops, h2d, d2h, heap, cache.
    pub const BLOCK: u64 = 5;
    /// Feed activity (appends, segment seals, window fires; DESIGN.md
    /// §16). Named lazily on the first feed event, so batch exports stay
    /// byte-identical to earlier releases.
    pub const FEED: u64 = 99;
    /// Session lanes start here: `tid = SESSIONS + session`.
    pub const SESSIONS: u64 = 100;
}

/// Per-device lane roles within a co-processor's block.
#[derive(Clone, Copy)]
enum Role {
    Ops,
    H2d,
    D2h,
    Heap,
    Cache,
}

impl Role {
    fn offset(self) -> u64 {
        match self {
            Role::Ops => 0,
            Role::H2d => 1,
            Role::D2h => 2,
            Role::Heap => 3,
            Role::Cache => 4,
        }
    }

    fn lane_name(self, device: DeviceId) -> String {
        match self {
            Role::Ops => format!("{device} kernels"),
            Role::H2d => format!("link host→{device}"),
            Role::D2h => format!("link {device}→host"),
            Role::Heap => format!("{device} heap"),
            Role::Cache => format!("{device} column cache"),
        }
    }
}

/// The lane of `role` for co-processor `device`.
fn device_lane(device: DeviceId, role: Role) -> u64 {
    debug_assert!(device.is_coprocessor());
    let ordinal = device.index() as u64; // 1-based among co-processors
    if ordinal == 1 {
        match role {
            Role::Ops => lane::GPU_OPS,
            Role::H2d => lane::H2D,
            Role::D2h => lane::D2H,
            Role::Heap => lane::HEAP,
            Role::Cache => lane::CACHE,
        }
    } else {
        lane::EXTRA_DEVICES + (ordinal - 2) * lane::BLOCK + role.offset()
    }
}

/// Sort key preserving lane-local ordering requirements at equal
/// timestamps: metadata first, then `E` before anything that may open or
/// occupy the lane, `B` last.
fn phase_rank(ph: char) -> u8 {
    match ph {
        'M' => 0,
        'E' => 1,
        'X' => 2,
        'C' => 3,
        'i' => 4,
        'B' => 5,
        _ => 6,
    }
}

struct Emitted {
    ts_ns: u64,
    ph: char,
    seq: usize,
    json: String,
}

fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn push(out: &mut Vec<Emitted>, ts_ns: u64, ph: char, json: String) {
    let seq = out.len();
    out.push(Emitted { ts_ns, ph, seq, json });
}

fn complete_event(
    name: &str,
    cat: &str,
    tid: u64,
    start_ns: u64,
    end_ns: u64,
    args: &str,
) -> String {
    let mut s = String::new();
    s.push_str("{\"name\":");
    write_escaped(&mut s, name);
    let _ = write!(
        s,
        ",\"cat\":\"{cat}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{tid},\"args\":{{{args}}}}}",
        us(start_ns),
        us(end_ns.saturating_sub(start_ns)),
    );
    s
}

fn instant_event(name: &str, cat: &str, tid: u64, ts_ns: u64, args: &str) -> String {
    let mut s = String::new();
    s.push_str("{\"name\":");
    write_escaped(&mut s, name);
    let _ = write!(
        s,
        ",\"cat\":\"{cat}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":1,\"tid\":{tid},\"args\":{{{args}}}}}",
        us(ts_ns),
    );
    s
}

fn thread_name(tid: u64, name: &str) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0.000,\"pid\":1,\"tid\":{tid},\"args\":{{\"name\":"
    );
    write_escaped(&mut s, name);
    s.push_str("}}");
    s
}

/// Push the five lane labels of a ≥ 2nd co-processor on first sight
/// (the first co-processor's labels are emitted upfront with the
/// historical wording, keeping K = 1 exports byte-identical).
fn ensure_device_lanes(out: &mut Vec<Emitted>, seen: &mut Vec<DeviceId>, device: DeviceId) {
    if device.index() <= 1 || seen.contains(&device) {
        return;
    }
    seen.push(device);
    for role in [Role::Ops, Role::H2d, Role::D2h, Role::Heap, Role::Cache] {
        push(
            out,
            0,
            'M',
            thread_name(device_lane(device, role), &role.lane_name(device)),
        );
    }
}

/// Render `events` as a Chrome `trace_event` JSON document.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out: Vec<Emitted> = Vec::with_capacity(events.len() + 16);

    // Lane labels.
    push(&mut out, 0, 'M', thread_name(lane::CPU_OPS, "CPU kernels"));
    push(&mut out, 0, 'M', thread_name(lane::GPU_OPS, "GPU kernels"));
    push(&mut out, 0, 'M', thread_name(lane::H2D, "link host→device"));
    push(&mut out, 0, 'M', thread_name(lane::D2H, "link device→host"));
    push(&mut out, 0, 'M', thread_name(lane::HEAP, "GPU heap"));
    push(&mut out, 0, 'M', thread_name(lane::CACHE, "GPU column cache"));
    push(&mut out, 0, 'M', thread_name(lane::FAULTS, "fault injections"));
    push(&mut out, 0, 'M', thread_name(lane::PLACEMENT, "placement decisions"));
    // Per-session lane occupancy: the latest `end` rendered so far. A
    // span starting before that overlaps (open-loop concurrency within
    // one session) and must not open a `B` the balance check would trip
    // on; it renders as an `X` instead.
    let mut session_busy: Vec<(u32, u64)> = Vec::new();
    let mut sessions_seen: Vec<u32> = Vec::new();
    let mut devices_seen: Vec<DeviceId> = Vec::new();
    let mut shard_lane_named = false;
    let mut feed_lane_named = false;
    // Fan-out instants by (query, merge task), so the merge can emit the
    // full shard span (fan-out → merge completion) as one `X` event.
    let mut fanouts: Vec<((u32, u32), u64)> = Vec::new();

    for ev in events {
        match *ev {
            TraceEvent::QuerySubmit { .. } => {
                // Latency is visible as the B/E span; submissions add an
                // instant on the session lane only once the lane exists
                // (QueryDone names it), so skip — spans carry `submit`.
            }
            TraceEvent::QueryDone { query, session, seq, submit, admit, end, rows } => {
                if !sessions_seen.contains(&session) {
                    sessions_seen.push(session);
                    push(
                        &mut out,
                        0,
                        'M',
                        thread_name(
                            lane::SESSIONS + session as u64,
                            &format!("session {session}"),
                        ),
                    );
                }
                let tid = lane::SESSIONS + session as u64;
                let name = format!("query {query} (seq {seq})");
                let start_ns = submit.as_nanos();
                let end_ns = end.as_nanos();
                let busy = match session_busy.iter().position(|(s, _)| *s == session) {
                    Some(i) => &mut session_busy[i],
                    None => {
                        session_busy.push((session, 0));
                        session_busy.last_mut().expect("just pushed")
                    }
                };
                if start_ns < busy.1 {
                    // Overlaps an already-rendered span on this session
                    // lane (open-loop concurrency): `X` keeps `B`/`E`
                    // nesting balanced.
                    let args = format!(
                        "\"query\":{query},\"rows\":{rows},\"admit_wait_us\":{}",
                        us(admit.as_nanos().saturating_sub(start_ns)),
                    );
                    push(
                        &mut out,
                        start_ns,
                        'X',
                        complete_event(&name, "query", tid, start_ns, end_ns, &args),
                    );
                } else {
                    let mut b = String::new();
                    b.push_str("{\"name\":");
                    write_escaped(&mut b, &name);
                    let _ = write!(
                        b,
                        ",\"cat\":\"query\",\"ph\":\"B\",\"ts\":{},\"pid\":1,\"tid\":{tid},\"args\":{{\"query\":{query}}}}}",
                        us(start_ns),
                    );
                    push(&mut out, start_ns, 'B', b);
                    let mut e = String::new();
                    e.push_str("{\"name\":");
                    write_escaped(&mut e, &name);
                    let _ = write!(
                        e,
                        ",\"cat\":\"query\",\"ph\":\"E\",\"ts\":{},\"pid\":1,\"tid\":{tid},\"args\":{{\"rows\":{rows}}}}}",
                        us(end_ns),
                    );
                    push(&mut out, end_ns, 'E', e);
                }
                busy.1 = busy.1.max(end_ns);
            }
            TraceEvent::QueryShed { session, seq, submit, reason, at } => {
                if !sessions_seen.contains(&session) {
                    sessions_seen.push(session);
                    push(
                        &mut out,
                        0,
                        'M',
                        thread_name(
                            lane::SESSIONS + session as u64,
                            &format!("session {session}"),
                        ),
                    );
                }
                let args = format!(
                    "\"seq\":{seq},\"reason\":\"{reason:?}\",\"submit_us\":{}",
                    us(submit.as_nanos()),
                );
                push(
                    &mut out,
                    at.as_nanos(),
                    'i',
                    instant_event(
                        &format!("shed ({reason:?})"),
                        "query",
                        lane::SESSIONS + session as u64,
                        at.as_nanos(),
                        &args,
                    ),
                );
            }
            TraceEvent::OpSpan {
                query,
                task,
                op,
                device,
                start,
                end,
                bytes_in,
                bytes_out,
                rows_out,
                outcome,
                queued_at,
            } => {
                let tid = if device == DeviceId::Cpu {
                    lane::CPU_OPS
                } else {
                    ensure_device_lanes(&mut out, &mut devices_seen, device);
                    device_lane(device, Role::Ops)
                };
                let (name, outcome_s) = match outcome {
                    OpOutcome::Completed => (format!("{op:?}"), "completed"),
                    OpOutcome::Aborted { injected: true } => {
                        (format!("{op:?} ✗ (injected abort)"), "aborted-injected")
                    }
                    OpOutcome::Aborted { injected: false } => {
                        (format!("{op:?} ✗ (abort)"), "aborted")
                    }
                };
                let args = format!(
                    "\"query\":{query},\"task\":{task},\"bytes_in\":{bytes_in},\"bytes_out\":{bytes_out},\"rows_out\":{rows_out},\"queue_wait_us\":{},\"outcome\":\"{outcome_s}\"",
                    us(start.as_nanos().saturating_sub(queued_at.as_nanos())),
                );
                push(
                    &mut out,
                    start.as_nanos(),
                    'X',
                    complete_event(&name, "op", tid, start.as_nanos(), end.as_nanos(), &args),
                );
            }
            TraceEvent::Transfer {
                device, dir, kind, query, bytes, start, end, service, faulted, ..
            } => {
                ensure_device_lanes(&mut out, &mut devices_seen, device);
                let tid = match dir {
                    robustq_sim::Direction::HostToDevice => device_lane(device, Role::H2d),
                    robustq_sim::Direction::DeviceToHost => device_lane(device, Role::D2h),
                };
                let kind_s = match kind {
                    TransferKind::Input => "input",
                    TransferKind::Result => "result",
                    TransferKind::Placement => "placement",
                };
                let name = if faulted {
                    format!("{kind_s} ✗ ({bytes} B)")
                } else {
                    format!("{kind_s} ({bytes} B)")
                };
                let queued_ns = end.as_nanos().saturating_sub(service.as_nanos());
                let mut args = format!(
                    "\"bytes\":{bytes},\"kind\":\"{kind_s}\",\"faulted\":{faulted},\"requested_us\":{}",
                    us(start.as_nanos()),
                );
                if query != TraceEvent::NO_QUERY {
                    let _ = write!(args, ",\"query\":{query}");
                }
                // Render the slot actually occupying the FIFO (queueing
                // behind earlier transfers excluded), so lane spans never
                // overlap.
                push(
                    &mut out,
                    queued_ns,
                    'X',
                    complete_event(&name, "xfer", tid, queued_ns, end.as_nanos(), &args),
                );
            }
            TraceEvent::CacheProbe { device, key, bytes, hit, at } => {
                ensure_device_lanes(&mut out, &mut devices_seen, device);
                let name = if hit { "hit" } else { "miss" };
                let args = format!("\"key\":{},\"bytes\":{bytes}", key.0);
                push(
                    &mut out,
                    at.as_nanos(),
                    'i',
                    instant_event(
                        name,
                        "cache",
                        device_lane(device, Role::Cache),
                        at.as_nanos(),
                        &args,
                    ),
                );
            }
            TraceEvent::CacheInsert { device, key, bytes, at } => {
                ensure_device_lanes(&mut out, &mut devices_seen, device);
                let args = format!("\"key\":{},\"bytes\":{bytes}", key.0);
                push(
                    &mut out,
                    at.as_nanos(),
                    'i',
                    instant_event(
                        "insert",
                        "cache",
                        device_lane(device, Role::Cache),
                        at.as_nanos(),
                        &args,
                    ),
                );
            }
            TraceEvent::CacheEvict { device, key, bytes, at } => {
                ensure_device_lanes(&mut out, &mut devices_seen, device);
                let args = format!("\"key\":{},\"bytes\":{bytes}", key.0);
                push(
                    &mut out,
                    at.as_nanos(),
                    'i',
                    instant_event(
                        "evict",
                        "cache",
                        device_lane(device, Role::Cache),
                        at.as_nanos(),
                        &args,
                    ),
                );
            }
            TraceEvent::HeapAlloc { device, used, at, .. }
            | TraceEvent::HeapFree { device, used, at, .. } => {
                ensure_device_lanes(&mut out, &mut devices_seen, device);
                // The first co-processor keeps the historical counter
                // name; further devices get their ordinal in the name.
                let name = if device.index() == 1 {
                    "gpu_heap_used".to_string()
                } else {
                    format!("gpu{}_heap_used", device.index())
                };
                let mut s = String::new();
                let _ = write!(
                    s,
                    "{{\"name\":\"{name}\",\"cat\":\"heap\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\"tid\":{},\"args\":{{\"bytes\":{used}}}}}",
                    us(at.as_nanos()),
                    device_lane(device, Role::Heap),
                );
                push(&mut out, at.as_nanos(), 'C', s);
            }
            TraceEvent::Fault { kind, query, at } => {
                let mut args = format!("\"kind\":\"{kind:?}\"");
                if query != TraceEvent::NO_QUERY {
                    let _ = write!(args, ",\"query\":{query}");
                }
                push(
                    &mut out,
                    at.as_nanos(),
                    'i',
                    instant_event(
                        &format!("{kind:?}"),
                        "fault",
                        lane::FAULTS,
                        at.as_nanos(),
                        &args,
                    ),
                );
            }
            TraceEvent::Retry { query, backoff, at } => {
                let mut args = format!("\"backoff_us\":{}", us(backoff.as_nanos()));
                if query != TraceEvent::NO_QUERY {
                    let _ = write!(args, ",\"query\":{query}");
                }
                push(
                    &mut out,
                    at.as_nanos(),
                    'i',
                    instant_event("retry", "fault", lane::FAULTS, at.as_nanos(), &args),
                );
            }
            TraceEvent::ShardFanout { query, task, shards, at } => {
                if !shard_lane_named {
                    shard_lane_named = true;
                    push(&mut out, 0, 'M', thread_name(lane::SHARDS, "shard fan-out"));
                }
                fanouts.push(((query, task), at.as_nanos()));
                let args = format!("\"query\":{query},\"task\":{task},\"shards\":{shards}");
                push(
                    &mut out,
                    at.as_nanos(),
                    'i',
                    instant_event(
                        &format!("fanout q{query} t{task}"),
                        "shard",
                        lane::SHARDS,
                        at.as_nanos(),
                        &args,
                    ),
                );
            }
            TraceEvent::ShardMerge { query, task, shards, rows, bytes, start, end } => {
                if !shard_lane_named {
                    shard_lane_named = true;
                    push(&mut out, 0, 'M', thread_name(lane::SHARDS, "shard fan-out"));
                }
                // The outer span runs from fan-out (falling back to the
                // merge start for truncated streams) to merge completion;
                // the nested span is the merge kernel itself.
                let open = fanouts
                    .iter()
                    .find(|(k, _)| *k == (query, task))
                    .map_or(start.as_nanos(), |&(_, ts)| ts);
                let args = format!("\"query\":{query},\"task\":{task},\"shards\":{shards}");
                push(
                    &mut out,
                    open,
                    'X',
                    complete_event(
                        &format!("shard q{query} t{task}"),
                        "shard",
                        lane::SHARDS,
                        open,
                        end.as_nanos(),
                        &args,
                    ),
                );
                let margs = format!(
                    "\"query\":{query},\"task\":{task},\"shards\":{shards},\"rows\":{rows},\"bytes\":{bytes}"
                );
                push(
                    &mut out,
                    start.as_nanos(),
                    'X',
                    complete_event(
                        &format!("merge q{query} t{task}"),
                        "shard",
                        lane::SHARDS,
                        start.as_nanos(),
                        end.as_nanos(),
                        &margs,
                    ),
                );
            }
            TraceEvent::Placement { query, task, op, phase, est, chosen, reason, at } => {
                let mut args = format!(
                    "\"query\":{query},\"task\":{task},\"phase\":\"{phase:?}\",\"est_cpu_us\":{},\"est_gpu_us\":{}",
                    us(est.get(DeviceId::Cpu).as_nanos()),
                    us(est.get(DeviceId::Gpu).as_nanos()),
                );
                // Devices past the classic pair only appear when the
                // policy actually estimated them (K = 1 stays identical).
                for (d, t) in est.iter().skip(2) {
                    let _ = write!(args, ",\"est_gpu{}_us\":{}", d.index(), us(t.as_nanos()));
                }
                let _ = write!(args, ",\"chosen\":\"{chosen}\",\"reason\":\"{reason:?}\"");
                push(
                    &mut out,
                    at.as_nanos(),
                    'i',
                    instant_event(
                        &format!("{op:?} → {chosen}"),
                        "placement",
                        lane::PLACEMENT,
                        at.as_nanos(),
                        &args,
                    ),
                );
            }
            TraceEvent::ModelUpdate { query, task, op, device, predicted, actual, at } => {
                // Refinements ride the placement lane: they are the cost
                // model's side of the placement conversation.
                let args = format!(
                    "\"query\":{query},\"task\":{task},\"device\":\"{device}\",\"predicted_us\":{},\"actual_us\":{}",
                    us(predicted.as_nanos()),
                    us(actual.as_nanos()),
                );
                push(
                    &mut out,
                    at.as_nanos(),
                    'i',
                    instant_event(
                        &format!("{op:?} model update"),
                        "model",
                        lane::PLACEMENT,
                        at.as_nanos(),
                        &args,
                    ),
                );
            }
            TraceEvent::OpStaged { query, task, device, chunks, chunk_bytes, at } => {
                ensure_device_lanes(&mut out, &mut devices_seen, device);
                let args = format!(
                    "\"query\":{query},\"task\":{task},\"chunks\":{chunks},\"chunk_bytes\":{chunk_bytes}"
                );
                push(
                    &mut out,
                    at.as_nanos(),
                    'i',
                    instant_event(
                        &format!("staged ×{chunks}"),
                        "staging",
                        device_lane(device, Role::Heap),
                        at.as_nanos(),
                        &args,
                    ),
                );
            }
            TraceEvent::Append { table, rows, bytes, epoch, at } => {
                if !feed_lane_named {
                    feed_lane_named = true;
                    push(&mut out, 0, 'M', thread_name(lane::FEED, "feed"));
                }
                let args = format!(
                    "\"table\":{table},\"rows\":{rows},\"bytes\":{bytes},\"epoch\":{epoch}"
                );
                push(
                    &mut out,
                    at.as_nanos(),
                    'i',
                    instant_event(
                        &format!("append +{rows} e{epoch}"),
                        "feed",
                        lane::FEED,
                        at.as_nanos(),
                        &args,
                    ),
                );
            }
            TraceEvent::EpochSeal { table, segment, rows, epoch, at } => {
                if !feed_lane_named {
                    feed_lane_named = true;
                    push(&mut out, 0, 'M', thread_name(lane::FEED, "feed"));
                }
                let args = format!(
                    "\"table\":{table},\"segment\":{segment},\"rows\":{rows},\"epoch\":{epoch}"
                );
                push(
                    &mut out,
                    at.as_nanos(),
                    'i',
                    instant_event(
                        &format!("seal s{segment} e{epoch}"),
                        "feed",
                        lane::FEED,
                        at.as_nanos(),
                        &args,
                    ),
                );
            }
            TraceEvent::WindowFire { standing, tick, query, lo, hi, at } => {
                if !feed_lane_named {
                    feed_lane_named = true;
                    push(&mut out, 0, 'M', thread_name(lane::FEED, "feed"));
                }
                let args = format!(
                    "\"standing\":{standing},\"tick\":{tick},\"query\":{query},\"lo\":{lo},\"hi\":{hi}"
                );
                push(
                    &mut out,
                    at.as_nanos(),
                    'i',
                    instant_event(
                        &format!("fire s{standing} w{tick}"),
                        "feed",
                        lane::FEED,
                        at.as_nanos(),
                        &args,
                    ),
                );
            }
        }
    }

    out.sort_by(|a, b| {
        a.ts_ns
            .cmp(&b.ts_ns)
            .then(phase_rank(a.ph).cmp(&phase_rank(b.ph)))
            .then(a.seq.cmp(&b.seq))
    });

    let mut doc = String::new();
    doc.push_str("{\"traceEvents\":[\n");
    for (i, e) in out.iter().enumerate() {
        if i > 0 {
            doc.push_str(",\n");
        }
        doc.push_str(&e.json);
    }
    doc.push_str(
        "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"generator\":\"robustq-trace\",\"clock\":\"virtual\"}}",
    );
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EstVec;
    use crate::json::parse;
    use robustq_sim::{DeviceId, Direction, OpClass, VirtualTime};

    fn sample() -> Vec<TraceEvent> {
        let t = VirtualTime::from_micros;
        vec![
            TraceEvent::QuerySubmit { query: 0, session: 0, seq: 0, at: t(0) },
            TraceEvent::OpSpan {
                query: 0,
                task: 0,
                op: OpClass::Selection,
                device: DeviceId::Gpu,
                queued_at: t(0),
                start: t(1),
                end: t(5),
                bytes_in: 100,
                bytes_out: 10,
                rows_out: 2,
                outcome: crate::event::OpOutcome::Completed,
            },
            TraceEvent::Transfer {
                device: DeviceId::Gpu,
                dir: Direction::HostToDevice,
                kind: TransferKind::Input,
                query: 0,
                bytes: 100,
                start: t(1),
                end: t(2),
                service: VirtualTime::from_nanos(800),
                faulted: false,
                waste: VirtualTime::ZERO,
            },
            TraceEvent::QueryDone {
                query: 0,
                session: 0,
                seq: 0,
                submit: t(0),
                admit: t(0),
                end: t(6),
                rows: 2,
            },
        ]
    }

    #[test]
    fn export_is_valid_json() {
        let doc = chrome_trace_json(&sample());
        let v = parse(&doc).expect("valid JSON");
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        assert!(events.len() >= 4 + 8, "spans + metadata present");
        for e in events {
            assert!(e.get("ph").is_some() && e.get("ts").is_some());
        }
    }

    #[test]
    fn query_spans_are_balanced_b_e_pairs() {
        let doc = chrome_trace_json(&sample());
        let v = parse(&doc).unwrap();
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        let phases: Vec<&str> = events
            .iter()
            .filter(|e| e.get("cat").and_then(|c| c.as_str()) == Some("query"))
            .map(|e| e.get("ph").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(phases, vec!["B", "E"]);
    }

    #[test]
    fn placement_records_both_estimates() {
        let ev = TraceEvent::Placement {
            query: 1,
            task: 2,
            op: OpClass::HashJoin,
            phase: crate::event::PlacePhase::Ready,
            est: EstVec::pair(VirtualTime::from_micros(10), VirtualTime::from_micros(4)),
            chosen: DeviceId::Gpu,
            reason: crate::event::PlaceReason::CostModel,
            at: VirtualTime::from_micros(3),
        };
        let doc = chrome_trace_json(&[ev]);
        let v = parse(&doc).unwrap();
        let e = v
            .get("traceEvents")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .find(|e| e.get("cat").and_then(|c| c.as_str()) == Some("placement"))
            .unwrap();
        let args = e.get("args").unwrap();
        assert_eq!(args.get("est_cpu_us").unwrap().as_num(), Some(10.0));
        assert_eq!(args.get("est_gpu_us").unwrap().as_num(), Some(4.0));
        assert_eq!(args.get("chosen").unwrap().as_str(), Some("GPU"));
    }

    #[test]
    fn overlapping_session_spans_degrade_to_complete_events() {
        let t = VirtualTime::from_micros;
        // Open-loop: session 0 has two queries in flight. Completion
        // order is end order, so the long span [0, 10] arrives after the
        // nested [5, 8] one.
        let events = vec![
            TraceEvent::QueryDone {
                query: 1,
                session: 0,
                seq: 1,
                submit: t(5),
                admit: t(5),
                end: t(8),
                rows: 1,
            },
            TraceEvent::QueryDone {
                query: 0,
                session: 0,
                seq: 0,
                submit: t(0),
                admit: t(2),
                end: t(10),
                rows: 1,
            },
            TraceEvent::QueryShed {
                session: 0,
                seq: 2,
                submit: t(9),
                reason: crate::event::ShedReason::QueueFull,
                at: t(9),
            },
        ];
        let doc = chrome_trace_json(&events);
        crate::lint::lint_chrome_trace(&doc).expect("balanced despite overlap");
        let v = parse(&doc).unwrap();
        let parsed = v.get("traceEvents").unwrap().as_arr().unwrap();
        let phases: Vec<&str> = parsed
            .iter()
            .filter(|e| e.get("cat").and_then(|c| c.as_str()) == Some("query"))
            .map(|e| e.get("ph").unwrap().as_str().unwrap())
            .collect();
        // First-rendered span keeps B/E; the overlapping one is an X;
        // the shed query is an instant. (Sorted by ts: X@0, B@5, E@8, i@9.)
        assert_eq!(phases, vec!["X", "B", "E", "i"]);
        let x = parsed
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .unwrap();
        assert_eq!(
            x.get("args").unwrap().get("admit_wait_us").unwrap().as_num(),
            Some(2.0)
        );
        let shed = parsed
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("shed (QueueFull)"))
            .unwrap();
        assert_eq!(
            shed.get("args").unwrap().get("reason").unwrap().as_str(),
            Some("QueueFull")
        );
    }

    #[test]
    fn second_coprocessor_gets_its_own_lane_block() {
        let t = VirtualTime::from_micros;
        let g2 = DeviceId::coprocessor(2);
        let events = vec![
            TraceEvent::OpSpan {
                query: 0,
                task: 0,
                op: OpClass::Selection,
                device: g2,
                queued_at: t(0),
                start: t(1),
                end: t(5),
                bytes_in: 100,
                bytes_out: 10,
                rows_out: 2,
                outcome: crate::event::OpOutcome::Completed,
            },
            TraceEvent::Transfer {
                device: g2,
                dir: Direction::HostToDevice,
                kind: TransferKind::Input,
                query: 0,
                bytes: 100,
                start: t(0),
                end: t(1),
                service: VirtualTime::from_nanos(500),
                faulted: false,
                waste: VirtualTime::ZERO,
            },
        ];
        let doc = chrome_trace_json(&events);
        let v = parse(&doc).unwrap();
        let parsed = v.get("traceEvents").unwrap().as_arr().unwrap();
        // The GPU2 block's lane labels were emitted.
        let names: Vec<String> = parsed
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M"))
            .filter_map(|e| {
                e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(|n| n.as_str())
                    .map(str::to_string)
            })
            .collect();
        assert!(names.iter().any(|n| n == "GPU2 kernels"));
        assert!(names.iter().any(|n| n == "link host→GPU2"));
        assert!(names.iter().any(|n| n == "GPU2 column cache"));
        // The op span landed on the block's ops lane, not the GPU1 lane.
        let op = parsed
            .iter()
            .find(|e| e.get("cat").and_then(|c| c.as_str()) == Some("op"))
            .unwrap();
        assert_eq!(
            op.get("tid").unwrap().as_num(),
            Some(lane::EXTRA_DEVICES as f64)
        );
        let xfer = parsed
            .iter()
            .find(|e| e.get("cat").and_then(|c| c.as_str()) == Some("xfer"))
            .unwrap();
        assert_eq!(
            xfer.get("tid").unwrap().as_num(),
            Some((lane::EXTRA_DEVICES + 1) as f64)
        );
    }
}
