//! Analytical cardinality estimation for compile-time placement.
//!
//! Compile-time heuristics (Critical Path, GPU-Preferred) must guess
//! operator input/output sizes *before* execution — the paper's Section 4
//! lists exactly this dependence on cardinality estimates as a weakness of
//! compile-time placement. The estimator here is deliberately simple
//! (textbook selectivity constants), so the compile-time strategies carry a
//! realistic amount of estimation error while run-time strategies use
//! exact, observed cardinalities.

use crate::plan::{JoinKind, PlanNode};
use crate::predicate::{CmpOp, Predicate};
use robustq_storage::Database;

/// Estimated size of one operator's output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Estimated output rows.
    pub rows: f64,
    /// Estimated output payload bytes.
    pub bytes: f64,
    /// Fraction of this subtree's base table that survives (used for
    /// foreign-key join estimation); 1.0 when unknown.
    pub fraction: f64,
}

/// Default selectivity of a predicate.
pub fn selectivity(pred: &Predicate) -> f64 {
    match pred {
        Predicate::True => 1.0,
        Predicate::Cmp { op, .. } => match op {
            CmpOp::Eq => 0.05,
            CmpOp::Ne => 0.95,
            _ => 0.33,
        },
        Predicate::Between { .. } => 0.15,
        Predicate::InList { values, .. } => (0.05 * values.len() as f64).min(1.0),
        Predicate::StrPrefix { .. } | Predicate::StrSuffix { .. } => 0.1,
        Predicate::ColCmp { .. } => 0.3,
        Predicate::And(ps) => ps.iter().map(selectivity).product(),
        Predicate::Or(ps) => ps.iter().map(selectivity).sum::<f64>().min(1.0),
        Predicate::Not(p) => 1.0 - selectivity(p),
    }
}

/// Estimate the output of `node` bottom-up.
pub fn estimate(node: &PlanNode, db: &Database) -> Estimate {
    match node {
        PlanNode::Scan { table, columns, predicate } => {
            let (rows, width) = match db.table(table) {
                Some(t) => {
                    let width: u64 = columns
                        .iter()
                        .filter_map(|c| t.column(c))
                        .map(|c| c.data_type().byte_width() as u64)
                        .sum();
                    (t.num_rows() as f64, width.max(1) as f64)
                }
                None => (0.0, 1.0),
            };
            let sel = predicate.as_ref().map_or(1.0, selectivity);
            Estimate { rows: rows * sel, bytes: rows * sel * width, fraction: sel }
        }
        PlanNode::Select { input, predicate } => {
            let e = estimate(input, db);
            let sel = selectivity(predicate);
            Estimate {
                rows: e.rows * sel,
                bytes: e.bytes * sel,
                fraction: e.fraction * sel,
            }
        }
        PlanNode::HashJoin { build, probe, kind, .. } => {
            let b = estimate(build, db);
            let p = estimate(probe, db);
            // Foreign-key assumption, symmetric in the join direction:
            // the join keeps `frac_probe · frac_build` of the *larger*
            // side's base table (the fact side of a fact–dimension join).
            let p_base = if p.fraction > 0.0 { p.rows / p.fraction } else { 0.0 };
            let b_base = if b.fraction > 0.0 { b.rows / b.fraction } else { 0.0 };
            let matched =
                (p.fraction * b.fraction).min(1.0) * p_base.max(b_base);
            let rows = match kind {
                JoinKind::Inner => matched,
                JoinKind::Semi => p.rows * b.fraction.min(1.0),
                JoinKind::Anti => p.rows * (1.0 - b.fraction.min(1.0)),
            };
            let row_width = if p.rows > 0.5 { p.bytes / p.rows } else { 8.0 };
            let build_width = if b.rows > 0.5 { b.bytes / b.rows } else { 0.0 };
            let width = match kind {
                JoinKind::Inner => row_width + build_width,
                _ => row_width,
            };
            Estimate { rows, bytes: rows * width, fraction: p.fraction * b.fraction.min(1.0) }
        }
        PlanNode::Project { input, exprs } => {
            let e = estimate(input, db);
            Estimate {
                rows: e.rows,
                bytes: e.rows * 8.0 * exprs.len() as f64,
                fraction: e.fraction,
            }
        }
        PlanNode::Aggregate { input, group_by, aggs } => {
            let e = estimate(input, db);
            let groups = if group_by.is_empty() {
                1.0
            } else {
                // Square-root rule of thumb for distinct groups.
                e.rows.sqrt().max(1.0)
            };
            Estimate {
                rows: groups,
                bytes: groups * 8.0 * (group_by.len() + aggs.len()) as f64,
                fraction: 1.0,
            }
        }
        PlanNode::Sort { input, limit, .. } => {
            let e = estimate(input, db);
            let rows = match limit {
                Some(l) => e.rows.min(*l as f64),
                None => e.rows,
            };
            let width = if e.rows > 0.5 { e.bytes / e.rows } else { 8.0 };
            Estimate { rows, bytes: rows * width, fraction: e.fraction }
        }
    }
}

/// Estimated *input* bytes of `node`: the sum of its children's outputs,
/// or the base columns it reads for scans.
pub fn estimate_input_bytes(node: &PlanNode, db: &Database) -> f64 {
    match node {
        PlanNode::Scan { .. } => {
            let (table, cols) = node.scan_access().expect("scan node");
            match db.table(table) {
                Some(t) => cols
                    .iter()
                    .filter_map(|c| t.column(c))
                    .map(|c| c.byte_size() as f64)
                    .sum(),
                None => 0.0,
            }
        }
        _ => node.children().iter().map(|c| estimate(c, db).bytes).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::plan::AggSpec;
    use robustq_storage::gen::ssb::SsbGenerator;

    fn db() -> Database {
        SsbGenerator::new(1).with_rows_per_sf(1_000).generate()
    }

    #[test]
    fn scan_estimate_uses_table_cardinality() {
        let db = db();
        let plan = PlanNode::scan("lineorder", ["lo_revenue"]);
        let e = estimate(&plan, &db);
        assert_eq!(e.rows, 1_000.0);
        assert_eq!(e.bytes, 8_000.0);
        assert_eq!(e.fraction, 1.0);
    }

    #[test]
    fn predicate_reduces_estimate() {
        let db = db();
        let plan = PlanNode::scan("lineorder", ["lo_revenue"])
            .filter(Predicate::between("lo_discount", 1, 3));
        let e = estimate(&plan, &db);
        assert!(e.rows < 1_000.0 && e.rows > 0.0);
        assert!(e.fraction < 1.0);
    }

    #[test]
    fn fk_join_scales_with_build_fraction() {
        let db = db();
        let dim = PlanNode::scan("date", ["d_datekey"])
            .filter(Predicate::eq("d_year", 1993));
        let plan = PlanNode::scan("lineorder", ["lo_orderdate", "lo_revenue"]).join(
            dim,
            "lo_orderdate",
            "d_datekey",
        );
        let e = estimate(&plan, &db);
        assert!(e.rows < 1_000.0, "filtered dim join must shrink fact side");
        assert!(e.rows > 1.0);
    }

    #[test]
    fn aggregate_shrinks_to_groups() {
        let db = db();
        let plan = PlanNode::scan("lineorder", ["lo_orderdate", "lo_revenue"]).aggregate(
            ["lo_orderdate"],
            vec![AggSpec::sum(Expr::col("lo_revenue"), "r")],
        );
        let e = estimate(&plan, &db);
        assert!(e.rows <= 1_000.0f64.sqrt() + 1.0);
    }

    #[test]
    fn and_selectivities_multiply() {
        let p = Predicate::and([
            Predicate::eq("a", 1),
            Predicate::between("b", 1, 2),
        ]);
        assert!((selectivity(&p) - 0.05 * 0.15).abs() < 1e-12);
    }

    #[test]
    fn input_bytes_for_scan_counts_predicate_columns() {
        let db = db();
        let plain = PlanNode::scan("lineorder", ["lo_revenue"]);
        let with_pred = PlanNode::scan("lineorder", ["lo_revenue"])
            .filter(Predicate::between("lo_discount", 1, 3));
        assert!(
            estimate_input_bytes(&with_pred, &db) > estimate_input_bytes(&plain, &db)
        );
    }
}
