//! Compiled-execution comparator (Section 5.5, "Compiled Execution").
//!
//! Query compilation fuses pipelineable operators into single functions:
//! intermediate results are only materialized at pipeline breakers
//! (Neumann-style data-centric compilation). The cost model here charges
//!
//! * a fixed per-query **compilation time** (generating and compiling the
//!   pipelines),
//! * one pass over each pipeline's *source* bytes at the faster of the
//!   projection-class and the operator's own throughput — fused operators
//!   process tuples in registers, so a fused pass never costs more than
//!   the same operator's vectorized pass,
//! * full materialization cost at each pipeline breaker (join builds,
//!   aggregations, sorts), exactly as in the bulk model.
//!
//! Results are computed by the shared kernels, so they are bit-identical
//! to the other engines. Section 5.5's point — cache thrashing and heap
//! contention are inherent to *all* processing models because pipeline
//! breakers still materialize — is demonstrated by the processing-model
//! ablation (`cargo bench --bench ablations`).

use crate::plan::PlanNode;
use crate::vectorized::engine::{NodeSizes, VectorizedEngine, VectorizedReport};
use robustq_sim::{CostModel, DeviceId, OpClass, SimConfig, VirtualTime};
use robustq_storage::Database;

/// A query-compilation engine over the same database and machine model.
pub struct CompiledEngine<'a> {
    db: &'a Database,
    config: SimConfig,
    cost: CostModel,
    /// Fixed per-query compilation overhead (code generation + JIT).
    pub compile_time: VirtualTime,
}

impl<'a> CompiledEngine<'a> {
    /// A compiled-execution engine over `db` and the given machine.
    pub fn new(db: &'a Database, config: SimConfig) -> Self {
        let cost = CostModel::new(config.cost.clone());
        CompiledEngine {
            db,
            config,
            cost,
            // Scaled with the data downscale like kernel overheads: real
            // systems pay ~10-100 ms, dominating only tiny queries.
            compile_time: VirtualTime::from_micros(15),
        }
    }

    /// Execute `plan` on `device` with a cold device cache.
    pub fn run_query(
        &self,
        plan: &PlanNode,
        device: DeviceId,
    ) -> Result<VectorizedReport, String> {
        self.run_query_inner(plan, device, false)
    }

    /// Execute `plan` on `device` with base columns already resident.
    pub fn run_query_cached(
        &self,
        plan: &PlanNode,
        device: DeviceId,
    ) -> Result<VectorizedReport, String> {
        self.run_query_inner(plan, device, true)
    }

    fn run_query_inner(
        &self,
        plan: &PlanNode,
        device: DeviceId,
        cached: bool,
    ) -> Result<VectorizedReport, String> {
        // Reuse the shared size collector (real execution, real result).
        let collector = VectorizedEngine::new(self.db, self.config.clone());
        let mut sizes: Vec<NodeSizes> = Vec::new();
        let result = collector.collect(plan, &mut sizes)?;

        let kind = device.kind();
        let mut compute = self.compile_time;
        let mut base_bytes = 0u64;
        for s in &sizes {
            if s.is_breaker {
                // Breakers materialize: full bulk-model cost.
                compute += self.cost.duration(s.class, kind, s.bytes_in, s.bytes_out);
            } else {
                // Fused into a pipeline: one register-speed pass over the
                // operator's input, no materialization. Charged at the
                // faster of projection and the operator's own class — the
                // SIMD-recalibrated CPU selection rate outruns projection,
                // and fusing can't be slower than the vectorized pass.
                let fused = self
                    .cost
                    .duration(OpClass::Projection, kind, s.bytes_in, 0)
                    .min(self.cost.duration(s.class, kind, s.bytes_in, 0));
                compute += fused;
            }
            base_bytes += s.base_bytes;
        }

        let (time, transfer_time) = if device == DeviceId::Cpu {
            (compute, VirtualTime::ZERO)
        } else {
            let link = self.config.topology.link(device);
            let transfer = if cached {
                VirtualTime::ZERO
            } else {
                link.service_time(base_bytes)
            };
            let result_back = link.service_time(result.byte_size());
            // Morsel-style streaming overlaps transfer and compute
            // (Section 5.5's discussion of compiled pipelines).
            (compute.max(transfer) + result_back, transfer + result_back)
        };
        Ok(VectorizedReport { time, transfer_time, result })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::ops;
    use crate::plan::AggSpec;
    use crate::predicate::Predicate;
    use robustq_storage::gen::ssb::SsbGenerator;

    fn setup() -> (Database, PlanNode) {
        let db = SsbGenerator::new(1).with_rows_per_sf(4_000).generate();
        let plan = PlanNode::scan("lineorder", ["lo_orderdate", "lo_revenue"])
            .filter(Predicate::between("lo_discount", 1, 3))
            .join(
                PlanNode::scan("date", ["d_datekey"]).filter(Predicate::eq("d_year", 1994)),
                "lo_orderdate",
                "d_datekey",
            )
            .aggregate([] as [&str; 0], vec![AggSpec::sum(Expr::col("lo_revenue"), "r")]);
        (db, plan)
    }

    #[test]
    fn results_match_the_other_engines() {
        let (db, plan) = setup();
        let bulk = ops::execute_plan(&plan, &db).unwrap();
        let eng = CompiledEngine::new(&db, SimConfig::default());
        let cpu = eng.run_query(&plan, DeviceId::Cpu).unwrap();
        let gpu = eng.run_query_cached(&plan, DeviceId::Gpu).unwrap();
        assert_eq!(cpu.result.checksum(), bulk.checksum());
        assert_eq!(gpu.result.checksum(), bulk.checksum());
    }

    #[test]
    fn compiled_pipelines_beat_vectorized_on_large_scans() {
        let (db, plan) = setup();
        let compiled = CompiledEngine::new(&db, SimConfig::default());
        let vectorized = VectorizedEngine::new(&db, SimConfig::default());
        let c = compiled.run_query(&plan, DeviceId::Cpu).unwrap();
        let v = vectorized.run_query(&plan, DeviceId::Cpu).unwrap();
        // Fused register pipelines skip per-vector dispatch and
        // per-operator scans; with the fixed compile overhead the large
        // query still comes out ahead.
        assert!(
            c.time < v.time + compiled.compile_time,
            "compiled {} vs vectorized {}",
            c.time,
            v.time
        );
    }

    #[test]
    fn compile_overhead_dominates_tiny_queries() {
        let db = SsbGenerator::new(1).with_rows_per_sf(50).generate();
        let plan = PlanNode::scan("supplier", ["s_suppkey"]);
        let compiled = CompiledEngine::new(&db, SimConfig::default());
        let vectorized = VectorizedEngine::new(&db, SimConfig::default());
        let c = compiled.run_query(&plan, DeviceId::Cpu).unwrap();
        let v = vectorized.run_query(&plan, DeviceId::Cpu).unwrap();
        assert!(c.time > v.time, "tiny query should not amortize compilation");
    }

    #[test]
    fn cold_gpu_still_pays_transfers() {
        let (db, plan) = setup();
        let eng = CompiledEngine::new(&db, SimConfig::default());
        let cold = eng.run_query(&plan, DeviceId::Gpu).unwrap();
        let hot = eng.run_query_cached(&plan, DeviceId::Gpu).unwrap();
        assert!(cold.time > hot.time, "Section 5.5: thrashing persists");
        assert!(cold.transfer_time > hot.transfer_time);
    }
}
