//! Vector-at-a-time comparator engine.
//!
//! Appendix A of the paper compares CoGaDB against MonetDB/Ocelot, a
//! closed third-party engine we cannot rebuild in scope. This module is
//! the documented substitute (DESIGN.md §2): a second, independent
//! execution model over the same storage layer — vector-at-a-time
//! processing as discussed in Section 5.5 — whose CPU and simulated-GPU
//! backends are compared per query against the operator-at-a-time engine
//! in Figures 22/23. [`compiled`] adds the third processing model of
//! Section 5.5, query compilation, used by the processing-model ablation
//! to show that cache thrashing is inherent to all three.

pub mod compiled;
pub mod engine;

pub use compiled::CompiledEngine;
pub use engine::{VectorizedEngine, VectorizedReport};
