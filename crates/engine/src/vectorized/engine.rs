//! The vector-at-a-time comparator engine.
//!
//! Executes the same physical plans as the operator-at-a-time engine (the
//! kernels are shared, so results are bit-identical) but charges virtual
//! time under a vectorized cost model (Section 5.5):
//!
//! * pipelined operators (scans, selections, projections) process
//!   cache-resident vectors and avoid intermediate materialization, so
//!   only pipeline breakers (join builds, aggregations, sorts) pay
//!   materialization cost;
//! * on the co-processor, vector streams overlap transfer with compute,
//!   so a query pays `max(transfer, compute)` rather than their sum.

use crate::batch::Chunk;
use crate::ops;
use crate::plan::PlanNode;
use robustq_sim::{CostModel, DeviceId, OpClass, SimConfig, VirtualTime};
use robustq_storage::Database;

/// Timing report for one query under the vectorized engine.
#[derive(Debug, Clone)]
pub struct VectorizedReport {
    /// Total virtual execution time.
    pub time: VirtualTime,
    /// Portion spent on (overlapped) transfers; zero on the CPU.
    pub transfer_time: VirtualTime,
    /// The (correct) query result.
    pub result: Chunk,
}

/// A vector-at-a-time engine over the same database and machine model.
pub struct VectorizedEngine<'a> {
    db: &'a Database,
    config: SimConfig,
    cost: CostModel,
    /// Rows per vector (the classic 1024–16384 range).
    pub vector_size: usize,
}

/// Per-node size record collected during bottom-up execution (shared
/// with the compiled-execution comparator).
pub(crate) struct NodeSizes {
    pub(crate) class: OpClass,
    pub(crate) bytes_in: u64,
    pub(crate) bytes_out: u64,
    pub(crate) is_breaker: bool,
    pub(crate) base_bytes: u64,
}

impl<'a> VectorizedEngine<'a> {
    /// A vectorized engine over `db` and the given machine.
    pub fn new(db: &'a Database, config: SimConfig) -> Self {
        let cost = CostModel::new(config.cost.clone());
        VectorizedEngine { db, config, cost, vector_size: 4_096 }
    }

    /// Execute `plan` on `device` with a cold device cache (base columns
    /// stream over the link), returning timing and the result.
    pub fn run_query(
        &self,
        plan: &PlanNode,
        device: DeviceId,
    ) -> Result<VectorizedReport, String> {
        self.run_query_inner(plan, device, false)
    }

    /// Like [`VectorizedEngine::run_query`] but with the base columns
    /// already resident on the device (warm cache) — the configuration
    /// the Appendix A comparison measures.
    pub fn run_query_cached(
        &self,
        plan: &PlanNode,
        device: DeviceId,
    ) -> Result<VectorizedReport, String> {
        self.run_query_inner(plan, device, true)
    }

    fn run_query_inner(
        &self,
        plan: &PlanNode,
        device: DeviceId,
        cached: bool,
    ) -> Result<VectorizedReport, String> {
        let mut sizes = Vec::new();
        let result = self.collect(plan, &mut sizes)?;

        let kind = device.kind();
        let mut compute = VirtualTime::ZERO;
        let mut base_bytes = 0u64;
        for s in &sizes {
            // Pipelined operators stream vectors: full scan cost over the
            // input, but materialization (the half-weighted output term of
            // the bulk model) only at pipeline breakers.
            let out = if s.is_breaker { s.bytes_out } else { 0 };
            let d = self.cost.duration(s.class, kind, s.bytes_in, out);
            // Per-vector dispatch replaces the single bulk launch.
            let vectors = (s.bytes_in as usize / (self.vector_size * 8)).max(1) as u64;
            let dispatch = VirtualTime::from_nanos(vectors * 200);
            compute += d + dispatch;
            base_bytes += s.base_bytes;
        }

        let (time, transfer_time) = if device == DeviceId::Cpu {
            (compute, VirtualTime::ZERO)
        } else {
            let link = self.config.topology.link(device);
            let transfer = if cached {
                VirtualTime::ZERO
            } else {
                link.service_time(base_bytes)
            };
            let result_back = link.service_time(result.byte_size());
            // Streamed vectors overlap transfer and compute.
            (compute.max(transfer) + result_back, transfer + result_back)
        };
        Ok(VectorizedReport { time, transfer_time, result })
    }

    /// Bottom-up real execution, recording per-node sizes.
    pub(crate) fn collect(
        &self,
        node: &PlanNode,
        out: &mut Vec<NodeSizes>,
    ) -> Result<Chunk, String> {
        let children: Vec<Chunk> = node
            .children()
            .iter()
            .map(|c| self.collect(c, out))
            .collect::<Result<_, _>>()?;
        let result = ops::execute_node(node, &children, self.db)?;
        let (bytes_in, base_bytes) = match node.scan_access() {
            Some((table, cols)) => {
                let t = self
                    .db
                    .table(table)
                    .ok_or_else(|| format!("no table {table}"))?;
                let b: u64 = cols
                    .iter()
                    .filter_map(|c| t.column(c))
                    .map(|c| c.byte_size())
                    .sum();
                (b, b)
            }
            None => (children.iter().map(Chunk::byte_size).sum(), 0),
        };
        let is_breaker = matches!(
            node,
            PlanNode::HashJoin { .. } | PlanNode::Aggregate { .. } | PlanNode::Sort { .. }
        );
        out.push(NodeSizes {
            class: node.op_class(),
            bytes_in,
            bytes_out: result.byte_size(),
            is_breaker,
            base_bytes,
        });
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::plan::AggSpec;
    use crate::predicate::Predicate;
    use robustq_sim::DeviceKind;
    use robustq_storage::gen::ssb::SsbGenerator;

    fn setup() -> (Database, PlanNode) {
        let db = SsbGenerator::new(1).with_rows_per_sf(2_000).generate();
        let plan = PlanNode::scan("lineorder", ["lo_orderdate", "lo_revenue"])
            .filter(Predicate::between("lo_discount", 1, 3))
            .join(
                PlanNode::scan("date", ["d_datekey"]).filter(Predicate::eq("d_year", 1994)),
                "lo_orderdate",
                "d_datekey",
            )
            .aggregate([] as [&str; 0], vec![AggSpec::sum(Expr::col("lo_revenue"), "r")]);
        (db, plan)
    }

    #[test]
    fn results_match_bulk_engine() {
        let (db, plan) = setup();
        let bulk = ops::execute_plan(&plan, &db).unwrap();
        let eng = VectorizedEngine::new(&db, SimConfig::default());
        let cpu = eng.run_query(&plan, DeviceId::Cpu).unwrap();
        let gpu = eng.run_query(&plan, DeviceId::Gpu).unwrap();
        assert_eq!(cpu.result.checksum(), bulk.checksum());
        assert_eq!(gpu.result.checksum(), bulk.checksum());
    }

    #[test]
    fn cpu_pays_no_transfers() {
        let (db, plan) = setup();
        let eng = VectorizedEngine::new(&db, SimConfig::default());
        let cpu = eng.run_query(&plan, DeviceId::Cpu).unwrap();
        assert_eq!(cpu.transfer_time, VirtualTime::ZERO);
        assert!(cpu.time > VirtualTime::ZERO);
    }

    #[test]
    fn gpu_overlaps_but_still_pays_result_return() {
        let (db, plan) = setup();
        let eng = VectorizedEngine::new(&db, SimConfig::default());
        let gpu = eng.run_query(&plan, DeviceId::Gpu).unwrap();
        assert!(gpu.transfer_time > VirtualTime::ZERO);
        // Overlap: total time is below compute + full transfer.
        let cpu = eng.run_query(&plan, DeviceId::Cpu).unwrap();
        assert!(gpu.time < cpu.time + gpu.transfer_time);
    }

    #[test]
    fn vectorized_cpu_beats_bulk_style_materialization() {
        // The vectorized model must charge less than input+output over
        // every operator (the bulk model), because pipelined operators
        // skip materialization.
        let (db, plan) = setup();
        let eng = VectorizedEngine::new(&db, SimConfig::default());
        let v = eng.run_query(&plan, DeviceId::Cpu).unwrap();

        let cost = CostModel::new(SimConfig::default().cost);
        let mut sizes = Vec::new();
        let _ = eng.collect(&plan, &mut sizes).unwrap();
        let bulk: VirtualTime = sizes
            .iter()
            .map(|s| cost.duration(s.class, DeviceKind::Cpu, s.bytes_in, s.bytes_out))
            .sum();
        // Allow for the per-vector dispatch overhead.
        assert!(v.time < bulk + VirtualTime::from_millis(1));
    }
}
