//! Physical query plans.
//!
//! A plan is a tree of materializing operators. Leaves are table scans
//! (with pushed-down predicates and projections, as CoGaDB's optimizer
//! produces); inner nodes are joins, post-join selections, projections,
//! group-by aggregations and sorts.

use crate::expr::Expr;
use crate::predicate::Predicate;
use robustq_sim::OpClass;
use std::fmt;

/// Join variants used by the workload queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Inner equi-join; output is probe columns then build columns.
    Inner,
    /// Left semi-join: probe rows with at least one build match.
    Semi,
    /// Left anti-join: probe rows with no build match.
    Anti,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Sum of the input expression.
    Sum,
    /// Row count.
    Count,
    /// Minimum value.
    Min,
    /// Maximum value.
    Max,
    /// Arithmetic mean.
    Avg,
}

impl AggFunc {
    /// Lower-case function name.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Sum => "sum",
            AggFunc::Count => "count",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
        }
    }
}

/// One aggregate: `output_name = func(input)`.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// The aggregate function.
    pub func: AggFunc,
    /// The aggregated expression.
    pub input: Expr,
    /// Name of the output column.
    pub output_name: String,
}

impl AggSpec {
    /// An aggregate `output_name = func(input)`.
    pub fn new(func: AggFunc, input: Expr, output_name: impl Into<String>) -> Self {
        AggSpec { func, input, output_name: output_name.into() }
    }

    /// Shorthand for `SUM(input) AS name`.
    pub fn sum(input: Expr, name: impl Into<String>) -> Self {
        Self::new(AggFunc::Sum, input, name)
    }

    /// Shorthand for `COUNT(*) AS name`.
    pub fn count(name: impl Into<String>) -> Self {
        Self::new(AggFunc::Count, Expr::lit(1.0), name)
    }
}

/// Sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    /// Ascending.
    Asc,
    /// Descending.
    Desc,
}

/// One sort key.
#[derive(Debug, Clone, PartialEq)]
pub struct SortKey {
    /// The key column.
    pub column: String,
    /// Its direction.
    pub order: SortOrder,
}

impl SortKey {
    /// Ascending key on `column`.
    pub fn asc(column: impl Into<String>) -> Self {
        SortKey { column: column.into(), order: SortOrder::Asc }
    }

    /// Descending key on `column`.
    pub fn desc(column: impl Into<String>) -> Self {
        SortKey { column: column.into(), order: SortOrder::Desc }
    }
}

/// A physical plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanNode {
    /// Scan a base table, applying an optional pushed-down predicate, and
    /// output the named columns.
    ///
    /// Base columns *read* are the union of `columns` and the predicate's
    /// references — that union is what access statistics and co-processor
    /// cache residency are tracked over.
    Scan {
        /// Table to read.
        table: String,
        /// Columns to output.
        columns: Vec<String>,
        /// Pushed-down filter, if any.
        predicate: Option<Predicate>,
    },
    /// Filter an intermediate result.
    Select {
        /// The filtered child.
        input: Box<PlanNode>,
        /// The filter.
        predicate: Predicate,
    },
    /// Hash equi-join. The hash table is built over `build`.
    HashJoin {
        /// The (hashed) build side.
        build: Box<PlanNode>,
        /// The probe side.
        probe: Box<PlanNode>,
        /// Key column on the build side.
        build_key: String,
        /// Key column on the probe side.
        probe_key: String,
        /// Inner, semi or anti.
        kind: JoinKind,
    },
    /// Compute named expressions.
    Project {
        /// The projected child.
        input: Box<PlanNode>,
        /// `(output name, expression)` pairs.
        exprs: Vec<(String, Expr)>,
    },
    /// Group-by aggregation. An empty `group_by` produces one total row.
    Aggregate {
        /// The aggregated child.
        input: Box<PlanNode>,
        /// Grouping key columns.
        group_by: Vec<String>,
        /// Aggregates to compute.
        aggs: Vec<AggSpec>,
    },
    /// Sort, optionally keeping only the first `limit` rows (top-k).
    Sort {
        /// The sorted child.
        input: Box<PlanNode>,
        /// Sort keys, most significant first.
        keys: Vec<SortKey>,
        /// Keep only the first `limit` rows, if set.
        limit: Option<usize>,
    },
}

impl PlanNode {
    /// Leaf scan builder.
    pub fn scan<S: Into<String>>(
        table: impl Into<String>,
        columns: impl IntoIterator<Item = S>,
    ) -> PlanNode {
        PlanNode::Scan {
            table: table.into(),
            columns: columns.into_iter().map(Into::into).collect(),
            predicate: None,
        }
    }

    /// Attach / replace the predicate of a scan, or wrap any other node in
    /// a `Select`.
    pub fn filter(self, predicate: Predicate) -> PlanNode {
        match self {
            PlanNode::Scan { table, columns, predicate: None } => {
                PlanNode::Scan { table, columns, predicate: Some(predicate) }
            }
            other => PlanNode::Select { input: Box::new(other), predicate },
        }
    }

    /// Inner hash join with `self` as probe side.
    pub fn join(
        self,
        build: PlanNode,
        probe_key: impl Into<String>,
        build_key: impl Into<String>,
    ) -> PlanNode {
        PlanNode::HashJoin {
            build: Box::new(build),
            probe: Box::new(self),
            build_key: build_key.into(),
            probe_key: probe_key.into(),
            kind: JoinKind::Inner,
        }
    }

    /// Semi/anti join with `self` as probe side.
    pub fn join_kind(
        self,
        build: PlanNode,
        probe_key: impl Into<String>,
        build_key: impl Into<String>,
        kind: JoinKind,
    ) -> PlanNode {
        PlanNode::HashJoin {
            build: Box::new(build),
            probe: Box::new(self),
            build_key: build_key.into(),
            probe_key: probe_key.into(),
            kind,
        }
    }

    /// Projection builder.
    pub fn project(self, exprs: Vec<(impl Into<String>, Expr)>) -> PlanNode {
        PlanNode::Project {
            input: Box::new(self),
            exprs: exprs.into_iter().map(|(n, e)| (n.into(), e)).collect(),
        }
    }

    /// Aggregation builder.
    pub fn aggregate<S: Into<String>>(
        self,
        group_by: impl IntoIterator<Item = S>,
        aggs: Vec<AggSpec>,
    ) -> PlanNode {
        PlanNode::Aggregate {
            input: Box::new(self),
            group_by: group_by.into_iter().map(Into::into).collect(),
            aggs,
        }
    }

    /// Sort builder.
    pub fn sort(self, keys: Vec<SortKey>) -> PlanNode {
        PlanNode::Sort { input: Box::new(self), keys, limit: None }
    }

    /// Top-k builder.
    pub fn top_k(self, keys: Vec<SortKey>, limit: usize) -> PlanNode {
        PlanNode::Sort { input: Box::new(self), keys, limit: Some(limit) }
    }

    /// Cost-model class of this operator.
    pub fn op_class(&self) -> OpClass {
        match self {
            PlanNode::Scan { .. } | PlanNode::Select { .. } => OpClass::Selection,
            PlanNode::HashJoin { .. } => OpClass::HashJoin,
            PlanNode::Project { .. } => OpClass::Projection,
            PlanNode::Aggregate { .. } => OpClass::Aggregation,
            PlanNode::Sort { .. } => OpClass::Sort,
        }
    }

    /// Child nodes, build side first for joins.
    pub fn children(&self) -> Vec<&PlanNode> {
        match self {
            PlanNode::Scan { .. } => Vec::new(),
            PlanNode::Select { input, .. }
            | PlanNode::Project { input, .. }
            | PlanNode::Aggregate { input, .. }
            | PlanNode::Sort { input, .. } => vec![input],
            PlanNode::HashJoin { build, probe, .. } => vec![build, probe],
        }
    }

    /// For scans: the table and the full set of base columns *read*
    /// (output columns plus predicate references).
    pub fn scan_access(&self) -> Option<(&str, Vec<String>)> {
        match self {
            PlanNode::Scan { table, columns, predicate } => {
                let mut cols = columns.clone();
                if let Some(p) = predicate {
                    for c in p.referenced_columns() {
                        if !cols.contains(&c) {
                            cols.push(c);
                        }
                    }
                }
                Some((table.as_str(), cols))
            }
            _ => None,
        }
    }

    /// Number of operators in the plan.
    pub fn num_operators(&self) -> usize {
        1 + self.children().iter().map(|c| c.num_operators()).sum::<usize>()
    }

    /// Short operator label for plan display and metrics.
    pub fn label(&self) -> String {
        match self {
            PlanNode::Scan { table, predicate, .. } => match predicate {
                Some(p) => format!("scan({table}, {p})"),
                None => format!("scan({table})"),
            },
            PlanNode::Select { predicate, .. } => format!("select({predicate})"),
            PlanNode::HashJoin { build_key, probe_key, kind, .. } => {
                format!("join[{kind:?}]({probe_key} = {build_key})")
            }
            PlanNode::Project { exprs, .. } => {
                format!(
                    "project({})",
                    exprs.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>().join(", ")
                )
            }
            PlanNode::Aggregate { group_by, aggs, .. } => format!(
                "aggregate(by: [{}], {} aggs)",
                group_by.join(", "),
                aggs.len()
            ),
            PlanNode::Sort { keys, limit, .. } => match limit {
                Some(l) => format!("top{}({})", l, keys.len()),
                None => format!("sort({} keys)", keys.len()),
            },
        }
    }
}

impl fmt::Display for PlanNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn rec(node: &PlanNode, depth: usize, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            writeln!(f, "{}{}", "  ".repeat(depth), node.label())?;
            for c in node.children() {
                rec(c, depth + 1, f)?;
            }
            Ok(())
        }
        rec(self, 0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> PlanNode {
        PlanNode::scan("lineorder", ["lo_revenue", "lo_orderdate"])
            .filter(Predicate::between("lo_discount", 1, 3))
            .join(
                PlanNode::scan("date", ["d_datekey", "d_year"])
                    .filter(Predicate::eq("d_year", 1993)),
                "lo_orderdate",
                "d_datekey",
            )
            .aggregate(
                ["d_year"],
                vec![AggSpec::sum(Expr::col("lo_revenue"), "revenue")],
            )
    }

    #[test]
    fn builders_produce_expected_shape() {
        let p = sample_plan();
        assert_eq!(p.num_operators(), 4);
        assert_eq!(p.op_class(), OpClass::Aggregation);
        let agg_children = p.children();
        let join = agg_children[0];
        assert_eq!(join.op_class(), OpClass::HashJoin);
        assert_eq!(join.children().len(), 2);
    }

    #[test]
    fn filter_merges_into_scan() {
        let p = PlanNode::scan("t", ["a"]).filter(Predicate::eq("b", 1));
        match &p {
            PlanNode::Scan { predicate: Some(_), .. } => {}
            other => panic!("expected scan with predicate, got {other:?}"),
        }
        // A second filter wraps in a Select.
        let p = p.filter(Predicate::eq("a", 2));
        assert!(matches!(p, PlanNode::Select { .. }));
    }

    #[test]
    fn scan_access_includes_predicate_columns() {
        let p = PlanNode::scan("t", ["a"]).filter(Predicate::eq("b", 1));
        let (table, cols) = p.scan_access().unwrap();
        assert_eq!(table, "t");
        assert_eq!(cols, vec!["a".to_string(), "b".into()]);
        // No duplicates when predicate references an output column.
        let p = PlanNode::scan("t", ["a"]).filter(Predicate::eq("a", 1));
        let (_, cols) = p.scan_access().unwrap();
        assert_eq!(cols, vec!["a".to_string()]);
    }

    #[test]
    fn non_scans_have_no_scan_access() {
        assert!(sample_plan().scan_access().is_none());
    }

    #[test]
    fn display_indents_tree() {
        let s = sample_plan().to_string();
        assert!(s.contains("aggregate"));
        assert!(s.contains("\n  join"));
        assert!(s.contains("\n    scan(date"));
    }

    #[test]
    fn top_k_has_limit() {
        let p = PlanNode::scan("t", ["a"]).top_k(vec![SortKey::desc("a")], 10);
        match p {
            PlanNode::Sort { limit: Some(10), .. } => {}
            other => panic!("unexpected {other:?}"),
        }
    }
}
