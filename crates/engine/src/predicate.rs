//! Filter predicates, evaluated to row masks or selection vectors.
//!
//! Covers the predicate forms of the SSB and TPC-H query subset: scalar
//! comparisons, `BETWEEN`, `IN` lists, string prefix/suffix matching
//! (`LIKE 'x%'` / `LIKE '%x'`), column-to-column comparison (TPC-H Q5's
//! `c_nationkey = s_nationkey`, Q4's `l_commitdate < l_receiptdate`) and
//! boolean combinations.
//!
//! Two evaluation forms exist:
//!
//! * the original mask form ([`Predicate::evaluate`] /
//!   [`Predicate::evaluate_range`]) producing one `bool` per row, and
//! * the selection-vector form ([`Predicate::evaluate_selvec`] and the
//!   range/refine variants), which compiles the predicate once per chunk
//!   (`CompiledPred` — columns resolved, dictionary match tables built)
//!   and then emits qualifying `u32` positions directly, with no
//!   intermediate `Vec<bool>`. Conjunctions short-circuit per row, and an
//!   incoming selection vector is refined **in place** rather than
//!   re-deriving positions from scratch.
//!
//! Both forms select exactly the same rows. The only observable
//! difference is which rows a *data-dependent* error (NaN in a numeric
//! comparison, incomparable column pair) is raised for: the mask form
//! evaluates every sub-predicate over every row, while the
//! selection-vector form skips rows an earlier conjunct already rejected.
//! Static errors (unknown column, type mismatch) are reported identically
//! — they surface at compile time, before any row is touched.

use crate::batch::{Chunk, SelVec};
use robustq_storage::{ColumnData, Value};
use std::cmp::Ordering;
use std::fmt;
use std::ops::Range;

/// A comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    pub(crate) fn matches(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }

    /// SQL symbol of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// A filter predicate over one chunk.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `column <op> literal`.
    Cmp {
        /// Filtered column.
        column: String,
        /// Comparison operator.
        op: CmpOp,
        /// Literal operand.
        value: Value,
    },
    /// `column BETWEEN lo AND hi` (inclusive).
    Between {
        /// Filtered column.
        column: String,
        /// Inclusive lower bound.
        lo: Value,
        /// Inclusive upper bound.
        hi: Value,
    },
    /// `column IN (values…)`.
    InList {
        /// Filtered column.
        column: String,
        /// Accepted values.
        values: Vec<Value>,
    },
    /// `column LIKE 'prefix%'`.
    StrPrefix {
        /// Filtered string column.
        column: String,
        /// Required prefix.
        prefix: String,
    },
    /// `column LIKE '%suffix'`.
    StrSuffix {
        /// Filtered string column.
        column: String,
        /// Required suffix.
        suffix: String,
    },
    /// `left <op> right` between two columns of the same chunk.
    ColCmp {
        /// Left column.
        left: String,
        /// Comparison operator.
        op: CmpOp,
        /// Right column.
        right: String,
    },
    /// Conjunction.
    And(Vec<Predicate>),
    /// Disjunction.
    Or(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
    /// Always true (used as a neutral element by plan builders).
    True,
}

impl Predicate {
    /// `column = value`.
    pub fn eq(column: impl Into<String>, value: impl Into<Value>) -> Predicate {
        Predicate::Cmp { column: column.into(), op: CmpOp::Eq, value: value.into() }
    }

    /// `column <op> value`.
    pub fn cmp(column: impl Into<String>, op: CmpOp, value: impl Into<Value>) -> Predicate {
        Predicate::Cmp { column: column.into(), op, value: value.into() }
    }

    /// `column BETWEEN lo AND hi`.
    pub fn between(
        column: impl Into<String>,
        lo: impl Into<Value>,
        hi: impl Into<Value>,
    ) -> Predicate {
        Predicate::Between { column: column.into(), lo: lo.into(), hi: hi.into() }
    }

    /// `column IN (values…)`.
    pub fn in_list<V: Into<Value>>(
        column: impl Into<String>,
        values: impl IntoIterator<Item = V>,
    ) -> Predicate {
        Predicate::InList {
            column: column.into(),
            values: values.into_iter().map(Into::into).collect(),
        }
    }

    /// Conjunction (empty input is `TRUE`, one input collapses).
    pub fn and(preds: impl IntoIterator<Item = Predicate>) -> Predicate {
        let v: Vec<Predicate> = preds.into_iter().collect();
        match v.len() {
            0 => Predicate::True,
            1 => v.into_iter().next().expect("len checked"),
            _ => Predicate::And(v),
        }
    }

    /// Disjunction.
    pub fn or(preds: impl IntoIterator<Item = Predicate>) -> Predicate {
        Predicate::Or(preds.into_iter().collect())
    }

    /// Names of all columns the predicate reads.
    pub fn referenced_columns(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns(&self, out: &mut Vec<String>) {
        let mut push = |n: &String| {
            if !out.contains(n) {
                out.push(n.clone());
            }
        };
        match self {
            Predicate::Cmp { column, .. }
            | Predicate::Between { column, .. }
            | Predicate::InList { column, .. }
            | Predicate::StrPrefix { column, .. }
            | Predicate::StrSuffix { column, .. } => push(column),
            Predicate::ColCmp { left, right, .. } => {
                push(left);
                push(right);
            }
            Predicate::And(ps) | Predicate::Or(ps) => {
                for p in ps {
                    p.collect_columns(out);
                }
            }
            Predicate::Not(p) => p.collect_columns(out),
            Predicate::True => {}
        }
    }

    /// Evaluate to one boolean per row.
    pub fn evaluate(&self, chunk: &Chunk) -> Result<Vec<bool>, String> {
        self.evaluate_range(chunk, 0..chunk.num_rows())
    }

    /// Evaluate over `rows` only: one boolean per row of the range, with
    /// result index 0 corresponding to `rows.start`.
    ///
    /// [`Predicate::evaluate`] is this over the full chunk; the
    /// morsel-parallel selection kernel calls it once per morsel, and the
    /// result is positionally identical to the matching slice of a
    /// whole-chunk evaluation.
    pub fn evaluate_range(
        &self,
        chunk: &Chunk,
        rows: Range<usize>,
    ) -> Result<Vec<bool>, String> {
        let n = rows.len();
        match self {
            Predicate::True => Ok(vec![true; n]),
            Predicate::Cmp { column, op, value } => {
                let col = chunk.require_column(column)?;
                cmp_column_value(col, *op, value, rows)
            }
            Predicate::Between { column, lo, hi } => {
                let col = chunk.require_column(column)?;
                let ge = cmp_column_value(col, CmpOp::Ge, lo, rows.clone())?;
                let le = cmp_column_value(col, CmpOp::Le, hi, rows)?;
                Ok(ge.into_iter().zip(le).map(|(a, b)| a && b).collect())
            }
            Predicate::InList { column, values } => {
                let col = chunk.require_column(column)?;
                let mut mask = vec![false; n];
                for v in values {
                    for (m, ok) in mask
                        .iter_mut()
                        .zip(cmp_column_value(col, CmpOp::Eq, v, rows.clone())?)
                    {
                        *m |= ok;
                    }
                }
                Ok(mask)
            }
            Predicate::StrPrefix { column, prefix } => {
                str_match(chunk, column, |s| s.starts_with(prefix.as_str()), rows)
            }
            Predicate::StrSuffix { column, suffix } => {
                str_match(chunk, column, |s| s.ends_with(suffix.as_str()), rows)
            }
            Predicate::ColCmp { left, op, right } => {
                let l = chunk.require_column(left)?;
                let r = chunk.require_column(right)?;
                let mut mask = Vec::with_capacity(n);
                for i in rows {
                    let ord = l
                        .get(i)
                        .partial_cmp_value(&r.get(i))
                        .ok_or_else(|| format!("incomparable columns {left}, {right}"))?;
                    mask.push(op.matches(ord));
                }
                Ok(mask)
            }
            Predicate::And(ps) => {
                let mut mask = vec![true; n];
                for p in ps {
                    for (m, ok) in
                        mask.iter_mut().zip(p.evaluate_range(chunk, rows.clone())?)
                    {
                        *m &= ok;
                    }
                }
                Ok(mask)
            }
            Predicate::Or(ps) => {
                let mut mask = vec![false; n];
                for p in ps {
                    for (m, ok) in
                        mask.iter_mut().zip(p.evaluate_range(chunk, rows.clone())?)
                    {
                        *m |= ok;
                    }
                }
                Ok(mask)
            }
            Predicate::Not(p) => {
                Ok(p.evaluate_range(chunk, rows)?.into_iter().map(|b| !b).collect())
            }
        }
    }

    /// Evaluate to a selection vector: the positions where the predicate
    /// holds, restricted to `sel` when given.
    ///
    /// With `sel == None` this is the position-emitting equivalent of
    /// [`Predicate::evaluate`]: qualifying row indices come out directly,
    /// in increasing order, with no intermediate mask. With `sel == Some`
    /// the incoming positions are refined — only surviving positions are
    /// kept, in their original order — which is how stacked filters
    /// compose without rescanning the base chunk.
    pub fn evaluate_selvec(
        &self,
        chunk: &Chunk,
        sel: Option<&SelVec>,
    ) -> Result<SelVec, String> {
        match sel {
            None => {
                let mut out = Vec::new();
                self.evaluate_positions_range(chunk, 0..chunk.num_rows(), &mut out)?;
                Ok(SelVec::new(out))
            }
            Some(s) => {
                let mut out = Vec::with_capacity(s.len());
                CompiledPred::compile(self, chunk)?
                    .append_filtered(s.positions(), &mut out)?;
                Ok(SelVec::new(out))
            }
        }
    }

    /// Append the qualifying positions of `rows` (global row indices) to
    /// `out`. This is the morsel form of [`Predicate::evaluate_selvec`]:
    /// each worker emits its morsel's positions into a local buffer and
    /// the buffers concatenate in morsel order.
    pub fn evaluate_positions_range(
        &self,
        chunk: &Chunk,
        rows: Range<usize>,
        out: &mut Vec<u32>,
    ) -> Result<(), String> {
        CompiledPred::compile(self, chunk)?.append_range(rows, out)
    }

    /// Refine a position list **in place**, retaining only positions where
    /// the predicate holds (the AND short-circuit path: a conjunction
    /// applied on top of an existing selection never rescans rejected
    /// rows).
    pub fn refine_positions(
        &self,
        chunk: &Chunk,
        positions: &mut Vec<u32>,
    ) -> Result<(), String> {
        CompiledPred::compile(self, chunk)?.retain(positions)
    }
}

/// `lo <= x <= hi` with the same incomparability semantics as
/// [`CompiledPred::test`]: any `NaN` on either bound check is an error
/// (the low bound is checked first).
#[inline]
fn range_contains(x: f64, lo: f64, hi: f64) -> Result<bool, String> {
    let ge = x
        .partial_cmp(&lo)
        .ok_or_else(|| "NaN in comparison".to_string())?
        != Ordering::Less;
    let le = x
        .partial_cmp(&hi)
        .ok_or_else(|| "NaN in comparison".to_string())?
        != Ordering::Greater;
    Ok(ge && le)
}

/// A predicate compiled against one chunk: column references resolved,
/// literals converted and dictionary match tables precomputed, leaving a
/// cheap per-row test. Static errors (unknown column, type mismatch)
/// surface here, before any row is touched, in the same order the mask
/// evaluator reports them.
pub(crate) enum CompiledPred<'a> {
    /// Constant outcome (`TRUE`, and the neutral cases).
    Always(bool),
    /// Truth table over the dictionary codes of a string column.
    Codes {
        /// Per-row dictionary codes.
        codes: &'a [u32],
        /// `table[code]` = does the row match.
        table: Vec<bool>,
    },
    /// `column <op> rhs` over a numeric column.
    Num { col: &'a ColumnData, op: CmpOp, rhs: f64 },
    /// `lo <= column <= hi` over a numeric column.
    NumRange { col: &'a ColumnData, lo: f64, hi: f64 },
    /// `column IN (values…)` over a numeric column.
    NumIn { col: &'a ColumnData, values: Vec<f64> },
    /// `left <op> right` between two columns (names kept for errors).
    Cols {
        left: &'a ColumnData,
        right: &'a ColumnData,
        op: CmpOp,
        lname: &'a str,
        rname: &'a str,
    },
    /// Conjunction; `test` short-circuits on the first false conjunct.
    All(Vec<CompiledPred<'a>>),
    /// Disjunction; `test` short-circuits on the first true branch.
    AnyOf(Vec<CompiledPred<'a>>),
    /// Negation.
    Neg(Box<CompiledPred<'a>>),
}

impl<'a> CompiledPred<'a> {
    /// Resolve `pred` against `chunk`.
    pub(crate) fn compile(
        pred: &'a Predicate,
        chunk: &'a Chunk,
    ) -> Result<CompiledPred<'a>, String> {
        match pred {
            Predicate::True => Ok(CompiledPred::Always(true)),
            Predicate::Cmp { column, op, value } => {
                let col = chunk.require_column(column)?;
                match (col, value) {
                    (ColumnData::Str(d), Value::Str(s)) => Ok(CompiledPred::Codes {
                        codes: d.codes(),
                        table: d
                            .dict()
                            .iter()
                            .map(|entry| op.matches(entry.as_str().cmp(s.as_str())))
                            .collect(),
                    }),
                    (ColumnData::Str(_), other) => {
                        Err(format!("cannot compare string column with {other:?}"))
                    }
                    (col, v) => {
                        let rhs = v.as_f64().ok_or_else(|| {
                            format!("cannot compare numeric column with {v:?}")
                        })?;
                        Ok(CompiledPred::Num { col, op: *op, rhs })
                    }
                }
            }
            Predicate::Between { column, lo, hi } => {
                let col = chunk.require_column(column)?;
                match col {
                    ColumnData::Str(d) => {
                        let lo = match lo {
                            Value::Str(s) => s.as_str(),
                            other => {
                                return Err(format!(
                                    "cannot compare string column with {other:?}"
                                ))
                            }
                        };
                        let hi = match hi {
                            Value::Str(s) => s.as_str(),
                            other => {
                                return Err(format!(
                                    "cannot compare string column with {other:?}"
                                ))
                            }
                        };
                        Ok(CompiledPred::Codes {
                            codes: d.codes(),
                            table: d
                                .dict()
                                .iter()
                                .map(|e| e.as_str() >= lo && e.as_str() <= hi)
                                .collect(),
                        })
                    }
                    _ => {
                        let lo = lo.as_f64().ok_or_else(|| {
                            format!("cannot compare numeric column with {lo:?}")
                        })?;
                        let hi = hi.as_f64().ok_or_else(|| {
                            format!("cannot compare numeric column with {hi:?}")
                        })?;
                        Ok(CompiledPred::NumRange { col, lo, hi })
                    }
                }
            }
            Predicate::InList { column, values } => {
                let col = chunk.require_column(column)?;
                match col {
                    ColumnData::Str(d) => {
                        let mut table = vec![false; d.dict().len()];
                        for v in values {
                            let s = match v {
                                Value::Str(s) => s.as_str(),
                                other => {
                                    return Err(format!(
                                        "cannot compare string column with {other:?}"
                                    ))
                                }
                            };
                            for (t, entry) in table.iter_mut().zip(d.dict().iter()) {
                                *t |= entry.as_str() == s;
                            }
                        }
                        Ok(CompiledPred::Codes { codes: d.codes(), table })
                    }
                    _ => {
                        let values = values
                            .iter()
                            .map(|v| {
                                v.as_f64().ok_or_else(|| {
                                    format!("cannot compare numeric column with {v:?}")
                                })
                            })
                            .collect::<Result<Vec<f64>, _>>()?;
                        Ok(CompiledPred::NumIn { col, values })
                    }
                }
            }
            Predicate::StrPrefix { column, prefix } => {
                compile_str_match(chunk, column, |s| s.starts_with(prefix.as_str()))
            }
            Predicate::StrSuffix { column, suffix } => {
                compile_str_match(chunk, column, |s| s.ends_with(suffix.as_str()))
            }
            Predicate::ColCmp { left, op, right } => Ok(CompiledPred::Cols {
                left: chunk.require_column(left)?,
                right: chunk.require_column(right)?,
                op: *op,
                lname: left,
                rname: right,
            }),
            Predicate::And(ps) => Ok(CompiledPred::All(
                ps.iter()
                    .map(|p| CompiledPred::compile(p, chunk))
                    .collect::<Result<_, _>>()?,
            )),
            Predicate::Or(ps) => Ok(CompiledPred::AnyOf(
                ps.iter()
                    .map(|p| CompiledPred::compile(p, chunk))
                    .collect::<Result<_, _>>()?,
            )),
            Predicate::Not(p) => {
                Ok(CompiledPred::Neg(Box::new(CompiledPred::compile(p, chunk)?)))
            }
        }
    }

    /// Does row `row` match? Data-dependent failures (NaN comparisons,
    /// incomparable column pairs) are reported per row, like the mask
    /// evaluator's.
    #[inline]
    pub(crate) fn test(&self, row: usize) -> Result<bool, String> {
        match self {
            CompiledPred::Always(b) => Ok(*b),
            CompiledPred::Codes { codes, table } => Ok(table[codes[row] as usize]),
            CompiledPred::Num { col, op, rhs } => {
                let ord = col
                    .get_f64(row)
                    .partial_cmp(rhs)
                    .ok_or_else(|| "NaN in comparison".to_string())?;
                Ok(op.matches(ord))
            }
            CompiledPred::NumRange { col, lo, hi } => {
                let v = col.get_f64(row);
                let ge = v
                    .partial_cmp(lo)
                    .ok_or_else(|| "NaN in comparison".to_string())?
                    != Ordering::Less;
                let le = v
                    .partial_cmp(hi)
                    .ok_or_else(|| "NaN in comparison".to_string())?
                    != Ordering::Greater;
                Ok(ge && le)
            }
            CompiledPred::NumIn { col, values } => {
                let v = col.get_f64(row);
                let mut found = false;
                for rhs in values {
                    match v.partial_cmp(rhs) {
                        Some(ord) => found |= ord == Ordering::Equal,
                        None => return Err("NaN in comparison".to_string()),
                    }
                }
                Ok(found)
            }
            CompiledPred::Cols { left, right, op, lname, rname } => {
                let ord = left
                    .get(row)
                    .partial_cmp_value(&right.get(row))
                    .ok_or_else(|| format!("incomparable columns {lname}, {rname}"))?;
                Ok(op.matches(ord))
            }
            CompiledPred::All(ps) => {
                for p in ps {
                    if !p.test(row)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            CompiledPred::AnyOf(ps) => {
                for p in ps {
                    if p.test(row)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            CompiledPred::Neg(p) => Ok(!p.test(row)?),
        }
    }

    /// Append qualifying positions of the dense range `rows` to `out`.
    ///
    /// The leaf shapes that dominate the SSB/TPC-H filters (dictionary
    /// tables, numeric range and comparison over `i32`/`f64` columns) get
    /// tight specialized loops; everything else goes through
    /// [`CompiledPred::test`].
    pub(crate) fn append_range(
        &self,
        rows: Range<usize>,
        out: &mut Vec<u32>,
    ) -> Result<(), String> {
        match self {
            CompiledPred::Always(true) => {
                out.extend(rows.map(|i| i as u32));
                Ok(())
            }
            CompiledPred::Always(false) => Ok(()),
            CompiledPred::Codes { codes, table } => {
                for i in rows {
                    if table[codes[i] as usize] {
                        out.push(i as u32);
                    }
                }
                Ok(())
            }
            CompiledPred::NumRange { col: ColumnData::Int32(v), lo, hi } => {
                for i in rows {
                    if range_contains(v[i] as f64, *lo, *hi)? {
                        out.push(i as u32);
                    }
                }
                Ok(())
            }
            CompiledPred::NumRange { col: ColumnData::Float64(v), lo, hi } => {
                for i in rows {
                    if range_contains(v[i], *lo, *hi)? {
                        out.push(i as u32);
                    }
                }
                Ok(())
            }
            _ => {
                for i in rows {
                    if self.test(i)? {
                        out.push(i as u32);
                    }
                }
                Ok(())
            }
        }
    }

    /// Append the entries of `positions` that match to `out` (sparse
    /// morsel form).
    pub(crate) fn append_filtered(
        &self,
        positions: &[u32],
        out: &mut Vec<u32>,
    ) -> Result<(), String> {
        for &p in positions {
            if self.test(p as usize)? {
                out.push(p);
            }
        }
        Ok(())
    }

    /// Retain only matching entries of `positions`, in place.
    pub(crate) fn retain(&self, positions: &mut Vec<u32>) -> Result<(), String> {
        let mut err: Option<String> = None;
        positions.retain(|&p| {
            if err.is_some() {
                return false;
            }
            match self.test(p as usize) {
                Ok(keep) => keep,
                Err(e) => {
                    err = Some(e);
                    false
                }
            }
        });
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

fn compile_str_match<'a>(
    chunk: &'a Chunk,
    column: &str,
    pred: impl Fn(&str) -> bool,
) -> Result<CompiledPred<'a>, String> {
    match chunk.require_column(column)? {
        ColumnData::Str(d) => Ok(CompiledPred::Codes {
            codes: d.codes(),
            table: d.dict().iter().map(|s| pred(s)).collect(),
        }),
        _ => Err(format!("column {column} is not a string column")),
    }
}

/// Compare the rows of `col` in `rows` against a literal.
///
/// Dictionary columns use a precomputed per-code match table so the string
/// comparison happens once per distinct value, not once per row. (The
/// table covers the whole dictionary even for a sub-range — dictionaries
/// are small relative to row counts.)
fn cmp_column_value(
    col: &ColumnData,
    op: CmpOp,
    value: &Value,
    rows: Range<usize>,
) -> Result<Vec<bool>, String> {
    match (col, value) {
        (ColumnData::Str(d), Value::Str(s)) => {
            let table: Vec<bool> = d
                .dict()
                .iter()
                .map(|entry| op.matches(entry.as_str().cmp(s.as_str())))
                .collect();
            Ok(d.codes()[rows].iter().map(|&c| table[c as usize]).collect())
        }
        (ColumnData::Str(_), other) => {
            Err(format!("cannot compare string column with {other:?}"))
        }
        (col, v) => {
            let rhs = v
                .as_f64()
                .ok_or_else(|| format!("cannot compare numeric column with {v:?}"))?;
            let mut mask = Vec::with_capacity(rows.len());
            for i in rows {
                let ord = col
                    .get_f64(i)
                    .partial_cmp(&rhs)
                    .ok_or_else(|| "NaN in comparison".to_string())?;
                mask.push(op.matches(ord));
            }
            Ok(mask)
        }
    }
}

fn str_match(
    chunk: &Chunk,
    column: &str,
    pred: impl Fn(&str) -> bool,
    rows: Range<usize>,
) -> Result<Vec<bool>, String> {
    match chunk.require_column(column)? {
        ColumnData::Str(d) => {
            let table: Vec<bool> = d.dict().iter().map(|s| pred(s)).collect();
            Ok(d.codes()[rows].iter().map(|&c| table[c as usize]).collect())
        }
        _ => Err(format!("column {column} is not a string column")),
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Cmp { column, op, value } => {
                write!(f, "{column} {} {value}", op.symbol())
            }
            Predicate::Between { column, lo, hi } => {
                write!(f, "{column} BETWEEN {lo} AND {hi}")
            }
            Predicate::InList { column, values } => {
                write!(f, "{column} IN (")?;
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str(")")
            }
            Predicate::StrPrefix { column, prefix } => {
                write!(f, "{column} LIKE '{prefix}%'")
            }
            Predicate::StrSuffix { column, suffix } => {
                write!(f, "{column} LIKE '%{suffix}'")
            }
            Predicate::ColCmp { left, op, right } => {
                write!(f, "{left} {} {right}", op.symbol())
            }
            Predicate::And(ps) => {
                f.write_str("(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" AND ")?;
                    }
                    write!(f, "{p}")?;
                }
                f.write_str(")")
            }
            Predicate::Or(ps) => {
                f.write_str("(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" OR ")?;
                    }
                    write!(f, "{p}")?;
                }
                f.write_str(")")
            }
            Predicate::Not(p) => write!(f, "NOT {p}"),
            Predicate::True => f.write_str("TRUE"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robustq_storage::{DataType, DictColumn, Field};

    fn chunk() -> Chunk {
        Chunk::new(
            vec![
                Field::new("q", DataType::Int32),
                Field::new("d", DataType::Int32),
                Field::new("region", DataType::Str),
            ],
            vec![
                ColumnData::Int32(vec![10, 25, 30, 40]),
                ColumnData::Int32(vec![1, 4, 6, 9]),
                ColumnData::Str(DictColumn::from_strings([
                    "ASIA", "EUROPE", "ASIA", "AMERICA",
                ])),
            ],
        )
    }

    #[test]
    fn numeric_comparisons() {
        let c = chunk();
        assert_eq!(
            Predicate::cmp("q", CmpOp::Lt, 30).evaluate(&c).unwrap(),
            vec![true, true, false, false]
        );
        assert_eq!(
            Predicate::cmp("q", CmpOp::Ge, 30).evaluate(&c).unwrap(),
            vec![false, false, true, true]
        );
        assert_eq!(
            Predicate::cmp("q", CmpOp::Ne, 25).evaluate(&c).unwrap(),
            vec![true, false, true, true]
        );
    }

    #[test]
    fn between_is_inclusive() {
        let c = chunk();
        assert_eq!(
            Predicate::between("d", 4, 6).evaluate(&c).unwrap(),
            vec![false, true, true, false]
        );
    }

    #[test]
    fn string_equality_and_in_list() {
        let c = chunk();
        assert_eq!(
            Predicate::eq("region", "ASIA").evaluate(&c).unwrap(),
            vec![true, false, true, false]
        );
        assert_eq!(
            Predicate::in_list("region", ["ASIA", "AMERICA"]).evaluate(&c).unwrap(),
            vec![true, false, true, true]
        );
    }

    #[test]
    fn string_range_lexicographic() {
        let c = chunk();
        // ASIA <= x <= EUROPE
        assert_eq!(
            Predicate::between("region", "ASIA", "EUROPE").evaluate(&c).unwrap(),
            vec![true, true, true, false]
        );
    }

    #[test]
    fn prefix_suffix() {
        let c = chunk();
        assert_eq!(
            Predicate::StrPrefix { column: "region".into(), prefix: "A".into() }
                .evaluate(&c)
                .unwrap(),
            vec![true, false, true, true]
        );
        assert_eq!(
            Predicate::StrSuffix { column: "region".into(), suffix: "PE".into() }
                .evaluate(&c)
                .unwrap(),
            vec![false, true, false, false]
        );
    }

    #[test]
    fn col_to_col_comparison() {
        let c = chunk();
        // q > d everywhere
        assert_eq!(
            Predicate::ColCmp { left: "q".into(), op: CmpOp::Gt, right: "d".into() }
                .evaluate(&c)
                .unwrap(),
            vec![true; 4]
        );
    }

    #[test]
    fn boolean_combinations() {
        let c = chunk();
        let p = Predicate::and([
            Predicate::cmp("q", CmpOp::Ge, 25),
            Predicate::eq("region", "ASIA"),
        ]);
        assert_eq!(p.evaluate(&c).unwrap(), vec![false, false, true, false]);

        let p = Predicate::or([
            Predicate::eq("region", "EUROPE"),
            Predicate::cmp("q", CmpOp::Gt, 35),
        ]);
        assert_eq!(p.evaluate(&c).unwrap(), vec![false, true, false, true]);

        let p = Predicate::Not(Box::new(Predicate::eq("region", "ASIA")));
        assert_eq!(p.evaluate(&c).unwrap(), vec![false, true, false, true]);
    }

    #[test]
    fn and_of_nothing_is_true() {
        let c = chunk();
        assert_eq!(Predicate::and([]).evaluate(&c).unwrap(), vec![true; 4]);
    }

    #[test]
    fn referenced_columns_collected() {
        let p = Predicate::and([
            Predicate::eq("a", 1),
            Predicate::or([Predicate::eq("b", 2), Predicate::eq("a", 3)]),
        ]);
        assert_eq!(p.referenced_columns(), vec!["a".to_string(), "b".into()]);
    }

    #[test]
    fn range_evaluation_matches_full_slice() {
        let c = chunk();
        let preds = [
            Predicate::cmp("q", CmpOp::Lt, 30),
            Predicate::between("d", 4, 6),
            Predicate::in_list("region", ["ASIA", "AMERICA"]),
            Predicate::StrPrefix { column: "region".into(), prefix: "A".into() },
            Predicate::StrSuffix { column: "region".into(), suffix: "PE".into() },
            Predicate::ColCmp { left: "q".into(), op: CmpOp::Gt, right: "d".into() },
            Predicate::and([
                Predicate::cmp("q", CmpOp::Ge, 25),
                Predicate::Not(Box::new(Predicate::eq("region", "ASIA"))),
            ]),
            Predicate::True,
        ];
        for p in &preds {
            let full = p.evaluate(&c).unwrap();
            for start in 0..4 {
                for end in start..=4 {
                    assert_eq!(
                        p.evaluate_range(&c, start..end).unwrap(),
                        full[start..end],
                        "{p} over {start}..{end}"
                    );
                }
            }
        }
    }

    #[test]
    fn type_errors_are_reported() {
        let c = chunk();
        assert!(Predicate::eq("region", 4).evaluate(&c).is_err());
        assert!(Predicate::eq("q", "x").evaluate(&c).is_err());
        assert!(Predicate::eq("missing", 1).evaluate(&c).is_err());
    }
}
