//! Filter predicates, evaluated to row masks.
//!
//! Covers the predicate forms of the SSB and TPC-H query subset: scalar
//! comparisons, `BETWEEN`, `IN` lists, string prefix/suffix matching
//! (`LIKE 'x%'` / `LIKE '%x'`), column-to-column comparison (TPC-H Q5's
//! `c_nationkey = s_nationkey`, Q4's `l_commitdate < l_receiptdate`) and
//! boolean combinations.

use crate::batch::Chunk;
use robustq_storage::{ColumnData, Value};
use std::cmp::Ordering;
use std::fmt;
use std::ops::Range;

/// A comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    fn matches(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }

    /// SQL symbol of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// A filter predicate over one chunk.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `column <op> literal`.
    Cmp {
        /// Filtered column.
        column: String,
        /// Comparison operator.
        op: CmpOp,
        /// Literal operand.
        value: Value,
    },
    /// `column BETWEEN lo AND hi` (inclusive).
    Between {
        /// Filtered column.
        column: String,
        /// Inclusive lower bound.
        lo: Value,
        /// Inclusive upper bound.
        hi: Value,
    },
    /// `column IN (values…)`.
    InList {
        /// Filtered column.
        column: String,
        /// Accepted values.
        values: Vec<Value>,
    },
    /// `column LIKE 'prefix%'`.
    StrPrefix {
        /// Filtered string column.
        column: String,
        /// Required prefix.
        prefix: String,
    },
    /// `column LIKE '%suffix'`.
    StrSuffix {
        /// Filtered string column.
        column: String,
        /// Required suffix.
        suffix: String,
    },
    /// `left <op> right` between two columns of the same chunk.
    ColCmp {
        /// Left column.
        left: String,
        /// Comparison operator.
        op: CmpOp,
        /// Right column.
        right: String,
    },
    /// Conjunction.
    And(Vec<Predicate>),
    /// Disjunction.
    Or(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
    /// Always true (used as a neutral element by plan builders).
    True,
}

impl Predicate {
    /// `column = value`.
    pub fn eq(column: impl Into<String>, value: impl Into<Value>) -> Predicate {
        Predicate::Cmp { column: column.into(), op: CmpOp::Eq, value: value.into() }
    }

    /// `column <op> value`.
    pub fn cmp(column: impl Into<String>, op: CmpOp, value: impl Into<Value>) -> Predicate {
        Predicate::Cmp { column: column.into(), op, value: value.into() }
    }

    /// `column BETWEEN lo AND hi`.
    pub fn between(
        column: impl Into<String>,
        lo: impl Into<Value>,
        hi: impl Into<Value>,
    ) -> Predicate {
        Predicate::Between { column: column.into(), lo: lo.into(), hi: hi.into() }
    }

    /// `column IN (values…)`.
    pub fn in_list<V: Into<Value>>(
        column: impl Into<String>,
        values: impl IntoIterator<Item = V>,
    ) -> Predicate {
        Predicate::InList {
            column: column.into(),
            values: values.into_iter().map(Into::into).collect(),
        }
    }

    /// Conjunction (empty input is `TRUE`, one input collapses).
    pub fn and(preds: impl IntoIterator<Item = Predicate>) -> Predicate {
        let v: Vec<Predicate> = preds.into_iter().collect();
        match v.len() {
            0 => Predicate::True,
            1 => v.into_iter().next().expect("len checked"),
            _ => Predicate::And(v),
        }
    }

    /// Disjunction.
    pub fn or(preds: impl IntoIterator<Item = Predicate>) -> Predicate {
        Predicate::Or(preds.into_iter().collect())
    }

    /// Names of all columns the predicate reads.
    pub fn referenced_columns(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns(&self, out: &mut Vec<String>) {
        let mut push = |n: &String| {
            if !out.contains(n) {
                out.push(n.clone());
            }
        };
        match self {
            Predicate::Cmp { column, .. }
            | Predicate::Between { column, .. }
            | Predicate::InList { column, .. }
            | Predicate::StrPrefix { column, .. }
            | Predicate::StrSuffix { column, .. } => push(column),
            Predicate::ColCmp { left, right, .. } => {
                push(left);
                push(right);
            }
            Predicate::And(ps) | Predicate::Or(ps) => {
                for p in ps {
                    p.collect_columns(out);
                }
            }
            Predicate::Not(p) => p.collect_columns(out),
            Predicate::True => {}
        }
    }

    /// Evaluate to one boolean per row.
    pub fn evaluate(&self, chunk: &Chunk) -> Result<Vec<bool>, String> {
        self.evaluate_range(chunk, 0..chunk.num_rows())
    }

    /// Evaluate over `rows` only: one boolean per row of the range, with
    /// result index 0 corresponding to `rows.start`.
    ///
    /// [`Predicate::evaluate`] is this over the full chunk; the
    /// morsel-parallel selection kernel calls it once per morsel, and the
    /// result is positionally identical to the matching slice of a
    /// whole-chunk evaluation.
    pub fn evaluate_range(
        &self,
        chunk: &Chunk,
        rows: Range<usize>,
    ) -> Result<Vec<bool>, String> {
        let n = rows.len();
        match self {
            Predicate::True => Ok(vec![true; n]),
            Predicate::Cmp { column, op, value } => {
                let col = chunk.require_column(column)?;
                cmp_column_value(col, *op, value, rows)
            }
            Predicate::Between { column, lo, hi } => {
                let col = chunk.require_column(column)?;
                let ge = cmp_column_value(col, CmpOp::Ge, lo, rows.clone())?;
                let le = cmp_column_value(col, CmpOp::Le, hi, rows)?;
                Ok(ge.into_iter().zip(le).map(|(a, b)| a && b).collect())
            }
            Predicate::InList { column, values } => {
                let col = chunk.require_column(column)?;
                let mut mask = vec![false; n];
                for v in values {
                    for (m, ok) in mask
                        .iter_mut()
                        .zip(cmp_column_value(col, CmpOp::Eq, v, rows.clone())?)
                    {
                        *m |= ok;
                    }
                }
                Ok(mask)
            }
            Predicate::StrPrefix { column, prefix } => {
                str_match(chunk, column, |s| s.starts_with(prefix.as_str()), rows)
            }
            Predicate::StrSuffix { column, suffix } => {
                str_match(chunk, column, |s| s.ends_with(suffix.as_str()), rows)
            }
            Predicate::ColCmp { left, op, right } => {
                let l = chunk.require_column(left)?;
                let r = chunk.require_column(right)?;
                let mut mask = Vec::with_capacity(n);
                for i in rows {
                    let ord = l
                        .get(i)
                        .partial_cmp_value(&r.get(i))
                        .ok_or_else(|| format!("incomparable columns {left}, {right}"))?;
                    mask.push(op.matches(ord));
                }
                Ok(mask)
            }
            Predicate::And(ps) => {
                let mut mask = vec![true; n];
                for p in ps {
                    for (m, ok) in
                        mask.iter_mut().zip(p.evaluate_range(chunk, rows.clone())?)
                    {
                        *m &= ok;
                    }
                }
                Ok(mask)
            }
            Predicate::Or(ps) => {
                let mut mask = vec![false; n];
                for p in ps {
                    for (m, ok) in
                        mask.iter_mut().zip(p.evaluate_range(chunk, rows.clone())?)
                    {
                        *m |= ok;
                    }
                }
                Ok(mask)
            }
            Predicate::Not(p) => {
                Ok(p.evaluate_range(chunk, rows)?.into_iter().map(|b| !b).collect())
            }
        }
    }
}

/// Compare the rows of `col` in `rows` against a literal.
///
/// Dictionary columns use a precomputed per-code match table so the string
/// comparison happens once per distinct value, not once per row. (The
/// table covers the whole dictionary even for a sub-range — dictionaries
/// are small relative to row counts.)
fn cmp_column_value(
    col: &ColumnData,
    op: CmpOp,
    value: &Value,
    rows: Range<usize>,
) -> Result<Vec<bool>, String> {
    match (col, value) {
        (ColumnData::Str(d), Value::Str(s)) => {
            let table: Vec<bool> = d
                .dict()
                .iter()
                .map(|entry| op.matches(entry.as_str().cmp(s.as_str())))
                .collect();
            Ok(d.codes()[rows].iter().map(|&c| table[c as usize]).collect())
        }
        (ColumnData::Str(_), other) => {
            Err(format!("cannot compare string column with {other:?}"))
        }
        (col, v) => {
            let rhs = v
                .as_f64()
                .ok_or_else(|| format!("cannot compare numeric column with {v:?}"))?;
            let mut mask = Vec::with_capacity(rows.len());
            for i in rows {
                let ord = col
                    .get_f64(i)
                    .partial_cmp(&rhs)
                    .ok_or_else(|| "NaN in comparison".to_string())?;
                mask.push(op.matches(ord));
            }
            Ok(mask)
        }
    }
}

fn str_match(
    chunk: &Chunk,
    column: &str,
    pred: impl Fn(&str) -> bool,
    rows: Range<usize>,
) -> Result<Vec<bool>, String> {
    match chunk.require_column(column)? {
        ColumnData::Str(d) => {
            let table: Vec<bool> = d.dict().iter().map(|s| pred(s)).collect();
            Ok(d.codes()[rows].iter().map(|&c| table[c as usize]).collect())
        }
        _ => Err(format!("column {column} is not a string column")),
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Cmp { column, op, value } => {
                write!(f, "{column} {} {value}", op.symbol())
            }
            Predicate::Between { column, lo, hi } => {
                write!(f, "{column} BETWEEN {lo} AND {hi}")
            }
            Predicate::InList { column, values } => {
                write!(f, "{column} IN (")?;
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str(")")
            }
            Predicate::StrPrefix { column, prefix } => {
                write!(f, "{column} LIKE '{prefix}%'")
            }
            Predicate::StrSuffix { column, suffix } => {
                write!(f, "{column} LIKE '%{suffix}'")
            }
            Predicate::ColCmp { left, op, right } => {
                write!(f, "{left} {} {right}", op.symbol())
            }
            Predicate::And(ps) => {
                f.write_str("(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" AND ")?;
                    }
                    write!(f, "{p}")?;
                }
                f.write_str(")")
            }
            Predicate::Or(ps) => {
                f.write_str("(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" OR ")?;
                    }
                    write!(f, "{p}")?;
                }
                f.write_str(")")
            }
            Predicate::Not(p) => write!(f, "NOT {p}"),
            Predicate::True => f.write_str("TRUE"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robustq_storage::{DataType, DictColumn, Field};

    fn chunk() -> Chunk {
        Chunk::new(
            vec![
                Field::new("q", DataType::Int32),
                Field::new("d", DataType::Int32),
                Field::new("region", DataType::Str),
            ],
            vec![
                ColumnData::Int32(vec![10, 25, 30, 40]),
                ColumnData::Int32(vec![1, 4, 6, 9]),
                ColumnData::Str(DictColumn::from_strings([
                    "ASIA", "EUROPE", "ASIA", "AMERICA",
                ])),
            ],
        )
    }

    #[test]
    fn numeric_comparisons() {
        let c = chunk();
        assert_eq!(
            Predicate::cmp("q", CmpOp::Lt, 30).evaluate(&c).unwrap(),
            vec![true, true, false, false]
        );
        assert_eq!(
            Predicate::cmp("q", CmpOp::Ge, 30).evaluate(&c).unwrap(),
            vec![false, false, true, true]
        );
        assert_eq!(
            Predicate::cmp("q", CmpOp::Ne, 25).evaluate(&c).unwrap(),
            vec![true, false, true, true]
        );
    }

    #[test]
    fn between_is_inclusive() {
        let c = chunk();
        assert_eq!(
            Predicate::between("d", 4, 6).evaluate(&c).unwrap(),
            vec![false, true, true, false]
        );
    }

    #[test]
    fn string_equality_and_in_list() {
        let c = chunk();
        assert_eq!(
            Predicate::eq("region", "ASIA").evaluate(&c).unwrap(),
            vec![true, false, true, false]
        );
        assert_eq!(
            Predicate::in_list("region", ["ASIA", "AMERICA"]).evaluate(&c).unwrap(),
            vec![true, false, true, true]
        );
    }

    #[test]
    fn string_range_lexicographic() {
        let c = chunk();
        // ASIA <= x <= EUROPE
        assert_eq!(
            Predicate::between("region", "ASIA", "EUROPE").evaluate(&c).unwrap(),
            vec![true, true, true, false]
        );
    }

    #[test]
    fn prefix_suffix() {
        let c = chunk();
        assert_eq!(
            Predicate::StrPrefix { column: "region".into(), prefix: "A".into() }
                .evaluate(&c)
                .unwrap(),
            vec![true, false, true, true]
        );
        assert_eq!(
            Predicate::StrSuffix { column: "region".into(), suffix: "PE".into() }
                .evaluate(&c)
                .unwrap(),
            vec![false, true, false, false]
        );
    }

    #[test]
    fn col_to_col_comparison() {
        let c = chunk();
        // q > d everywhere
        assert_eq!(
            Predicate::ColCmp { left: "q".into(), op: CmpOp::Gt, right: "d".into() }
                .evaluate(&c)
                .unwrap(),
            vec![true; 4]
        );
    }

    #[test]
    fn boolean_combinations() {
        let c = chunk();
        let p = Predicate::and([
            Predicate::cmp("q", CmpOp::Ge, 25),
            Predicate::eq("region", "ASIA"),
        ]);
        assert_eq!(p.evaluate(&c).unwrap(), vec![false, false, true, false]);

        let p = Predicate::or([
            Predicate::eq("region", "EUROPE"),
            Predicate::cmp("q", CmpOp::Gt, 35),
        ]);
        assert_eq!(p.evaluate(&c).unwrap(), vec![false, true, false, true]);

        let p = Predicate::Not(Box::new(Predicate::eq("region", "ASIA")));
        assert_eq!(p.evaluate(&c).unwrap(), vec![false, true, false, true]);
    }

    #[test]
    fn and_of_nothing_is_true() {
        let c = chunk();
        assert_eq!(Predicate::and([]).evaluate(&c).unwrap(), vec![true; 4]);
    }

    #[test]
    fn referenced_columns_collected() {
        let p = Predicate::and([
            Predicate::eq("a", 1),
            Predicate::or([Predicate::eq("b", 2), Predicate::eq("a", 3)]),
        ]);
        assert_eq!(p.referenced_columns(), vec!["a".to_string(), "b".into()]);
    }

    #[test]
    fn range_evaluation_matches_full_slice() {
        let c = chunk();
        let preds = [
            Predicate::cmp("q", CmpOp::Lt, 30),
            Predicate::between("d", 4, 6),
            Predicate::in_list("region", ["ASIA", "AMERICA"]),
            Predicate::StrPrefix { column: "region".into(), prefix: "A".into() },
            Predicate::StrSuffix { column: "region".into(), suffix: "PE".into() },
            Predicate::ColCmp { left: "q".into(), op: CmpOp::Gt, right: "d".into() },
            Predicate::and([
                Predicate::cmp("q", CmpOp::Ge, 25),
                Predicate::Not(Box::new(Predicate::eq("region", "ASIA"))),
            ]),
            Predicate::True,
        ];
        for p in &preds {
            let full = p.evaluate(&c).unwrap();
            for start in 0..4 {
                for end in start..=4 {
                    assert_eq!(
                        p.evaluate_range(&c, start..end).unwrap(),
                        full[start..end],
                        "{p} over {start}..{end}"
                    );
                }
            }
        }
    }

    #[test]
    fn type_errors_are_reported() {
        let c = chunk();
        assert!(Predicate::eq("region", 4).evaluate(&c).is_err());
        assert!(Predicate::eq("q", "x").evaluate(&c).is_err());
        assert!(Predicate::eq("missing", 1).evaluate(&c).is_err());
    }
}
