//! Group-by aggregation kernel.
//!
//! [`aggregate`] consumes a materialized chunk; [`aggregate_sel`] consumes
//! `(chunk, selection vector)` so a filter→aggregate pipeline never
//! materializes the filtered intermediate — aggregate inputs are evaluated
//! at the selected positions only and group keys are read straight from
//! the base columns.

use crate::batch::{Chunk, SelVec};
use crate::plan::{AggFunc, AggSpec};
use robustq_storage::{ColumnData, DataType, Field};
use std::collections::HashMap;

/// Running state of one aggregate within one group.
///
/// Shared with the parallel kernel (`crate::parallel`), whose phase 2
/// updates states in the exact row order the serial kernel uses.
#[derive(Debug, Clone, Copy)]
pub(crate) struct AggState {
    sum: f64,
    count: u64,
    min: f64,
    max: f64,
}

impl AggState {
    pub(crate) fn new() -> Self {
        AggState { sum: 0.0, count: 0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    pub(crate) fn update(&mut self, v: f64) {
        self.sum += v;
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    fn finish(&self, func: AggFunc) -> f64 {
        match func {
            AggFunc::Sum => self.sum,
            AggFunc::Count => self.count as f64,
            AggFunc::Min => self.min,
            AggFunc::Max => self.max,
            AggFunc::Avg => {
                if self.count == 0 {
                    0.0
                } else {
                    self.sum / self.count as f64
                }
            }
        }
    }
}

/// Group `chunk` by the named columns and compute the aggregates.
///
/// With an empty `group_by`, produces exactly one row (the global
/// aggregate) even for empty input — matching SQL aggregate semantics for
/// `COUNT`, with zero sums.
pub fn aggregate(
    chunk: &Chunk,
    group_by: &[String],
    aggs: &[AggSpec],
) -> Result<Chunk, String> {
    aggregate_sel(chunk, None, group_by, aggs)
}

/// [`aggregate`] over `(chunk, selection vector)`: only positions in `sel`
/// (all rows when `None`) contribute.
///
/// Aggregate input expressions are evaluated at the selected positions
/// only, group keys are read from the base columns at those positions, and
/// group representatives are *global* row indices — so the output is
/// bit-identical to `aggregate(&chunk.gather(sel), …)` (groups appear in
/// first-occurrence order over the selection, accumulation runs in
/// selection order) without ever materializing the filtered chunk.
pub fn aggregate_sel(
    chunk: &Chunk,
    sel: Option<&SelVec>,
    group_by: &[String],
    aggs: &[AggSpec],
) -> Result<Chunk, String> {
    let key_cols: Vec<&ColumnData> = group_by
        .iter()
        .map(|name| chunk.require_column(name))
        .collect::<Result<_, _>>()?;
    let agg_inputs: Vec<Vec<f64>> = match sel {
        None => aggs
            .iter()
            .map(|a| a.input.evaluate_f64(chunk))
            .collect::<Result<_, _>>()?,
        Some(s) => aggs
            .iter()
            .map(|a| a.input.evaluate_f64_at(chunk, s.positions()))
            .collect::<Result<_, _>>()?,
    };

    let mut representative: Vec<u32> = Vec::new();
    let mut states: Vec<Vec<AggState>> = Vec::new();
    match sel {
        None => group_rows(
            &key_cols,
            &agg_inputs,
            aggs.len(),
            (0..chunk.num_rows()).map(|r| r as u32),
            &mut representative,
            &mut states,
        ),
        Some(s) => group_rows(
            &key_cols,
            &agg_inputs,
            aggs.len(),
            s.positions().iter().copied(),
            &mut representative,
            &mut states,
        ),
    }

    // Global aggregate over empty groups: one row of neutral values.
    if group_by.is_empty() && states.is_empty() {
        representative.push(0);
        states.push(vec![AggState::new(); aggs.len()]);
    }

    Ok(finalize(group_by, &key_cols, aggs, &representative, &states))
}

/// Core grouping loop: consume rows (global indices, in accumulation
/// order), assigning dense group ids in first-occurrence order.
///
/// `agg_inputs` are indexed by *dense* position in the iteration (`j`),
/// not by global row — the caller aligned them with the row stream. The
/// common one- and two-key cases avoid the per-row `Vec` allocation of the
/// general composite key.
fn group_rows(
    key_cols: &[&ColumnData],
    agg_inputs: &[Vec<f64>],
    naggs: usize,
    rows: impl Iterator<Item = u32>,
    representative: &mut Vec<u32>,
    states: &mut Vec<Vec<AggState>>,
) {
    let mut new_group = |row: u32, states: &mut Vec<Vec<AggState>>| {
        representative.push(row);
        states.push(vec![AggState::new(); naggs]);
        states.len() - 1
    };
    match key_cols {
        [] => {
            for (j, row) in rows.enumerate() {
                if states.is_empty() {
                    new_group(row, states);
                }
                for (s, input) in states[0].iter_mut().zip(agg_inputs) {
                    s.update(input[j]);
                }
            }
        }
        [k0] => {
            let mut groups: HashMap<u64, usize> = HashMap::new();
            for (j, row) in rows.enumerate() {
                let gid = *groups
                    .entry(k0.key_at(row as usize))
                    .or_insert_with(|| new_group(row, states));
                for (s, input) in states[gid].iter_mut().zip(agg_inputs) {
                    s.update(input[j]);
                }
            }
        }
        [k0, k1] => {
            let mut groups: HashMap<(u64, u64), usize> = HashMap::new();
            for (j, row) in rows.enumerate() {
                let gid = *groups
                    .entry((k0.key_at(row as usize), k1.key_at(row as usize)))
                    .or_insert_with(|| new_group(row, states));
                for (s, input) in states[gid].iter_mut().zip(agg_inputs) {
                    s.update(input[j]);
                }
            }
        }
        _ => {
            let mut groups: HashMap<Vec<u64>, usize> = HashMap::new();
            for (j, row) in rows.enumerate() {
                let key: Vec<u64> =
                    key_cols.iter().map(|c| c.key_at(row as usize)).collect();
                let gid =
                    *groups.entry(key).or_insert_with(|| new_group(row, states));
                for (s, input) in states[gid].iter_mut().zip(agg_inputs) {
                    s.update(input[j]);
                }
            }
        }
    }
}

/// Build the output chunk from finished group states: one row per group,
/// group-key columns (gathered at each group's representative row) followed
/// by one column per aggregate. Shared by the serial and parallel kernels
/// so the materialization is identical by construction.
pub(crate) fn finalize(
    group_by: &[String],
    key_cols: &[&ColumnData],
    aggs: &[AggSpec],
    representative: &[u32],
    states: &[Vec<AggState>],
) -> Chunk {
    let mut fields = Vec::with_capacity(group_by.len() + aggs.len());
    let mut columns = Vec::with_capacity(group_by.len() + aggs.len());
    for (name, col) in group_by.iter().zip(key_cols) {
        fields.push(Field::new(name.clone(), col.data_type()));
        columns.push(col.gather(representative));
    }
    for (i, a) in aggs.iter().enumerate() {
        let vals: Vec<f64> = states.iter().map(|g| g[i].finish(a.func)).collect();
        match a.func {
            AggFunc::Count => {
                fields.push(Field::new(a.output_name.clone(), DataType::Int64));
                columns.push(ColumnData::Int64(vals.into_iter().map(|v| v as i64).collect()));
            }
            _ => {
                fields.push(Field::new(a.output_name.clone(), DataType::Float64));
                columns.push(ColumnData::Float64(vals));
            }
        }
    }
    Chunk::new(fields, columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use robustq_storage::{DictColumn, Value};

    fn chunk() -> Chunk {
        Chunk::new(
            vec![
                Field::new("g", DataType::Str),
                Field::new("v", DataType::Float64),
            ],
            vec![
                ColumnData::Str(DictColumn::from_strings(["x", "y", "x", "x"])),
                ColumnData::Float64(vec![1.0, 2.0, 3.0, 5.0]),
            ],
        )
    }

    #[test]
    fn grouped_sum_count_avg() {
        let out = aggregate(
            &chunk(),
            &["g".into()],
            &[
                AggSpec::sum(Expr::col("v"), "s"),
                AggSpec::count("c"),
                AggSpec::new(AggFunc::Avg, Expr::col("v"), "a"),
            ],
        )
        .unwrap();
        let mut rows = out.sorted_rows();
        rows.sort_by_key(|r| r[0].to_string());
        assert_eq!(
            rows[0],
            vec![Value::from("x"), Value::Float64(9.0), Value::Int64(3), Value::Float64(3.0)]
        );
        assert_eq!(
            rows[1],
            vec![Value::from("y"), Value::Float64(2.0), Value::Int64(1), Value::Float64(2.0)]
        );
    }

    #[test]
    fn min_max() {
        let out = aggregate(
            &chunk(),
            &[],
            &[
                AggSpec::new(AggFunc::Min, Expr::col("v"), "lo"),
                AggSpec::new(AggFunc::Max, Expr::col("v"), "hi"),
            ],
        )
        .unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.row(0), vec![Value::Float64(1.0), Value::Float64(5.0)]);
    }

    #[test]
    fn global_aggregate_over_empty_input() {
        let empty = chunk().gather(&[]);
        let out = aggregate(&empty, &[], &[AggSpec::count("c")]).unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.row(0), vec![Value::Int64(0)]);
    }

    #[test]
    fn grouped_aggregate_over_empty_input_is_empty() {
        let empty = chunk().gather(&[]);
        let out = aggregate(&empty, &["g".into()], &[AggSpec::count("c")]).unwrap();
        assert_eq!(out.num_rows(), 0);
    }

    #[test]
    fn aggregate_of_expression() {
        let out = aggregate(
            &chunk(),
            &[],
            &[AggSpec::sum(Expr::col("v") * Expr::lit(10.0), "s")],
        )
        .unwrap();
        assert_eq!(out.row(0), vec![Value::Float64(110.0)]);
    }

    #[test]
    fn multi_key_grouping() {
        let c = Chunk::new(
            vec![
                Field::new("a", DataType::Int32),
                Field::new("b", DataType::Int32),
                Field::new("v", DataType::Float64),
            ],
            vec![
                ColumnData::Int32(vec![1, 1, 2, 1]),
                ColumnData::Int32(vec![1, 2, 1, 1]),
                ColumnData::Float64(vec![1.0, 1.0, 1.0, 1.0]),
            ],
        );
        let out =
            aggregate(&c, &["a".into(), "b".into()], &[AggSpec::count("c")]).unwrap();
        assert_eq!(out.num_rows(), 3);
    }

    #[test]
    fn missing_group_column_is_error() {
        assert!(aggregate(&chunk(), &["zz".into()], &[AggSpec::count("c")]).is_err());
    }
}
