//! Group-by aggregation kernel.
//!
//! [`aggregate`] consumes a materialized chunk; [`aggregate_sel`] consumes
//! `(chunk, selection vector)` so a filter→aggregate pipeline never
//! materializes the filtered intermediate — aggregate inputs are evaluated
//! at the selected positions only and group keys are read straight from
//! the base columns.

use crate::batch::{Chunk, SelVec};
use crate::expr::Expr;
use crate::ops::hashtbl::FastMap;
use crate::plan::{AggFunc, AggSpec};
use robustq_storage::{ColumnData, DataType, Field};
use std::collections::HashMap;

/// Running state of one aggregate within one group.
///
/// Shared with the parallel kernel (`crate::parallel`), whose phase 2
/// updates states in the exact row order the serial kernel uses.
#[derive(Debug, Clone, Copy)]
pub(crate) struct AggState {
    sum: f64,
    count: u64,
    min: f64,
    max: f64,
}

impl AggState {
    pub(crate) fn new() -> Self {
        AggState { sum: 0.0, count: 0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    pub(crate) fn update(&mut self, v: f64) {
        self.sum += v;
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    fn finish(&self, func: AggFunc) -> f64 {
        match func {
            AggFunc::Sum => self.sum,
            AggFunc::Count => self.count as f64,
            AggFunc::Min => self.min,
            AggFunc::Max => self.max,
            AggFunc::Avg => {
                if self.count == 0 {
                    0.0
                } else {
                    self.sum / self.count as f64
                }
            }
        }
    }
}

/// Group `chunk` by the named columns and compute the aggregates.
///
/// With an empty `group_by`, produces exactly one row (the global
/// aggregate) even for empty input — matching SQL aggregate semantics for
/// `COUNT`, with zero sums.
pub fn aggregate(
    chunk: &Chunk,
    group_by: &[String],
    aggs: &[AggSpec],
) -> Result<Chunk, String> {
    aggregate_sel(chunk, None, group_by, aggs)
}

/// [`aggregate`] over `(chunk, selection vector)`: only positions in `sel`
/// (all rows when `None`) contribute.
///
/// Aggregate input expressions are evaluated at the selected positions
/// only, group keys are read from the base columns at those positions, and
/// group representatives are *global* row indices — so the output is
/// bit-identical to `aggregate(&chunk.gather(sel), …)` (groups appear in
/// first-occurrence order over the selection, accumulation runs in
/// selection order) without ever materializing the filtered chunk.
pub fn aggregate_sel(
    chunk: &Chunk,
    sel: Option<&SelVec>,
    group_by: &[String],
    aggs: &[AggSpec],
) -> Result<Chunk, String> {
    let key_cols: Vec<&ColumnData> = group_by
        .iter()
        .map(|name| chunk.require_column(name))
        .collect::<Result<_, _>>()?;
    let agg_inputs: Vec<Vec<f64>> = match sel {
        None => aggs
            .iter()
            .map(|a| a.input.evaluate_f64(chunk))
            .collect::<Result<_, _>>()?,
        Some(s) => aggs
            .iter()
            .map(|a| a.input.evaluate_f64_at(chunk, s.positions()))
            .collect::<Result<_, _>>()?,
    };

    let mut representative: Vec<u32> = Vec::new();
    let mut states: Vec<Vec<AggState>> = Vec::new();
    match sel {
        None => group_rows(
            &key_cols,
            &agg_inputs,
            aggs.len(),
            (0..chunk.num_rows()).map(|r| r as u32),
            &mut representative,
            &mut states,
        ),
        Some(s) => group_rows(
            &key_cols,
            &agg_inputs,
            aggs.len(),
            s.positions().iter().copied(),
            &mut representative,
            &mut states,
        ),
    }

    // Global aggregate over empty groups: one row of neutral values.
    if group_by.is_empty() && states.is_empty() {
        representative.push(0);
        states.push(vec![AggState::new(); aggs.len()]);
    }

    Ok(finalize(group_by, &key_cols, aggs, &representative, &states))
}

/// Core grouping loop: consume rows (global indices, in accumulation
/// order), assigning dense group ids in first-occurrence order.
///
/// `agg_inputs` are indexed by *dense* position in the iteration (`j`),
/// not by global row — the caller aligned them with the row stream. The
/// common one- and two-key cases avoid the per-row `Vec` allocation of the
/// general composite key.
fn group_rows(
    key_cols: &[&ColumnData],
    agg_inputs: &[Vec<f64>],
    naggs: usize,
    rows: impl Iterator<Item = u32>,
    representative: &mut Vec<u32>,
    states: &mut Vec<Vec<AggState>>,
) {
    let mut new_group = |row: u32, states: &mut Vec<Vec<AggState>>| {
        representative.push(row);
        states.push(vec![AggState::new(); naggs]);
        states.len() - 1
    };
    match key_cols {
        [] => {
            for (j, row) in rows.enumerate() {
                if states.is_empty() {
                    new_group(row, states);
                }
                for (s, input) in states[0].iter_mut().zip(agg_inputs) {
                    s.update(input[j]);
                }
            }
        }
        [k0] => {
            let mut groups: HashMap<u64, usize> = HashMap::new();
            for (j, row) in rows.enumerate() {
                let gid = *groups
                    .entry(k0.key_at(row as usize))
                    .or_insert_with(|| new_group(row, states));
                for (s, input) in states[gid].iter_mut().zip(agg_inputs) {
                    s.update(input[j]);
                }
            }
        }
        [k0, k1] => {
            let mut groups: HashMap<(u64, u64), usize> = HashMap::new();
            for (j, row) in rows.enumerate() {
                let gid = *groups
                    .entry((k0.key_at(row as usize), k1.key_at(row as usize)))
                    .or_insert_with(|| new_group(row, states));
                for (s, input) in states[gid].iter_mut().zip(agg_inputs) {
                    s.update(input[j]);
                }
            }
        }
        _ => {
            let mut groups: HashMap<Vec<u64>, usize> = HashMap::new();
            for (j, row) in rows.enumerate() {
                let key: Vec<u64> =
                    key_cols.iter().map(|c| c.key_at(row as usize)).collect();
                let gid =
                    *groups.entry(key).or_insert_with(|| new_group(row, states));
                for (s, input) in states[gid].iter_mut().zip(agg_inputs) {
                    s.update(input[j]);
                }
            }
        }
    }
}

/// An aggregate input the fast kernel can read per row without
/// materializing a dense `f64` vector first.
///
/// Bare column references — the overwhelmingly common case — borrow the
/// column and convert on the fly with exactly the [`ColumnData::get_f64`]
/// semantics `Expr::evaluate_f64` uses, so a 10M-row `SUM(v)` no longer
/// copies the whole column before accumulating. Compound expressions
/// materialize as before, indexed by dense position.
enum AggSrc<'a> {
    /// Borrowed integer column (compares/accumulates as `v as f64`).
    I32(&'a [i32]),
    /// Borrowed integer column.
    I64(&'a [i64]),
    /// Borrowed float column.
    F64(&'a [f64]),
    /// Literal expression: the same value for every row.
    Const(f64),
    /// Materialized expression results, indexed by dense position `j`.
    Owned(Vec<f64>),
}

/// Resolve one aggregate input, borrowing bare numeric columns. Error
/// messages match `Expr::evaluate_f64` exactly.
fn agg_src<'a>(
    expr: &Expr,
    chunk: &'a Chunk,
    sel: Option<&SelVec>,
) -> Result<AggSrc<'a>, String> {
    if let Expr::Col(name) = expr {
        let col = chunk.require_column(name)?;
        return match col {
            ColumnData::Int32(v) => Ok(AggSrc::I32(v)),
            ColumnData::Int64(v) => Ok(AggSrc::I64(v)),
            ColumnData::Float64(v) => Ok(AggSrc::F64(v)),
            ColumnData::Str(_) => Err(format!("column {name} is not numeric")),
        };
    }
    // A literal (e.g. `COUNT(*)`'s `1.0`) is infallible and constant: no
    // point materializing a row-length vector of copies.
    if let Expr::Lit(v) = expr {
        return Ok(AggSrc::Const(*v));
    }
    Ok(AggSrc::Owned(match sel {
        None => expr.evaluate_f64(chunk)?,
        Some(s) => expr.evaluate_f64_at(chunk, s.positions())?,
    }))
}

/// Column-wise accumulator for one aggregate across all groups.
///
/// The reference kernel keeps a `Vec<AggState>` per group — a heap
/// allocation per group and a four-field update per row regardless of the
/// aggregate function. Storing one contiguous array per aggregate keeps
/// the hot accumulators in cache and updates only the field the function
/// actually reads; [`FastAcc::state`] rebuilds an [`AggState`] per group
/// so [`finalize`] stays shared with the reference path (bit-identical by
/// construction: same accumulation order, same `f64` operations).
enum FastAcc {
    Sum(Vec<f64>),
    Count(Vec<u64>),
    Min(Vec<f64>),
    Max(Vec<f64>),
    Avg { sum: Vec<f64>, count: Vec<u64> },
}

impl FastAcc {
    fn new(func: AggFunc) -> FastAcc {
        match func {
            AggFunc::Sum => FastAcc::Sum(Vec::new()),
            AggFunc::Count => FastAcc::Count(Vec::new()),
            AggFunc::Min => FastAcc::Min(Vec::new()),
            AggFunc::Max => FastAcc::Max(Vec::new()),
            AggFunc::Avg => FastAcc::Avg { sum: Vec::new(), count: Vec::new() },
        }
    }

    /// Size for `ngroups` groups, initialized to the neutral element.
    fn resize(&mut self, ngroups: usize) {
        match self {
            FastAcc::Sum(a) => a.resize(ngroups, 0.0),
            FastAcc::Count(a) => a.resize(ngroups, 0),
            FastAcc::Min(a) => a.resize(ngroups, f64::INFINITY),
            FastAcc::Max(a) => a.resize(ngroups, f64::NEG_INFINITY),
            FastAcc::Avg { sum, count } => {
                sum.resize(ngroups, 0.0);
                count.resize(ngroups, 0);
            }
        }
    }

    /// Accumulate the whole row stream into this aggregate: `gids[j]` is
    /// the group of dense position `j`, `sel` maps `j` to a global row for
    /// borrowed column sources. Per-group accumulation order equals the
    /// reference's row order, so sums are bit-identical.
    fn accumulate(&mut self, src: &AggSrc<'_>, gids: &[u32], sel: Option<&[u32]>) {
        match self {
            FastAcc::Sum(a) => fold_into(a, gids, src, sel, |acc, v| *acc += v),
            FastAcc::Count(a) => {
                for &g in gids {
                    a[g as usize] += 1;
                }
            }
            FastAcc::Min(a) => {
                fold_into(a, gids, src, sel, |acc, v| *acc = acc.min(v))
            }
            FastAcc::Max(a) => {
                fold_into(a, gids, src, sel, |acc, v| *acc = acc.max(v))
            }
            FastAcc::Avg { sum, count } => {
                fold_into(sum, gids, src, sel, |acc, v| *acc += v);
                for &g in gids {
                    count[g as usize] += 1;
                }
            }
        }
    }

    /// The [`AggState`] view of group `gid` (only the fields the
    /// function's `finish` reads are meaningful).
    fn state(&self, gid: usize) -> AggState {
        let mut s = AggState::new();
        match self {
            FastAcc::Sum(a) => s.sum = a[gid],
            FastAcc::Count(a) => s.count = a[gid],
            FastAcc::Min(a) => s.min = a[gid],
            FastAcc::Max(a) => s.max = a[gid],
            FastAcc::Avg { sum, count } => {
                s.sum = sum[gid];
                s.count = count[gid];
            }
        }
        s
    }
}

/// Tight per-source accumulation loop: one monomorphized loop per
/// `(source, selection, fold)` combination, with no per-row dispatch.
#[inline]
fn fold_into(
    a: &mut [f64],
    gids: &[u32],
    src: &AggSrc<'_>,
    sel: Option<&[u32]>,
    f: impl Fn(&mut f64, f64),
) {
    match (src, sel) {
        (AggSrc::I32(v), None) => {
            for (j, &g) in gids.iter().enumerate() {
                f(&mut a[g as usize], v[j] as f64);
            }
        }
        (AggSrc::I32(v), Some(p)) => {
            for (j, &g) in gids.iter().enumerate() {
                f(&mut a[g as usize], v[p[j] as usize] as f64);
            }
        }
        (AggSrc::I64(v), None) => {
            for (j, &g) in gids.iter().enumerate() {
                f(&mut a[g as usize], v[j] as f64);
            }
        }
        (AggSrc::I64(v), Some(p)) => {
            for (j, &g) in gids.iter().enumerate() {
                f(&mut a[g as usize], v[p[j] as usize] as f64);
            }
        }
        (AggSrc::F64(v), None) => {
            for (j, &g) in gids.iter().enumerate() {
                f(&mut a[g as usize], v[j]);
            }
        }
        (AggSrc::F64(v), Some(p)) => {
            for (j, &g) in gids.iter().enumerate() {
                f(&mut a[g as usize], v[p[j] as usize]);
            }
        }
        (AggSrc::Const(c), _) => {
            for &g in gids {
                f(&mut a[g as usize], *c);
            }
        }
        (AggSrc::Owned(v), _) => {
            for (j, &g) in gids.iter().enumerate() {
                f(&mut a[g as usize], v[j]);
            }
        }
    }
}

/// Largest key range the dense single-key grouper will table (8 MB of
/// `u32` group ids). SSB/TPC-H group keys (dates, dictionary codes, small
/// categorical ints) land far below this.
const DENSE_MAX_RANGE: usize = 1 << 21;

/// Direct-index `key -> group id` table for a single small-range integer
/// or dictionary key: no hashing at all.
enum DenseKeys<'a> {
    I32 { vals: &'a [i32], base: i32 },
    I64 { vals: &'a [i64], base: i64 },
    Codes(&'a [u32]),
}

struct DenseGrouper<'a> {
    keys: DenseKeys<'a>,
    /// `table[key - base] = gid`; `u32::MAX` = unseen.
    table: Vec<u32>,
}

impl<'a> DenseGrouper<'a> {
    /// Build for `col` if its value range is small enough to table; the
    /// min/max scan is a cheap vectorizable pass over the column.
    fn try_new(col: &'a ColumnData) -> Option<DenseGrouper<'a>> {
        match col {
            ColumnData::Int32(v) => {
                let (&first, rest) = v.split_first()?;
                let (min, max) = rest.iter().fold((first, first), |(lo, hi), &x| {
                    (lo.min(x), hi.max(x))
                });
                let range = (max as i64 - min as i64) as usize + 1;
                (range <= DENSE_MAX_RANGE).then(|| DenseGrouper {
                    keys: DenseKeys::I32 { vals: v, base: min },
                    table: vec![u32::MAX; range],
                })
            }
            ColumnData::Int64(v) => {
                let (&first, rest) = v.split_first()?;
                let (min, max) = rest.iter().fold((first, first), |(lo, hi), &x| {
                    (lo.min(x), hi.max(x))
                });
                let range = (max as i128 - min as i128) as u128 + 1;
                (range <= DENSE_MAX_RANGE as u128).then(|| DenseGrouper {
                    keys: DenseKeys::I64 { vals: v, base: min },
                    table: vec![u32::MAX; range as usize],
                })
            }
            ColumnData::Float64(_) => None,
            ColumnData::Str(d) => {
                (d.dict().len() <= DENSE_MAX_RANGE).then(|| DenseGrouper {
                    keys: DenseKeys::Codes(d.codes()),
                    table: vec![u32::MAX; d.dict().len()],
                })
            }
        }
    }

    #[inline]
    fn slot(&mut self, row: u32) -> &mut u32 {
        let idx = match &self.keys {
            DenseKeys::I32 { vals, base } => {
                (vals[row as usize] as i64 - *base as i64) as usize
            }
            DenseKeys::I64 { vals, base } => {
                (vals[row as usize] as i128 - *base as i128) as usize
            }
            DenseKeys::Codes(codes) => codes[row as usize] as usize,
        };
        &mut self.table[idx]
    }
}

/// Fast-path [`group_rows`]: identical group numbering, representatives
/// and accumulation order, with the per-row `HashMap`/SipHash cost
/// replaced by a dense table (single small-range key), a multiply-shift
/// open-addressing map (one/two keys), or the reference map (3+ keys).
fn group_rows_fast(
    key_cols: &[&ColumnData],
    rows: impl Iterator<Item = u32>,
    representative: &mut Vec<u32>,
    gids: &mut Vec<u32>,
) {
    let mut new_group = |row: u32| {
        representative.push(row);
        (representative.len() - 1) as u32
    };
    match key_cols {
        [] => {
            let mut seen = false;
            for row in rows {
                if !seen {
                    new_group(row);
                    seen = true;
                }
                gids.push(0);
            }
        }
        [k0] => {
            if let Some(mut dense) = DenseGrouper::try_new(k0) {
                for row in rows {
                    let slot = dense.slot(row);
                    let mut gid = *slot;
                    if gid == u32::MAX {
                        gid = new_group(row);
                        *slot = gid;
                    }
                    gids.push(gid);
                }
            } else {
                let mut map: FastMap<u64> = FastMap::new();
                for row in rows {
                    let gid = map
                        .get_or_insert(k0.key_at(row as usize), || new_group(row));
                    gids.push(gid);
                }
            }
        }
        [k0, k1] => {
            let mut map: FastMap<(u64, u64)> = FastMap::new();
            for row in rows {
                let key = (k0.key_at(row as usize), k1.key_at(row as usize));
                gids.push(map.get_or_insert(key, || new_group(row)));
            }
        }
        _ => {
            let mut map: HashMap<Vec<u64>, u32> = HashMap::new();
            for row in rows {
                let key: Vec<u64> =
                    key_cols.iter().map(|c| c.key_at(row as usize)).collect();
                gids.push(*map.entry(key).or_insert_with(|| new_group(row)));
            }
        }
    }
}

/// Production aggregation: bit-identical to [`aggregate`], with hashing
/// and input materialization costs removed (see [`group_rows_fast`] and
/// [`AggSrc`]).
pub fn aggregate_fast(
    chunk: &Chunk,
    group_by: &[String],
    aggs: &[AggSpec],
) -> Result<Chunk, String> {
    aggregate_sel_fast(chunk, None, group_by, aggs)
}

/// Production selection-vector aggregation: bit-identical to
/// [`aggregate_sel`].
pub fn aggregate_sel_fast(
    chunk: &Chunk,
    sel: Option<&SelVec>,
    group_by: &[String],
    aggs: &[AggSpec],
) -> Result<Chunk, String> {
    let key_cols: Vec<&ColumnData> = group_by
        .iter()
        .map(|name| chunk.require_column(name))
        .collect::<Result<_, _>>()?;
    let srcs: Vec<AggSrc<'_>> = aggs
        .iter()
        .map(|a| agg_src(&a.input, chunk, sel))
        .collect::<Result<_, _>>()?;

    // Phase 1: assign a group id to every (selected) row. Keeping this
    // separate from accumulation lets phase 2 run one tight, dispatch-free
    // loop per aggregate over the dense gid stream.
    let n = sel.map_or(chunk.num_rows(), |s| s.len());
    let mut representative: Vec<u32> = Vec::new();
    let mut gids: Vec<u32> = Vec::with_capacity(n);
    match sel {
        None => group_rows_fast(
            &key_cols,
            (0..chunk.num_rows()).map(|r| r as u32),
            &mut representative,
            &mut gids,
        ),
        Some(s) => group_rows_fast(
            &key_cols,
            s.positions().iter().copied(),
            &mut representative,
            &mut gids,
        ),
    }

    // Phase 2: column-wise accumulation. Per (group, aggregate) the fold
    // order is still row order, so results are bit-identical to the
    // row-at-a-time reference.
    let mut accs: Vec<FastAcc> =
        aggs.iter().map(|a| FastAcc::new(a.func)).collect();
    let sel_rows = sel.map(|s| s.positions());
    for (acc, src) in accs.iter_mut().zip(&srcs) {
        acc.resize(representative.len());
        acc.accumulate(src, &gids, sel_rows);
    }

    let mut states: Vec<Vec<AggState>> = (0..representative.len())
        .map(|g| accs.iter().map(|a| a.state(g)).collect())
        .collect();

    // Global aggregate over empty groups: one row of neutral values.
    if group_by.is_empty() && states.is_empty() {
        representative.push(0);
        states.push(vec![AggState::new(); aggs.len()]);
    }

    Ok(finalize(group_by, &key_cols, aggs, &representative, &states))
}

/// Build the output chunk from finished group states: one row per group,
/// group-key columns (gathered at each group's representative row) followed
/// by one column per aggregate. Shared by the serial and parallel kernels
/// so the materialization is identical by construction.
pub(crate) fn finalize(
    group_by: &[String],
    key_cols: &[&ColumnData],
    aggs: &[AggSpec],
    representative: &[u32],
    states: &[Vec<AggState>],
) -> Chunk {
    let mut fields = Vec::with_capacity(group_by.len() + aggs.len());
    let mut columns = Vec::with_capacity(group_by.len() + aggs.len());
    for (name, col) in group_by.iter().zip(key_cols) {
        fields.push(Field::new(name.clone(), col.data_type()));
        columns.push(col.gather(representative));
    }
    for (i, a) in aggs.iter().enumerate() {
        let vals: Vec<f64> = states.iter().map(|g| g[i].finish(a.func)).collect();
        match a.func {
            AggFunc::Count => {
                fields.push(Field::new(a.output_name.clone(), DataType::Int64));
                columns.push(ColumnData::Int64(vals.into_iter().map(|v| v as i64).collect()));
            }
            _ => {
                fields.push(Field::new(a.output_name.clone(), DataType::Float64));
                columns.push(ColumnData::Float64(vals));
            }
        }
    }
    Chunk::new(fields, columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use robustq_storage::{DictColumn, Value};

    fn chunk() -> Chunk {
        Chunk::new(
            vec![
                Field::new("g", DataType::Str),
                Field::new("v", DataType::Float64),
            ],
            vec![
                ColumnData::Str(DictColumn::from_strings(["x", "y", "x", "x"])),
                ColumnData::Float64(vec![1.0, 2.0, 3.0, 5.0]),
            ],
        )
    }

    #[test]
    fn grouped_sum_count_avg() {
        let out = aggregate(
            &chunk(),
            &["g".into()],
            &[
                AggSpec::sum(Expr::col("v"), "s"),
                AggSpec::count("c"),
                AggSpec::new(AggFunc::Avg, Expr::col("v"), "a"),
            ],
        )
        .unwrap();
        let mut rows = out.sorted_rows();
        rows.sort_by_key(|r| r[0].to_string());
        assert_eq!(
            rows[0],
            vec![Value::from("x"), Value::Float64(9.0), Value::Int64(3), Value::Float64(3.0)]
        );
        assert_eq!(
            rows[1],
            vec![Value::from("y"), Value::Float64(2.0), Value::Int64(1), Value::Float64(2.0)]
        );
    }

    #[test]
    fn min_max() {
        let out = aggregate(
            &chunk(),
            &[],
            &[
                AggSpec::new(AggFunc::Min, Expr::col("v"), "lo"),
                AggSpec::new(AggFunc::Max, Expr::col("v"), "hi"),
            ],
        )
        .unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.row(0), vec![Value::Float64(1.0), Value::Float64(5.0)]);
    }

    #[test]
    fn global_aggregate_over_empty_input() {
        let empty = chunk().gather(&[]);
        let out = aggregate(&empty, &[], &[AggSpec::count("c")]).unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.row(0), vec![Value::Int64(0)]);
    }

    #[test]
    fn grouped_aggregate_over_empty_input_is_empty() {
        let empty = chunk().gather(&[]);
        let out = aggregate(&empty, &["g".into()], &[AggSpec::count("c")]).unwrap();
        assert_eq!(out.num_rows(), 0);
    }

    #[test]
    fn aggregate_of_expression() {
        let out = aggregate(
            &chunk(),
            &[],
            &[AggSpec::sum(Expr::col("v") * Expr::lit(10.0), "s")],
        )
        .unwrap();
        assert_eq!(out.row(0), vec![Value::Float64(110.0)]);
    }

    #[test]
    fn multi_key_grouping() {
        let c = Chunk::new(
            vec![
                Field::new("a", DataType::Int32),
                Field::new("b", DataType::Int32),
                Field::new("v", DataType::Float64),
            ],
            vec![
                ColumnData::Int32(vec![1, 1, 2, 1]),
                ColumnData::Int32(vec![1, 2, 1, 1]),
                ColumnData::Float64(vec![1.0, 1.0, 1.0, 1.0]),
            ],
        );
        let out =
            aggregate(&c, &["a".into(), "b".into()], &[AggSpec::count("c")]).unwrap();
        assert_eq!(out.num_rows(), 3);
    }

    #[test]
    fn missing_group_column_is_error() {
        assert!(aggregate(&chunk(), &["zz".into()], &[AggSpec::count("c")]).is_err());
    }

    fn wide_chunk() -> Chunk {
        // One dense-range key, one wide-range key (forces the hash path),
        // one dict key, and two value columns covering borrowed + computed
        // aggregate sources.
        let n = 401usize;
        Chunk::new(
            vec![
                Field::new("g", DataType::Int32),
                Field::new("w", DataType::Int64),
                Field::new("s", DataType::Str),
                Field::new("v", DataType::Float64),
                Field::new("i", DataType::Int32),
            ],
            vec![
                ColumnData::Int32((0..n).map(|i| (i as i32 * 7) % 13).collect()),
                ColumnData::Int64(
                    (0..n).map(|i| (i as i64 % 5) * 1_000_000_007).collect(),
                ),
                ColumnData::Str(DictColumn::from_strings(
                    (0..n).map(|i| format!("s{}", i % 9)),
                )),
                ColumnData::Float64((0..n).map(|i| i as f64 * 0.25 - 30.0).collect()),
                ColumnData::Int32((0..n).map(|i| i as i32 - 200).collect()),
            ],
        )
    }

    #[test]
    fn fast_aggregate_matches_reference_across_key_shapes() {
        let c = wide_chunk();
        let aggs = [
            AggSpec::sum(Expr::col("v"), "sv"),
            AggSpec::count("c"),
            AggSpec::new(AggFunc::Min, Expr::col("i"), "mi"),
            AggSpec::new(AggFunc::Avg, Expr::col("v") * Expr::lit(2.0), "av"),
        ];
        let shapes: [&[&str]; 6] = [
            &[],
            &["g"],
            &["w"],
            &["s"],
            &["g", "w"],
            &["g", "w", "s"],
        ];
        for keys in shapes {
            let keys: Vec<String> = keys.iter().map(|k| k.to_string()).collect();
            let want = aggregate(&c, &keys, &aggs).unwrap();
            let got = aggregate_fast(&c, &keys, &aggs).unwrap();
            assert_eq!(got.num_rows(), want.num_rows(), "keys {keys:?}");
            for i in 0..want.num_rows() {
                assert_eq!(got.row(i), want.row(i), "keys {keys:?} row {i}");
            }
        }
    }

    #[test]
    fn fast_aggregate_sel_matches_reference() {
        let c = wide_chunk();
        let sel = crate::batch::SelVec::new(
            (0..c.num_rows() as u32).filter(|i| i % 3 == 1).collect(),
        );
        let aggs = [AggSpec::sum(Expr::col("v"), "sv"), AggSpec::count("c")];
        for keys in [vec![], vec!["g".to_string()], vec!["s".to_string()]] {
            let want = aggregate_sel(&c, Some(&sel), &keys, &aggs).unwrap();
            let got = aggregate_sel_fast(&c, Some(&sel), &keys, &aggs).unwrap();
            assert_eq!(got.num_rows(), want.num_rows(), "keys {keys:?}");
            for i in 0..want.num_rows() {
                assert_eq!(got.row(i), want.row(i), "keys {keys:?} row {i}");
            }
        }
        // Empty selection still yields the neutral global row / zero groups.
        let empty = crate::batch::SelVec::new(vec![]);
        for keys in [vec![], vec!["g".to_string()]] {
            let want = aggregate_sel(&c, Some(&empty), &keys, &aggs).unwrap();
            let got = aggregate_sel_fast(&c, Some(&empty), &keys, &aggs).unwrap();
            assert_eq!(got.num_rows(), want.num_rows());
            for i in 0..want.num_rows() {
                assert_eq!(got.row(i), want.row(i));
            }
        }
    }

    #[test]
    fn fast_aggregate_error_messages_match_reference() {
        let c = wide_chunk();
        let aggs = [AggSpec::sum(Expr::col("s"), "x")];
        let want = aggregate(&c, &[], &aggs).unwrap_err();
        let got = aggregate_fast(&c, &[], &aggs).unwrap_err();
        assert_eq!(format!("{got}"), format!("{want}"));
        let aggs = [AggSpec::count("c")];
        let want = aggregate(&c, &["zz".into()], &aggs).unwrap_err();
        let got = aggregate_fast(&c, &["zz".into()], &aggs).unwrap_err();
        assert_eq!(format!("{got}"), format!("{want}"));
    }
}
