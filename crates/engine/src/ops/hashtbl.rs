//! Specialized hash containers for the hot join/aggregation paths.
//!
//! The reference kernels use `std::collections::HashMap`, which is exactly
//! right for a readable baseline but pays SipHash per lookup and (for the
//! join build) one heap-allocated `Vec<u32>` per distinct key. The
//! production kernels use these containers instead:
//!
//! * [`JoinTable`] — a chained hash table over canonical 64-bit join keys
//!   with all entries in three flat arrays (multiply-shift hash, one
//!   allocation per column, no per-key `Vec`s). Matches stream out in
//!   build-row order, exactly the order `HashMap<u64, Vec<u32>>` produces,
//!   so probes are bit-identical to the reference.
//! * [`FastMap`] — an open-addressing `key -> group id` map (linear
//!   probing, power-of-two capacity) for grouping; full keys are stored
//!   and compared, so hash mixing affects speed only, never results.
//!
//! Both hash with Fibonacci multiply-shift (`key * 2^64/φ`, top bits):
//! one multiply per lookup, and the golden-ratio constant scatters the
//! dense/low-entropy keys (dictionary codes, small integers, sequential
//! primary keys) these tables actually see.

/// Fibonacci hashing constant: `floor(2^64 / φ)`, odd.
const PHI: u64 = 0x9E37_79B9_7F4A_7C15;

#[inline]
fn mix(k: u64) -> u64 {
    k.wrapping_mul(PHI)
}

/// A chained hash table mapping canonical join keys to build-row
/// positions, laid out as flat arrays.
///
/// Equal-key matches come out in **increasing build-row order** — the
/// contract the join kernels rely on for bit-identity with the
/// `HashMap<u64, Vec<u32>>` reference (which pushes rows in scan order).
/// Chains are built by prepending while scanning the build side in
/// *reverse*, so each bucket's list ends up in increasing entry order.
pub(crate) struct JoinTable {
    /// `64 - log2(buckets.len())`: top-bits bucket index.
    shift: u32,
    /// Head entry index + 1 per bucket; 0 = empty.
    buckets: Vec<u32>,
    /// Entry key.
    keys: Vec<u64>,
    /// Entry build row.
    rows: Vec<u32>,
    /// Next entry index + 1 in the same bucket; 0 = chain end.
    next: Vec<u32>,
}

impl JoinTable {
    /// Hash every build key. Capacity is the next power of two above
    /// `2 × keys` (load factor ≤ 0.5).
    pub(crate) fn build(bkeys: &[u64]) -> JoinTable {
        let cap = (bkeys.len() * 2).next_power_of_two().max(16);
        let mut t = JoinTable {
            shift: 64 - cap.trailing_zeros(),
            buckets: vec![0; cap],
            keys: Vec::with_capacity(bkeys.len()),
            rows: Vec::with_capacity(bkeys.len()),
            next: Vec::with_capacity(bkeys.len()),
        };
        for (i, &k) in bkeys.iter().enumerate().rev() {
            let b = (mix(k) >> t.shift) as usize;
            t.keys.push(k);
            t.rows.push(i as u32);
            t.next.push(t.buckets[b]);
            t.buckets[b] = t.keys.len() as u32;
        }
        t
    }

    /// Visit the build rows matching `k`, in increasing build-row order.
    #[inline]
    pub(crate) fn for_each_match(&self, k: u64, mut f: impl FnMut(u32)) {
        let mut e = self.buckets[(mix(k) >> self.shift) as usize];
        while e != 0 {
            let i = (e - 1) as usize;
            if self.keys[i] == k {
                f(self.rows[i]);
            }
            e = self.next[i];
        }
    }

    /// True if any build row has key `k`.
    #[inline]
    pub(crate) fn contains(&self, k: u64) -> bool {
        let mut e = self.buckets[(mix(k) >> self.shift) as usize];
        while e != 0 {
            let i = (e - 1) as usize;
            if self.keys[i] == k {
                return true;
            }
            e = self.next[i];
        }
        false
    }
}

/// A grouping key the open-addressing map can hash and compare.
pub(crate) trait FastKey: Copy + PartialEq {
    /// Mix into a 64-bit hash; the map takes top bits for the slot.
    fn mixed(self) -> u64;
}

impl FastKey for u64 {
    #[inline]
    fn mixed(self) -> u64 {
        mix(self)
    }
}

impl FastKey for (u64, u64) {
    #[inline]
    fn mixed(self) -> u64 {
        // Mix the halves with distinct odd constants before combining so
        // (a, b) and (b, a) land apart.
        mix(self.0.wrapping_mul(PHI) ^ self.1.wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
    }
}

/// Open-addressing `key -> u32` map with linear probing.
///
/// Slots hold entry indices (+1; 0 = empty) into flat `keys`/`vals`
/// arrays, so rehashing on growth moves only the `u32` slots — values and
/// their insertion order never move, which is what keeps first-occurrence
/// group numbering stable across growth.
pub(crate) struct FastMap<K: FastKey> {
    shift: u32,
    /// Entry index + 1 per slot; 0 = empty.
    slots: Vec<u32>,
    keys: Vec<K>,
    vals: Vec<u32>,
}

impl<K: FastKey> FastMap<K> {
    pub(crate) fn new() -> FastMap<K> {
        let cap = 1024usize;
        FastMap {
            shift: 64 - cap.trailing_zeros(),
            slots: vec![0; cap],
            keys: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Value for `key`, inserting `make()` on first sight.
    #[inline]
    pub(crate) fn get_or_insert(
        &mut self,
        key: K,
        make: impl FnOnce() -> u32,
    ) -> u32 {
        let mask = self.slots.len() - 1;
        let mut i = (key.mixed() >> self.shift) as usize;
        loop {
            let e = self.slots[i];
            if e == 0 {
                let v = make();
                self.keys.push(key);
                self.vals.push(v);
                self.slots[i] = self.keys.len() as u32;
                if self.keys.len() * 2 >= self.slots.len() {
                    self.grow();
                }
                return v;
            }
            let idx = (e - 1) as usize;
            if self.keys[idx] == key {
                return self.vals[idx];
            }
            i = (i + 1) & mask;
        }
    }

    /// Double the slot array and rehash entry indices (entries stay put).
    fn grow(&mut self) {
        let cap = self.slots.len() * 2;
        self.shift = 64 - cap.trailing_zeros();
        let mut slots = vec![0u32; cap];
        let mask = cap - 1;
        for (idx, key) in self.keys.iter().enumerate() {
            let mut i = (key.mixed() >> self.shift) as usize;
            while slots[i] != 0 {
                i = (i + 1) & mask;
            }
            slots[i] = idx as u32 + 1;
        }
        self.slots = slots;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn join_table_matches_reference_order() {
        // Keys with duplicates, a never-matching sentinel neighborhood,
        // and values that collide in low bits.
        let bkeys: Vec<u64> =
            (0..1000).map(|i| (i % 37) * 1024).chain([u64::MAX - 1]).collect();
        let mut reference: HashMap<u64, Vec<u32>> = HashMap::new();
        for (i, &k) in bkeys.iter().enumerate() {
            reference.entry(k).or_default().push(i as u32);
        }
        let table = JoinTable::build(&bkeys);
        for probe in (0..40).map(|i| i * 1024).chain([u64::MAX - 1, u64::MAX]) {
            let mut got = Vec::new();
            table.for_each_match(probe, |r| got.push(r));
            let want = reference.get(&probe).cloned().unwrap_or_default();
            assert_eq!(got, want, "key {probe}");
            assert_eq!(table.contains(probe), !want.is_empty());
        }
    }

    #[test]
    fn join_table_empty() {
        let table = JoinTable::build(&[]);
        assert!(!table.contains(0));
        table.for_each_match(0, |_| panic!("no matches in an empty table"));
    }

    #[test]
    fn fast_map_assigns_first_occurrence_ids_across_growth() {
        let mut map: FastMap<u64> = FastMap::new();
        let mut reference: HashMap<u64, u32> = HashMap::new();
        let mut next = 0u32;
        // Enough distinct keys to force several growths.
        for i in 0..50_000u64 {
            let key = (i * i) % 9973;
            let want = *reference.entry(key).or_insert_with(|| {
                let v = next;
                next += 1;
                v
            });
            let got = map.get_or_insert(key, || want);
            assert_eq!(got, want, "key {key}");
        }
    }

    #[test]
    fn fast_map_pair_keys_do_not_conflate() {
        let mut map: FastMap<(u64, u64)> = FastMap::new();
        assert_eq!(map.get_or_insert((1, 2), || 0), 0);
        assert_eq!(map.get_or_insert((2, 1), || 1), 1);
        assert_eq!(map.get_or_insert((1, 2), || 99), 0);
    }
}
