//! Compressed-domain selection: evaluate predicates directly on a
//! [`CompressedColumn`] without materializing the decompressed column.
//!
//! The decompress-then-select pipeline pays a full column materialization
//! before the first predicate lane runs. This module keeps the data in its
//! encoded form through the selection kernel:
//!
//! * **RLE runs** — the predicate is evaluated once per *run* (not per
//!   row) on a tiny chunk of run representatives; matching runs are
//!   emitted as `(start, len)` selection-vector spans. Any predicate the
//!   engine supports works here, because per-run evaluation reuses the
//!   regular compiled-predicate machinery.
//! * **Dictionary codes** — the predicate is translated once into code
//!   space: a truth table over the dictionary, again via the reference
//!   compiler, then applied as a table lookup per packed code.
//! * **FOR + bit-packed integers** — comparison and range predicates are
//!   translated into the zig-zag payload space (an even ray for the
//!   non-negative half-axis and an odd ray for the negative one) and
//!   compared against the adjusted literal without decoding; predicates
//!   outside that shape stream-decode each payload (two ALU ops) into a
//!   compiled value test, still without materializing the column.
//! * everything else **falls back to decompress** + the reference
//!   selection path, so unsupported `(kernel, encoding)` pairs are never
//!   wrong, just slower.
//!
//! Every path is observationally identical to decompress-then-select:
//! same positions, same error strings, same error/no-error outcome
//! (`tests/compressed_properties.rs` checks this exhaustively).

use crate::batch::Chunk;
use crate::predicate::{CmpOp, Predicate};
use crate::simd::ProdPred;
use robustq_storage::compress::{unzigzag, zigzag};
use robustq_storage::{
    ColumnData, CompressedColumn, DataType, DictColumn, Field, Value, ValueKind,
};
use std::sync::Arc;

/// Which execution strategy a `(selection, encoding)` pair resolves to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecPath {
    /// One predicate evaluation per RLE run, emitted as spans.
    RleRuns,
    /// Truth table over the dictionary, applied per packed code.
    DictTable,
    /// Packed-space compare against the zig-zag-adjusted literal.
    PackedLiteral,
    /// Streaming payload decode into a compiled value test (no
    /// materialized column).
    PackedStream,
    /// Unsupported pair: decompress, then the reference selection.
    Decompress,
}

/// Result of a compressed-domain selection.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedSel {
    /// Qualifying row positions in ascending order.
    pub positions: Vec<u32>,
    /// Run-aligned `(start, len)` spans when the RLE path ran.
    pub spans: Option<Vec<(u32, u32)>>,
    /// The strategy that produced the result.
    pub path: ExecPath,
}

/// The strategy [`select_compressed`] will use for `col` under `pred`
/// when the predicate references column `name` (the fallback matrix of
/// DESIGN.md §14).
pub fn exec_path(col: &CompressedColumn, name: &str, pred: &Predicate) -> ExecPath {
    match col {
        CompressedColumn::Raw(_) => ExecPath::Decompress,
        CompressedColumn::Rle { .. } => ExecPath::RleRuns,
        CompressedColumn::BitPacked { kind: ValueKind::DictCode, .. } => {
            ExecPath::DictTable
        }
        CompressedColumn::BitPacked { kind, min, bits, .. } => {
            if packed_test(pred, name, *kind, *min, *bits).is_some() {
                ExecPath::PackedLiteral
            } else if VTest::try_compile(pred, name).is_some() {
                ExecPath::PackedStream
            } else {
                ExecPath::Decompress
            }
        }
    }
}

/// Evaluate `pred` over the compressed column `col` (named `name`) and
/// return the qualifying positions, bit-identical to decompressing the
/// column into a one-column chunk and running the reference selection.
pub fn select_compressed(
    col: &CompressedColumn,
    name: &str,
    pred: &Predicate,
) -> Result<CompressedSel, String> {
    match col {
        CompressedColumn::Raw(c) => {
            let positions = decompressed_select(c.clone(), name, pred)?;
            Ok(CompressedSel { positions, spans: None, path: ExecPath::Decompress })
        }
        CompressedColumn::Rle { kind, runs, dict } => {
            let (positions, spans) = select_rle(*kind, runs, dict, name, pred)?;
            Ok(CompressedSel {
                positions,
                spans: Some(spans),
                path: ExecPath::RleRuns,
            })
        }
        CompressedColumn::BitPacked {
            kind: ValueKind::DictCode,
            min,
            bits,
            rows,
            words,
            dict,
        } => {
            let dict = dict.as_ref().expect("dict columns carry a dictionary");
            let table = dict_table(dict, name, pred)?;
            let mut positions = Vec::new();
            for_each_payload(words, *rows, *min, *bits, |i, p| {
                if table[p as usize] {
                    positions.push(i);
                }
            });
            Ok(CompressedSel { positions, spans: None, path: ExecPath::DictTable })
        }
        CompressedColumn::BitPacked { kind, min, bits, rows, words, dict: _ } => {
            if let Some(t) = packed_test(pred, name, *kind, *min, *bits) {
                let mut positions = Vec::new();
                for_each_payload(words, *rows, *min, *bits, |i, p| {
                    if t.matches(p) {
                        positions.push(i);
                    }
                });
                return Ok(CompressedSel {
                    positions,
                    spans: None,
                    path: ExecPath::PackedLiteral,
                });
            }
            if let Some(t) = VTest::try_compile(pred, name) {
                let mut positions = Vec::new();
                let mut err = None;
                for_each_payload(words, *rows, *min, *bits, |i, p| {
                    if err.is_some() {
                        return;
                    }
                    let v = decode_numeric(*kind, p);
                    match t.test(v) {
                        Ok(true) => positions.push(i),
                        Ok(false) => {}
                        Err(e) => err = Some(e),
                    }
                });
                if let Some(e) = err {
                    return Err(e);
                }
                return Ok(CompressedSel {
                    positions,
                    spans: None,
                    path: ExecPath::PackedStream,
                });
            }
            let positions = decompressed_select(col.decompress(), name, pred)?;
            Ok(CompressedSel { positions, spans: None, path: ExecPath::Decompress })
        }
    }
}

/// Decompress fallback: reference behaviour (results *and* errors).
fn decompressed_select(
    col: ColumnData,
    name: &str,
    pred: &Predicate,
) -> Result<Vec<u32>, String> {
    let dtype = match &col {
        ColumnData::Int32(_) => DataType::Int32,
        ColumnData::Int64(_) => DataType::Int64,
        ColumnData::Float64(_) => DataType::Float64,
        ColumnData::Str(_) => DataType::Str,
    };
    let rows = col.len();
    let chunk = Chunk::new(vec![Field::new(name, dtype)], vec![col]);
    let mut out = Vec::new();
    ProdPred::compile(pred, &chunk)?.append_range(0..rows, &mut out)?;
    Ok(out)
}

/// Decode one numeric payload into the f64 domain the scalar predicate
/// compares in (`ColumnData::get_f64` semantics).
fn decode_numeric(kind: ValueKind, p: u64) -> f64 {
    match kind {
        ValueKind::Int32 | ValueKind::Int64 => unzigzag(p) as f64,
        ValueKind::Float64 => f64::from_bits(p),
        ValueKind::DictCode => unreachable!("dict codes use the truth-table path"),
    }
}

/// Visit `(row, payload)` for every packed value.
fn for_each_payload(
    words: &[u64],
    rows: usize,
    min: u64,
    bits: u8,
    mut f: impl FnMut(u32, u64),
) {
    let mask = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
    for i in 0..rows {
        let bit_pos = i * bits as usize;
        let word = bit_pos / 64;
        let offset = bit_pos % 64;
        let mut v = words[word] >> offset;
        if offset + bits as usize > 64 {
            v |= words[word + 1] << (64 - offset);
        }
        f(i as u32, (v & mask).wrapping_add(min));
    }
}

/// Rebuild a column holding one decoded value per payload (used for the
/// run-representative chunk).
fn payload_column(
    kind: ValueKind,
    payloads: impl Iterator<Item = u64>,
    dict: &Option<Arc<Vec<String>>>,
) -> (DataType, ColumnData) {
    match kind {
        ValueKind::Int32 => (
            DataType::Int32,
            ColumnData::Int32(payloads.map(|p| unzigzag(p) as i32).collect()),
        ),
        ValueKind::Int64 => (
            DataType::Int64,
            ColumnData::Int64(payloads.map(unzigzag).collect()),
        ),
        ValueKind::Float64 => (
            DataType::Float64,
            ColumnData::Float64(payloads.map(f64::from_bits).collect()),
        ),
        ValueKind::DictCode => {
            let dict = dict.as_ref().expect("dict columns carry a dictionary");
            (
                DataType::Str,
                ColumnData::Str(DictColumn::from_parts(
                    Arc::clone(dict),
                    payloads.map(|p| p as u32).collect(),
                )),
            )
        }
    }
}

/// Qualifying row positions plus the run-aligned `(start, len)` spans
/// they came from.
type SpannedSel = (Vec<u32>, Vec<(u32, u32)>);

/// RLE: evaluate once per run over the run-representative chunk, then
/// expand matching runs into spans and positions.
fn select_rle(
    kind: ValueKind,
    runs: &[(u64, u32)],
    dict: &Option<Arc<Vec<String>>>,
    name: &str,
    pred: &Predicate,
) -> Result<SpannedSel, String> {
    let (dtype, col) = payload_column(kind, runs.iter().map(|&(v, _)| v), dict);
    let chunk = Chunk::new(vec![Field::new(name, dtype)], vec![col]);
    let mut matched = Vec::new();
    ProdPred::compile(pred, &chunk)?.append_range(0..runs.len(), &mut matched)?;

    let mut starts = Vec::with_capacity(runs.len());
    let mut acc = 0u32;
    for &(_, len) in runs {
        starts.push(acc);
        acc += len;
    }
    let mut spans = Vec::with_capacity(matched.len());
    let mut positions = Vec::new();
    for &r in &matched {
        let (start, len) = (starts[r as usize], runs[r as usize].1);
        // Coalesce runs that are adjacent in row space.
        match spans.last_mut() {
            Some((s, l)) if *s + *l == start => *l += len,
            _ => spans.push((start, len)),
        }
        positions.extend(start..start + len);
    }
    Ok((positions, spans))
}

/// Translate the predicate once into code space: a truth table over the
/// dictionary, built by the reference compiler so string semantics (and
/// error strings) match exactly.
fn dict_table(
    dict: &Arc<Vec<String>>,
    name: &str,
    pred: &Predicate,
) -> Result<Vec<bool>, String> {
    let codes: Vec<u32> = (0..dict.len() as u32).collect();
    let chunk = Chunk::new(
        vec![Field::new(name, DataType::Str)],
        vec![ColumnData::Str(DictColumn::from_parts(Arc::clone(dict), codes))],
    );
    let mut matched = Vec::new();
    ProdPred::compile(pred, &chunk)?.append_range(0..dict.len(), &mut matched)?;
    let mut table = vec![false; dict.len()];
    for m in matched {
        table[m as usize] = true;
    }
    Ok(table)
}

// ---------------------------------------------------------------------
// Packed-space literal translation (FOR + bit-packed integers)
// ---------------------------------------------------------------------

/// A zig-zag payload interval: the even ray covers the non-negative
/// half-axis, the odd ray the negative one. Empty rays are encoded as
/// `(1, 0)`.
#[derive(Debug, Clone, Copy)]
struct ZigTest {
    e_lo: u64,
    e_hi: u64,
    o_lo: u64,
    o_hi: u64,
    invert: bool,
}

impl ZigTest {
    fn matches(&self, p: u64) -> bool {
        let hit = if p & 1 == 0 {
            p >= self.e_lo && p <= self.e_hi
        } else {
            p >= self.o_lo && p <= self.o_hi
        };
        hit != self.invert
    }

    /// Payload interval for integer values in `[lo, hi]`.
    fn from_interval(lo: i64, hi: i64, invert: bool) -> ZigTest {
        let (mut e_lo, mut e_hi) = (1u64, 0u64);
        let (mut o_lo, mut o_hi) = (1u64, 0u64);
        if hi >= 0 && hi >= lo {
            // zigzag is increasing on the non-negative axis.
            e_lo = zigzag(lo.max(0));
            e_hi = zigzag(hi);
        }
        if lo < 0 && hi >= lo {
            // ...and decreasing on the negative axis.
            o_lo = zigzag(hi.min(-1));
            o_hi = zigzag(lo);
        }
        ZigTest { e_lo, e_hi, o_lo, o_hi, invert }
    }

    fn never(invert: bool) -> ZigTest {
        ZigTest { e_lo: 1, e_hi: 0, o_lo: 1, o_hi: 0, invert }
    }
}

/// Largest payload for which every decoded integer is exactly
/// representable as `f64`, so integer-interval translation of the f64
/// comparison semantics is lossless.
const EXACT_PAYLOAD_LIMIT: u64 = 1 << 53;

/// Try to translate a single-leaf comparison/range predicate on an
/// integer-kind bit-packed column into a packed-space interval test.
fn packed_test(
    pred: &Predicate,
    name: &str,
    kind: ValueKind,
    min: u64,
    bits: u8,
) -> Option<ZigTest> {
    if !matches!(kind, ValueKind::Int32 | ValueKind::Int64) {
        return None;
    }
    let mask = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
    if min.saturating_add(mask) >= EXACT_PAYLOAD_LIMIT {
        return None;
    }
    let finite = |v: &Value| v.as_f64().filter(|f| f.is_finite());
    match pred {
        Predicate::Cmp { column, op, value } if column == name => {
            let rhs = finite(value)?;
            Some(match op {
                CmpOp::Eq | CmpOp::Ne => {
                    let invert = *op == CmpOp::Ne;
                    if rhs.fract() == 0.0
                        && rhs >= i64::MIN as f64
                        && rhs <= i64::MAX as f64
                    {
                        let r = rhs as i64;
                        ZigTest::from_interval(r, r, invert)
                    } else {
                        ZigTest::never(invert)
                    }
                }
                CmpOp::Lt => ZigTest::from_interval(i64::MIN, upper_open(rhs), false),
                CmpOp::Le => ZigTest::from_interval(i64::MIN, rhs.floor() as i64, false),
                CmpOp::Gt => ZigTest::from_interval(lower_open(rhs), i64::MAX, false),
                CmpOp::Ge => ZigTest::from_interval(rhs.ceil() as i64, i64::MAX, false),
            })
        }
        Predicate::Between { column, lo, hi } if column == name => {
            let lo = finite(lo)?;
            let hi = finite(hi)?;
            Some(ZigTest::from_interval(lo.ceil() as i64, hi.floor() as i64, false))
        }
        _ => None,
    }
}

/// Largest integer strictly below `rhs` (`v < rhs` over integers).
fn upper_open(rhs: f64) -> i64 {
    if rhs.fract() == 0.0 && rhs >= (i64::MIN as f64) && rhs <= (i64::MAX as f64) {
        (rhs as i64).saturating_sub(1)
    } else {
        rhs.floor() as i64
    }
}

/// Smallest integer strictly above `rhs` (`v > rhs` over integers).
fn lower_open(rhs: f64) -> i64 {
    if rhs.fract() == 0.0 && rhs >= (i64::MIN as f64) && rhs <= (i64::MAX as f64) {
        (rhs as i64).saturating_add(1)
    } else {
        rhs.ceil() as i64
    }
}

// ---------------------------------------------------------------------
// Streaming value test (mirror of the scalar compiled predicate for one
// numeric column)
// ---------------------------------------------------------------------

/// Value-domain predicate over a single numeric column, mirroring
/// `CompiledPred::test` exactly (same comparison order, same NaN error).
enum VTest {
    Always(bool),
    Cmp { op: CmpOp, rhs: f64 },
    Range { lo: f64, hi: f64 },
    In(Vec<f64>),
    All(Vec<VTest>),
    AnyOf(Vec<VTest>),
    Neg(Box<VTest>),
}

impl VTest {
    /// Compile when every leaf is a numeric predicate on `name`; `None`
    /// sends the caller to a path that reproduces reference behaviour.
    fn try_compile(pred: &Predicate, name: &str) -> Option<VTest> {
        match pred {
            Predicate::True => Some(VTest::Always(true)),
            Predicate::Cmp { column, op, value } if column == name => {
                Some(VTest::Cmp { op: *op, rhs: value.as_f64()? })
            }
            Predicate::Between { column, lo, hi } if column == name => {
                Some(VTest::Range { lo: lo.as_f64()?, hi: hi.as_f64()? })
            }
            Predicate::InList { column, values } if column == name => Some(VTest::In(
                values.iter().map(Value::as_f64).collect::<Option<Vec<f64>>>()?,
            )),
            Predicate::And(ps) => Some(VTest::All(
                ps.iter().map(|p| VTest::try_compile(p, name)).collect::<Option<_>>()?,
            )),
            Predicate::Or(ps) => Some(VTest::AnyOf(
                ps.iter().map(|p| VTest::try_compile(p, name)).collect::<Option<_>>()?,
            )),
            Predicate::Not(p) => {
                Some(VTest::Neg(Box::new(VTest::try_compile(p, name)?)))
            }
            _ => None,
        }
    }

    fn test(&self, v: f64) -> Result<bool, String> {
        use std::cmp::Ordering;
        let nan_err = || "NaN in comparison".to_string();
        match self {
            VTest::Always(b) => Ok(*b),
            VTest::Cmp { op, rhs } => {
                let ord = v.partial_cmp(rhs).ok_or_else(nan_err)?;
                Ok(op.matches(ord))
            }
            VTest::Range { lo, hi } => {
                let ge = v.partial_cmp(lo).ok_or_else(nan_err)? != Ordering::Less;
                let le = v.partial_cmp(hi).ok_or_else(nan_err)? != Ordering::Greater;
                Ok(ge && le)
            }
            VTest::In(values) => {
                let mut found = false;
                for rhs in values {
                    match v.partial_cmp(rhs) {
                        Some(ord) => found |= ord == Ordering::Equal,
                        None => return Err(nan_err()),
                    }
                }
                Ok(found)
            }
            VTest::All(ps) => {
                for p in ps {
                    if !p.test(v)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            VTest::AnyOf(ps) => {
                for p in ps {
                    if p.test(v)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            VTest::Neg(p) => Ok(!p.test(v)?),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::select::select;

    fn reference(col: &CompressedColumn, name: &str, pred: &Predicate) -> Vec<u32> {
        let decompressed = col.decompress();
        let dtype = match &decompressed {
            ColumnData::Int32(_) => DataType::Int32,
            ColumnData::Int64(_) => DataType::Int64,
            ColumnData::Float64(_) => DataType::Float64,
            ColumnData::Str(_) => DataType::Str,
        };
        let chunk = Chunk::new(vec![Field::new(name, dtype)], vec![decompressed]);
        let out = select(&chunk, pred).unwrap();
        // Recover positions by matching against the filtered chunk size:
        // easier to just re-evaluate the reference selvec.
        let sel = pred.evaluate_selvec(&chunk, None).unwrap();
        assert_eq!(sel.len(), out.num_rows());
        sel.positions().to_vec()
    }

    fn check(col: CompressedColumn, pred: Predicate, want_path: ExecPath) {
        assert_eq!(exec_path(&col, "c", &pred), want_path);
        let got = select_compressed(&col, "c", &pred).unwrap();
        assert_eq!(got.path, want_path);
        assert_eq!(got.positions, reference(&col, "c", &pred));
        if let Some(spans) = &got.spans {
            let expanded: Vec<u32> =
                spans.iter().flat_map(|&(s, l)| s..s + l).collect();
            assert_eq!(expanded, got.positions, "spans expand to positions");
        }
    }

    #[test]
    fn rle_runs_emit_spans() {
        let col = CompressedColumn::compress(&ColumnData::Int32(
            (0..4000).map(|i| i / 100).collect(),
        ));
        assert_eq!(col.codec(), "rle");
        check(col.clone(), Predicate::between("c", 5, 20), ExecPath::RleRuns);
        check(col, Predicate::eq("c", 7), ExecPath::RleRuns);
    }

    #[test]
    fn dict_codes_use_truth_table() {
        let col = CompressedColumn::compress(&ColumnData::Str(
            DictColumn::from_strings((0..3000).map(|i| format!("v{}", (i * 7) % 40))),
        ));
        assert_eq!(col.codec(), "for-bitpack");
        check(
            col.clone(),
            Predicate::cmp("c", CmpOp::Ge, "v2"),
            ExecPath::DictTable,
        );
        check(
            col,
            Predicate::StrPrefix { column: "c".into(), prefix: "v1".into() },
            ExecPath::DictTable,
        );
    }

    #[test]
    fn bitpacked_range_compares_in_packed_space() {
        let col = CompressedColumn::compress(&ColumnData::Int32(
            (0..5000).map(|i| (i * 13) % 97 - 48).collect(),
        ));
        assert_eq!(col.codec(), "for-bitpack");
        for pred in [
            Predicate::between("c", -10, 25),
            Predicate::eq("c", 0),
            Predicate::cmp("c", CmpOp::Ne, -3),
            Predicate::cmp("c", CmpOp::Lt, 4),
            Predicate::cmp("c", CmpOp::Ge, -47),
            Predicate::between("c", 0.5, 3.5),
        ] {
            check(col.clone(), pred, ExecPath::PackedLiteral);
        }
    }

    #[test]
    fn bitpacked_compound_predicates_stream() {
        let col = CompressedColumn::compress(&ColumnData::Int32(
            (0..5000).map(|i| (i * 13) % 97 - 48).collect(),
        ));
        let pred = Predicate::and([
            Predicate::cmp("c", CmpOp::Ge, -20),
            Predicate::Not(Box::new(Predicate::eq("c", 3))),
        ]);
        check(col, pred, ExecPath::PackedStream);
    }

    #[test]
    fn raw_and_unsupported_fall_back() {
        let raw = CompressedColumn::compress(&ColumnData::Float64(
            (0..100).map(|i| (i as f64 - 50.0) * (i as f64).sqrt()).collect(),
        ));
        assert_eq!(raw.codec(), "raw");
        check(raw, Predicate::cmp("c", CmpOp::Gt, 0.0), ExecPath::Decompress);
        // String predicate on a packed numeric column: unsupported pair;
        // the fallback reproduces the reference error.
        let packed =
            CompressedColumn::compress(&ColumnData::Int32((0..100).map(|i| i % 7).collect()));
        let pred = Predicate::eq("c", "x");
        assert_eq!(exec_path(&packed, "c", &pred), ExecPath::Decompress);
        let got = select_compressed(&packed, "c", &pred).unwrap_err();
        let dec = packed.decompress();
        let chunk =
            Chunk::new(vec![Field::new("c", DataType::Int32)], vec![dec]);
        let want = select(&chunk, &pred).unwrap_err();
        assert_eq!(format!("{got}"), format!("{want}"));
    }

    #[test]
    fn empty_column_yields_empty_selection() {
        let col = CompressedColumn::compress(&ColumnData::Int32(vec![]));
        let got = select_compressed(&col, "c", &Predicate::eq("c", 1)).unwrap();
        assert!(got.positions.is_empty());
    }
}
