//! Sort / top-k kernel.
//!
//! Comparison keys are precomputed once per column — numeric columns as
//! `f64`, string columns as lexicographic *ranks* of their dictionary
//! codes — so the comparator never allocates and never re-reads values.

use crate::batch::Chunk;
use crate::plan::{SortKey, SortOrder};
use robustq_storage::ColumnData;
use std::cmp::Ordering;

/// Order-preserving numeric keys for one column: `f64` for numerics,
/// dictionary rank for strings.
fn order_keys(col: &ColumnData) -> Vec<f64> {
    match col {
        ColumnData::Str(d) => {
            // Rank of each dictionary entry in lexicographic order.
            let mut order: Vec<u32> = (0..d.dict().len() as u32).collect();
            order.sort_by(|&a, &b| d.dict()[a as usize].cmp(&d.dict()[b as usize]));
            let mut rank = vec![0u32; d.dict().len()];
            for (r, &code) in order.iter().enumerate() {
                rank[code as usize] = r as u32;
            }
            d.codes().iter().map(|&c| rank[c as usize] as f64).collect()
        }
        _ => (0..col.len()).map(|i| col.get_f64(i)).collect(),
    }
}

/// Sort `chunk` by `keys` (stable), optionally truncating to `limit` rows.
pub fn sort(chunk: &Chunk, keys: &[SortKey], limit: Option<usize>) -> Result<Chunk, String> {
    // Validate keys up front so errors mention the key, not a row.
    let cols: Vec<(Vec<f64>, SortOrder)> = keys
        .iter()
        .map(|k| Ok((order_keys(chunk.require_column(&k.column)?), k.order)))
        .collect::<Result<_, String>>()?;
    let mut idx: Vec<u32> = (0..chunk.num_rows() as u32).collect();
    idx.sort_by(|&a, &b| {
        let (a, b) = (a as usize, b as usize);
        for (vals, order) in &cols {
            let ord = vals[a].partial_cmp(&vals[b]).unwrap_or(Ordering::Equal);
            let ord = match order {
                SortOrder::Asc => ord,
                SortOrder::Desc => ord.reverse(),
            };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    });
    if let Some(l) = limit {
        idx.truncate(l);
    }
    Ok(chunk.gather(&idx))
}

#[cfg(test)]
mod tests {
    use super::*;
    use robustq_storage::{DataType, DictColumn, Field, Value};

    fn chunk() -> Chunk {
        Chunk::new(
            vec![
                Field::new("k", DataType::Int32),
                Field::new("s", DataType::Str),
            ],
            vec![
                ColumnData::Int32(vec![3, 1, 2, 1]),
                ColumnData::Str(DictColumn::from_strings(["c", "b", "a", "a"])),
            ],
        )
    }

    #[test]
    fn ascending_sort() {
        let out = sort(&chunk(), &[SortKey::asc("k")], None).unwrap();
        let ks: Vec<_> = (0..4).map(|i| out.row(i)[0].clone()).collect();
        assert_eq!(
            ks,
            vec![Value::Int32(1), Value::Int32(1), Value::Int32(2), Value::Int32(3)]
        );
    }

    #[test]
    fn multi_key_with_directions() {
        let out =
            sort(&chunk(), &[SortKey::asc("k"), SortKey::desc("s")], None).unwrap();
        assert_eq!(out.row(0), vec![Value::Int32(1), Value::from("b")]);
        assert_eq!(out.row(1), vec![Value::Int32(1), Value::from("a")]);
    }

    #[test]
    fn string_sort_uses_lexicographic_order_not_code_order() {
        // Dictionary order is first-seen ("c" gets code 0); sorting must
        // still be lexicographic.
        let out = sort(&chunk(), &[SortKey::asc("s")], None).unwrap();
        assert_eq!(out.row(0)[1], Value::from("a"));
        assert_eq!(out.row(3)[1], Value::from("c"));
    }

    #[test]
    fn top_k_truncates() {
        let out = sort(&chunk(), &[SortKey::desc("k")], Some(2)).unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.row(0)[0], Value::Int32(3));
    }

    #[test]
    fn limit_larger_than_input_is_fine() {
        let out = sort(&chunk(), &[SortKey::asc("k")], Some(100)).unwrap();
        assert_eq!(out.num_rows(), 4);
    }

    #[test]
    fn missing_key_is_error() {
        assert!(sort(&chunk(), &[SortKey::asc("zz")], None).is_err());
    }

    #[test]
    fn stability_preserves_input_order_on_ties() {
        let c = Chunk::new(
            vec![
                Field::new("k", DataType::Int32),
                Field::new("tag", DataType::Int32),
            ],
            vec![
                ColumnData::Int32(vec![1, 1, 1, 1]),
                ColumnData::Int32(vec![10, 20, 30, 40]),
            ],
        );
        let out = sort(&c, &[SortKey::asc("k")], None).unwrap();
        let tags: Vec<i64> = (0..4).map(|i| out.row(i)[1].as_i64().unwrap()).collect();
        assert_eq!(tags, vec![10, 20, 30, 40]);
    }
}
