//! Hash join kernel (inner, semi, anti).
//!
//! [`hash_join`] consumes materialized sides. [`hash_join_sel`] probes the
//! base probe chunk *through* a selection vector: only selected rows have
//! keys extracted (via the per-row [`ProbeKeys`] extractor) and position
//! pairs are emitted directly, so a filtered probe side is never gathered
//! before the join.

use crate::batch::{Chunk, SelVec};
use crate::ops::hashtbl::JoinTable;
use crate::plan::JoinKind;
use robustq_storage::{ColumnData, DataType};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

/// Run `f` with the thread's reusable join key buffers (cleared).
///
/// Key extraction is row-width work, so the two `Vec<u64>`s dominate the
/// join's allocation cost; keeping them thread-local means steady-state
/// joins allocate nothing for keys. `mem::take` (rather than holding the
/// borrow) keeps a nested join safe — it would simply see fresh buffers.
pub(crate) fn with_key_buffers<R>(
    f: impl FnOnce(&mut Vec<u64>, &mut Vec<u64>) -> R,
) -> R {
    thread_local! {
        static KEY_BUFS: RefCell<(Vec<u64>, Vec<u64>)> =
            const { RefCell::new((Vec::new(), Vec::new())) };
    }
    KEY_BUFS.with(|bufs| {
        let (mut bkeys, mut pkeys) = std::mem::take(&mut *bufs.borrow_mut());
        bkeys.clear();
        pkeys.clear();
        let result = f(&mut bkeys, &mut pkeys);
        *bufs.borrow_mut() = (bkeys, pkeys);
        result
    })
}

/// Fill `bkeys`/`pkeys` with canonical 64-bit join keys for a key column
/// pair (appending to whatever the buffers already hold — callers clear).
///
/// Integer pairs compare as integers and anything involving a float
/// compares through `f64` bits. String pairs reuse the build side's
/// dictionary codes directly as keys: when both columns share one
/// dictionary `Arc` (common after gathers/filters of the same base
/// column), probe codes are emitted as-is with no per-call map at all;
/// otherwise only the two *dictionaries* are reconciled (O(|dicts|), not
/// O(rows)) and probe codes are translated through that table. Probe-only
/// strings map to a sentinel that never matches.
pub(crate) fn join_keys_into(
    build: &ColumnData,
    probe: &ColumnData,
    bkeys: &mut Vec<u64>,
    pkeys: &mut Vec<u64>,
) -> Result<(), String> {
    use DataType::*;
    let (bt, pt) = (build.data_type(), probe.data_type());
    match (bt, pt) {
        (Str, Str) => {
            let (b, p) = match (build, probe) {
                (ColumnData::Str(b), ColumnData::Str(p)) => (b, p),
                _ => unreachable!("types checked"),
            };
            bkeys.extend(b.codes().iter().map(|&c| c as u64));
            if Arc::ptr_eq(b.dict(), p.dict()) {
                // Shared dictionary: codes are directly comparable.
                pkeys.extend(p.codes().iter().map(|&c| c as u64));
            } else {
                let intern: HashMap<&str, u64> = b
                    .dict()
                    .iter()
                    .enumerate()
                    .map(|(i, s)| (s.as_str(), i as u64))
                    .collect();
                let probe_map: Vec<u64> = p
                    .dict()
                    .iter()
                    .map(|s| intern.get(s.as_str()).copied().unwrap_or(u64::MAX))
                    .collect();
                pkeys.extend(p.codes().iter().map(|&c| probe_map[c as usize]));
            }
            Ok(())
        }
        (Str, _) | (_, Str) => {
            Err("cannot join a string column with a numeric column".into())
        }
        (Float64, _) | (_, Float64) => {
            bkeys.extend((0..build.len()).map(|i| build.get_f64(i).to_bits()));
            pkeys.extend((0..probe.len()).map(|i| probe.get_f64(i).to_bits()));
            Ok(())
        }
        _ => {
            let conv = |c: &ColumnData, out: &mut Vec<u64>| match c {
                ColumnData::Int32(v) => out.extend(v.iter().map(|&x| x as i64 as u64)),
                ColumnData::Int64(v) => out.extend(v.iter().map(|&x| x as u64)),
                _ => unreachable!("integer types checked"),
            };
            conv(build, bkeys);
            conv(probe, pkeys);
            Ok(())
        }
    }
}

/// Per-row probe key extraction, mirroring [`join_keys_into`] exactly.
///
/// Where `join_keys_into` materializes a dense `Vec<u64>` of probe keys,
/// this resolves the column once and computes each key on demand — the
/// form selection-vector probing needs, since only selected rows ever get
/// a key. Key values are bit-identical to the dense path: shared-dict
/// codes pass through, reconciled dictionaries translate through the same
/// table (with the same `u64::MAX` never-matches sentinel), floats compare
/// by bit pattern and integers by value.
pub(crate) enum ProbeKeys<'a> {
    /// String column: dictionary codes, optionally translated into the
    /// build dictionary's code space.
    Codes {
        /// Per-row probe codes.
        codes: &'a [u32],
        /// `map[probe_code] -> build key`; `None` when the dictionaries
        /// are the same `Arc` and codes are directly comparable.
        map: Option<Vec<u64>>,
    },
    /// Numeric column keyed by `f64` bit pattern.
    F64(&'a ColumnData),
    /// Integer column keyed by value.
    Int(&'a ColumnData),
}

impl ProbeKeys<'_> {
    /// The join key of probe row `row`.
    #[inline]
    pub(crate) fn key(&self, row: usize) -> u64 {
        match self {
            ProbeKeys::Codes { codes, map: None } => codes[row] as u64,
            ProbeKeys::Codes { codes, map: Some(m) } => m[codes[row] as usize],
            ProbeKeys::F64(c) => c.get_f64(row).to_bits(),
            ProbeKeys::Int(c) => match c {
                ColumnData::Int32(v) => v[row] as i64 as u64,
                ColumnData::Int64(v) => v[row] as u64,
                _ => unreachable!("integer types checked"),
            },
        }
    }
}

/// Fill `bkeys` with dense build keys and return the probe-side per-row
/// extractor. Type checking and error messages match [`join_keys_into`].
pub(crate) fn probe_key_extractor<'a>(
    build: &ColumnData,
    probe: &'a ColumnData,
    bkeys: &mut Vec<u64>,
) -> Result<ProbeKeys<'a>, String> {
    use DataType::*;
    let (bt, pt) = (build.data_type(), probe.data_type());
    match (bt, pt) {
        (Str, Str) => {
            let (b, p) = match (build, probe) {
                (ColumnData::Str(b), ColumnData::Str(p)) => (b, p),
                _ => unreachable!("types checked"),
            };
            bkeys.extend(b.codes().iter().map(|&c| c as u64));
            let map = if Arc::ptr_eq(b.dict(), p.dict()) {
                None
            } else {
                let intern: HashMap<&str, u64> = b
                    .dict()
                    .iter()
                    .enumerate()
                    .map(|(i, s)| (s.as_str(), i as u64))
                    .collect();
                Some(
                    p.dict()
                        .iter()
                        .map(|s| intern.get(s.as_str()).copied().unwrap_or(u64::MAX))
                        .collect(),
                )
            };
            Ok(ProbeKeys::Codes { codes: p.codes(), map })
        }
        (Str, _) | (_, Str) => {
            Err("cannot join a string column with a numeric column".into())
        }
        (Float64, _) | (_, Float64) => {
            bkeys.extend((0..build.len()).map(|i| build.get_f64(i).to_bits()));
            Ok(ProbeKeys::F64(probe))
        }
        _ => {
            match build {
                ColumnData::Int32(v) => bkeys.extend(v.iter().map(|&x| x as i64 as u64)),
                ColumnData::Int64(v) => bkeys.extend(v.iter().map(|&x| x as u64)),
                _ => unreachable!("integer types checked"),
            }
            Ok(ProbeKeys::Int(probe))
        }
    }
}

/// Probe the given global probe positions against `table`, appending
/// qualifying positions.
///
/// `Inner` appends matching `(probe, build)` position pairs; `Semi`/`Anti`
/// append surviving probe positions only (and never touch `build_pos`).
/// Positions come out in input order, so per-morsel outputs concatenate
/// into exactly the serial result.
pub(crate) fn probe_into(
    keys: &ProbeKeys<'_>,
    table: &HashMap<u64, Vec<u32>>,
    kind: JoinKind,
    positions: impl Iterator<Item = u32>,
    probe_pos: &mut Vec<u32>,
    build_pos: &mut Vec<u32>,
) {
    match kind {
        JoinKind::Inner => {
            for p in positions {
                let k = keys.key(p as usize);
                if k == u64::MAX {
                    continue; // probe-only string, cannot match
                }
                if let Some(matches) = table.get(&k) {
                    for &b in matches {
                        probe_pos.push(p);
                        build_pos.push(b);
                    }
                }
            }
        }
        JoinKind::Semi => {
            for p in positions {
                let k = keys.key(p as usize);
                if k != u64::MAX && table.contains_key(&k) {
                    probe_pos.push(p);
                }
            }
        }
        JoinKind::Anti => {
            for p in positions {
                let k = keys.key(p as usize);
                if k == u64::MAX || !table.contains_key(&k) {
                    probe_pos.push(p);
                }
            }
        }
    }
}

/// Hash join where the probe side is `(chunk, selection vector)`.
///
/// Only positions in `sel` (all rows when `None`) are probed; keys are
/// extracted per selected row and matching position pairs gathered
/// straight from the *base* probe chunk — the filtered probe side is
/// never materialized. Output is bit-identical to
/// [`hash_join`]`(build, &probe.gather(sel), …)`.
pub fn hash_join_sel(
    build: &Chunk,
    probe: &Chunk,
    build_key: &str,
    probe_key: &str,
    kind: JoinKind,
    sel: Option<&SelVec>,
) -> Result<Chunk, String> {
    let bcol = build.require_column(build_key)?;
    let pcol = probe.require_column(probe_key)?;
    with_key_buffers(|bkeys, _| {
        let keys = probe_key_extractor(bcol, pcol, bkeys)?;
        let table = build_table(bkeys);
        let mut probe_pos = Vec::new();
        let mut build_pos = Vec::new();
        match sel {
            Some(s) => probe_into(
                &keys,
                &table,
                kind,
                s.positions().iter().copied(),
                &mut probe_pos,
                &mut build_pos,
            ),
            None => probe_into(
                &keys,
                &table,
                kind,
                0..probe.num_rows() as u32,
                &mut probe_pos,
                &mut build_pos,
            ),
        }
        match kind {
            JoinKind::Inner => {
                Ok(probe.gather(&probe_pos).zip(build.gather(&build_pos)))
            }
            JoinKind::Semi | JoinKind::Anti => Ok(probe.gather(&probe_pos)),
        }
    })
}

/// [`probe_into`] against a [`JoinTable`]: the production probe loop.
///
/// Match order per probe row is increasing build row — the same order the
/// `HashMap<u64, Vec<u32>>` reference emits — so outputs are bit-identical
/// to [`probe_into`] for the same position stream.
pub(crate) fn probe_table_into(
    keys: &ProbeKeys<'_>,
    table: &JoinTable,
    kind: JoinKind,
    positions: impl Iterator<Item = u32>,
    probe_pos: &mut Vec<u32>,
    build_pos: &mut Vec<u32>,
) {
    match kind {
        JoinKind::Inner => {
            for p in positions {
                let k = keys.key(p as usize);
                if k == u64::MAX {
                    continue; // probe-only string, cannot match
                }
                table.for_each_match(k, |b| {
                    probe_pos.push(p);
                    build_pos.push(b);
                });
            }
        }
        JoinKind::Semi => {
            for p in positions {
                let k = keys.key(p as usize);
                if k != u64::MAX && table.contains(k) {
                    probe_pos.push(p);
                }
            }
        }
        JoinKind::Anti => {
            for p in positions {
                let k = keys.key(p as usize);
                if k == u64::MAX || !table.contains(k) {
                    probe_pos.push(p);
                }
            }
        }
    }
}

/// Production hash join: bit-identical to [`hash_join`], built on the
/// flat-array [`JoinTable`] (multiply-shift hashing, no per-key `Vec`s)
/// with pre-sized probe output buffers.
///
/// The output reserve is `probe rows`: for Semi/Anti it is exact worst
/// case, and for Inner it covers every probe workload whose average match
/// count is ≤ 1 (foreign-key probes) without a counting pre-pass —
/// higher-fanout joins fall back to amortized growth beyond that.
pub fn hash_join_fast(
    build: &Chunk,
    probe: &Chunk,
    build_key: &str,
    probe_key: &str,
    kind: JoinKind,
) -> Result<Chunk, String> {
    let bcol = build.require_column(build_key)?;
    let pcol = probe.require_column(probe_key)?;
    with_key_buffers(|bkeys, pkeys| {
        join_keys_into(bcol, pcol, bkeys, pkeys)?;
        let table = JoinTable::build(bkeys);
        match kind {
            JoinKind::Inner => {
                let mut probe_pos: Vec<u32> = Vec::with_capacity(pkeys.len());
                let mut build_pos: Vec<u32> = Vec::with_capacity(pkeys.len());
                for (i, &k) in pkeys.iter().enumerate() {
                    if k == u64::MAX {
                        continue; // probe-only string, cannot match
                    }
                    table.for_each_match(k, |b| {
                        probe_pos.push(i as u32);
                        build_pos.push(b);
                    });
                }
                Ok(probe.gather(&probe_pos).zip(build.gather(&build_pos)))
            }
            JoinKind::Semi => {
                let mut pos: Vec<u32> = Vec::with_capacity(pkeys.len());
                for (i, &k) in pkeys.iter().enumerate() {
                    if k != u64::MAX && table.contains(k) {
                        pos.push(i as u32);
                    }
                }
                Ok(probe.gather(&pos))
            }
            JoinKind::Anti => {
                let mut pos: Vec<u32> = Vec::with_capacity(pkeys.len());
                for (i, &k) in pkeys.iter().enumerate() {
                    if k == u64::MAX || !table.contains(k) {
                        pos.push(i as u32);
                    }
                }
                Ok(probe.gather(&pos))
            }
        }
    })
}

/// Production selection-vector hash join: bit-identical to
/// [`hash_join_sel`], on [`JoinTable`] with pre-sized outputs.
pub fn hash_join_sel_fast(
    build: &Chunk,
    probe: &Chunk,
    build_key: &str,
    probe_key: &str,
    kind: JoinKind,
    sel: Option<&SelVec>,
) -> Result<Chunk, String> {
    let bcol = build.require_column(build_key)?;
    let pcol = probe.require_column(probe_key)?;
    with_key_buffers(|bkeys, _| {
        let keys = probe_key_extractor(bcol, pcol, bkeys)?;
        let table = JoinTable::build(bkeys);
        let probed = sel.map_or(probe.num_rows(), |s| s.positions().len());
        let mut probe_pos = Vec::with_capacity(probed);
        let mut build_pos =
            Vec::with_capacity(if kind == JoinKind::Inner { probed } else { 0 });
        match sel {
            Some(s) => probe_table_into(
                &keys,
                &table,
                kind,
                s.positions().iter().copied(),
                &mut probe_pos,
                &mut build_pos,
            ),
            None => probe_table_into(
                &keys,
                &table,
                kind,
                0..probe.num_rows() as u32,
                &mut probe_pos,
                &mut build_pos,
            ),
        }
        match kind {
            JoinKind::Inner => {
                Ok(probe.gather(&probe_pos).zip(build.gather(&build_pos)))
            }
            JoinKind::Semi | JoinKind::Anti => Ok(probe.gather(&probe_pos)),
        }
    })
}

/// Hash the build keys into `key -> build row positions`.
pub(crate) fn build_table(bkeys: &[u64]) -> HashMap<u64, Vec<u32>> {
    let mut table: HashMap<u64, Vec<u32>> = HashMap::with_capacity(bkeys.len());
    for (i, &k) in bkeys.iter().enumerate() {
        table.entry(k).or_default().push(i as u32);
    }
    table
}

/// Hash join `probe ⋈ build` on `probe_key = build_key`.
///
/// * `Inner`: output is probe columns then build columns (duplicate names
///   suffixed `_r`), one row per matching pair.
/// * `Semi`: probe rows with at least one match, probe columns only.
/// * `Anti`: probe rows with no match, probe columns only.
pub fn hash_join(
    build: &Chunk,
    probe: &Chunk,
    build_key: &str,
    probe_key: &str,
    kind: JoinKind,
) -> Result<Chunk, String> {
    let bcol = build.require_column(build_key)?;
    let pcol = probe.require_column(probe_key)?;
    with_key_buffers(|bkeys, pkeys| {
        join_keys_into(bcol, pcol, bkeys, pkeys)?;
        let table = build_table(bkeys);
        join_with_table(build, probe, pkeys, &table, kind)
    })
}

/// Probe `pkeys` against a prebuilt `table` and materialize the result.
fn join_with_table(
    build: &Chunk,
    probe: &Chunk,
    pkeys: &[u64],
    table: &HashMap<u64, Vec<u32>>,
    kind: JoinKind,
) -> Result<Chunk, String> {
    match kind {
        JoinKind::Inner => {
            let mut probe_pos: Vec<u32> = Vec::new();
            let mut build_pos: Vec<u32> = Vec::new();
            for (i, &k) in pkeys.iter().enumerate() {
                if k == u64::MAX {
                    continue; // probe-only string, cannot match
                }
                if let Some(matches) = table.get(&k) {
                    for &b in matches {
                        probe_pos.push(i as u32);
                        build_pos.push(b);
                    }
                }
            }
            Ok(probe.gather(&probe_pos).zip(build.gather(&build_pos)))
        }
        JoinKind::Semi => {
            let pos: Vec<u32> = pkeys
                .iter()
                .enumerate()
                .filter(|&(_, k)| *k != u64::MAX && table.contains_key(k))
                .map(|(i, _)| i as u32)
                .collect();
            Ok(probe.gather(&pos))
        }
        JoinKind::Anti => {
            let pos: Vec<u32> = pkeys
                .iter()
                .enumerate()
                .filter(|&(_, k)| *k == u64::MAX || !table.contains_key(k))
                .map(|(i, _)| i as u32)
                .collect();
            Ok(probe.gather(&pos))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robustq_storage::{DictColumn, Field, Value};

    fn build_side() -> Chunk {
        Chunk::new(
            vec![
                Field::new("id", DataType::Int32),
                Field::new("name", DataType::Str),
            ],
            vec![
                ColumnData::Int32(vec![1, 2, 2]),
                ColumnData::Str(DictColumn::from_strings(["a", "b", "b2"])),
            ],
        )
    }

    fn probe_side() -> Chunk {
        Chunk::new(
            vec![
                Field::new("fk", DataType::Int32),
                Field::new("v", DataType::Float64),
            ],
            vec![
                ColumnData::Int32(vec![2, 3, 1]),
                ColumnData::Float64(vec![20.0, 30.0, 10.0]),
            ],
        )
    }

    #[test]
    fn inner_join_matches_and_duplicates() {
        let out =
            hash_join(&build_side(), &probe_side(), "id", "fk", JoinKind::Inner).unwrap();
        // fk=2 matches two build rows, fk=3 none, fk=1 one.
        assert_eq!(out.num_rows(), 3);
        assert_eq!(out.num_columns(), 4);
        let rows = out.sorted_rows();
        assert!(rows.contains(&vec![
            Value::Int32(1),
            Value::Float64(10.0),
            Value::Int32(1),
            Value::from("a")
        ]));
    }

    #[test]
    fn semi_join_keeps_probe_schema() {
        let out =
            hash_join(&build_side(), &probe_side(), "id", "fk", JoinKind::Semi).unwrap();
        assert_eq!(out.num_columns(), 2);
        assert_eq!(out.num_rows(), 2); // fk=2 and fk=1 (no duplication)
    }

    #[test]
    fn anti_join_keeps_non_matching() {
        let out =
            hash_join(&build_side(), &probe_side(), "id", "fk", JoinKind::Anti).unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.row(0)[0], Value::Int32(3));
    }

    #[test]
    fn string_key_join_across_dictionaries() {
        let build = Chunk::new(
            vec![Field::new("n", DataType::Str)],
            vec![ColumnData::Str(DictColumn::from_strings(["FRANCE", "GERMANY"]))],
        );
        let probe = Chunk::new(
            vec![Field::new("n2", DataType::Str)],
            vec![ColumnData::Str(DictColumn::from_strings([
                "GERMANY", "RUSSIA", "FRANCE", "GERMANY",
            ]))],
        );
        let out = hash_join(&build, &probe, "n", "n2", JoinKind::Inner).unwrap();
        assert_eq!(out.num_rows(), 3);
        let semi = hash_join(&build, &probe, "n", "n2", JoinKind::Anti).unwrap();
        assert_eq!(semi.num_rows(), 1);
        assert_eq!(semi.row(0)[0], Value::from("RUSSIA"));
    }

    #[test]
    fn string_key_join_with_shared_dictionary() {
        // A gather shares the dictionary Arc, so this exercises the
        // code-reuse fast path (no interning map at all).
        let base = Chunk::new(
            vec![Field::new("n", DataType::Str)],
            vec![ColumnData::Str(DictColumn::from_strings([
                "FRANCE", "GERMANY", "RUSSIA",
            ]))],
        );
        let build = base.gather(&[0, 1]);
        let probe = base.gather(&[1, 2, 0, 1]);
        let out = hash_join(&build, &probe, "n", "n", JoinKind::Inner).unwrap();
        assert_eq!(out.num_rows(), 3);
        let anti = hash_join(&build, &probe, "n", "n", JoinKind::Anti).unwrap();
        assert_eq!(anti.num_rows(), 1);
        assert_eq!(anti.row(0)[0], Value::from("RUSSIA"));
    }

    #[test]
    fn mixed_int_float_keys_join_numerically() {
        let build = Chunk::new(
            vec![Field::new("k", DataType::Float64)],
            vec![ColumnData::Float64(vec![1.0, 2.0])],
        );
        let probe = Chunk::new(
            vec![Field::new("k2", DataType::Int32)],
            vec![ColumnData::Int32(vec![2, 5])],
        );
        let out = hash_join(&build, &probe, "k", "k2", JoinKind::Inner).unwrap();
        assert_eq!(out.num_rows(), 1);
    }

    #[test]
    fn string_vs_numeric_key_is_an_error() {
        let build = Chunk::new(
            vec![Field::new("s", DataType::Str)],
            vec![ColumnData::Str(DictColumn::from_strings(["x"]))],
        );
        assert!(
            hash_join(&build, &probe_side(), "s", "fk", JoinKind::Inner).is_err()
        );
    }

    #[test]
    fn empty_sides() {
        let empty_build = build_side().gather(&[]);
        let out =
            hash_join(&empty_build, &probe_side(), "id", "fk", JoinKind::Inner).unwrap();
        assert_eq!(out.num_rows(), 0);
        let out =
            hash_join(&empty_build, &probe_side(), "id", "fk", JoinKind::Anti).unwrap();
        assert_eq!(out.num_rows(), 3);
    }

    #[test]
    fn fast_join_matches_reference_all_kinds() {
        // Pseudo-random keys with duplicates and misses on both sides so the
        // fast table exercises chained buckets and empty lookups.
        let n = 257usize;
        let bkeys: Vec<i64> = (0..n).map(|i| ((i * 37) % 83) as i64).collect();
        let pkeys: Vec<i64> = (0..n * 2).map(|i| ((i * 53) % 120) as i64).collect();
        let build = Chunk::new(
            vec![
                Field::new("k", DataType::Int64),
                Field::new("bv", DataType::Int32),
            ],
            vec![
                ColumnData::Int64(bkeys),
                ColumnData::Int32((0..n as i32).collect()),
            ],
        );
        let probe = Chunk::new(
            vec![
                Field::new("fk", DataType::Int64),
                Field::new("pv", DataType::Int32),
            ],
            vec![
                ColumnData::Int64(pkeys),
                ColumnData::Int32((0..(n * 2) as i32).collect()),
            ],
        );
        let sel = SelVec::new((0..(n * 2) as u32).filter(|i| i % 3 != 0).collect());
        for kind in [JoinKind::Inner, JoinKind::Semi, JoinKind::Anti] {
            let want = hash_join(&build, &probe, "k", "fk", kind).unwrap();
            let got = hash_join_fast(&build, &probe, "k", "fk", kind).unwrap();
            assert_eq!(got.num_rows(), want.num_rows(), "{kind:?}");
            for i in 0..want.num_rows() {
                assert_eq!(got.row(i), want.row(i), "{kind:?} row {i}");
            }
            let want =
                hash_join_sel(&build, &probe, "k", "fk", kind, Some(&sel)).unwrap();
            let got =
                hash_join_sel_fast(&build, &probe, "k", "fk", kind, Some(&sel)).unwrap();
            assert_eq!(got.num_rows(), want.num_rows(), "sel {kind:?}");
            for i in 0..want.num_rows() {
                assert_eq!(got.row(i), want.row(i), "sel {kind:?} row {i}");
            }
        }
    }

    #[test]
    fn fast_join_empty_and_error_paths_match() {
        let empty_build = build_side().gather(&[]);
        let out = hash_join_fast(&empty_build, &probe_side(), "id", "fk", JoinKind::Anti)
            .unwrap();
        assert_eq!(out.num_rows(), 3);
        assert!(
            hash_join_fast(&build_side(), &probe_side(), "name", "fk", JoinKind::Inner)
                .is_err()
        );
    }
}
