//! Hash join kernel (inner, semi, anti).

use crate::batch::Chunk;
use crate::plan::JoinKind;
use robustq_storage::{ColumnData, DataType};
use std::collections::HashMap;

/// Canonical 64-bit join keys for a pair of key columns.
///
/// Integer pairs compare as integers, anything involving a float compares
/// through `f64` bits, and string pairs are interned over the build side's
/// dictionary (probe-only strings map to a sentinel that never matches).
fn join_keys(build: &ColumnData, probe: &ColumnData) -> Result<(Vec<u64>, Vec<u64>), String> {
    use DataType::*;
    let (bt, pt) = (build.data_type(), probe.data_type());
    match (bt, pt) {
        (Str, Str) => {
            let (b, p) = match (build, probe) {
                (ColumnData::Str(b), ColumnData::Str(p)) => (b, p),
                _ => unreachable!("types checked"),
            };
            let mut intern: HashMap<&str, u64> = HashMap::new();
            for (i, s) in b.dict().iter().enumerate() {
                intern.insert(s.as_str(), i as u64);
            }
            let probe_map: Vec<u64> = p
                .dict()
                .iter()
                .map(|s| intern.get(s.as_str()).copied().unwrap_or(u64::MAX))
                .collect();
            Ok((
                b.codes().iter().map(|&c| c as u64).collect(),
                p.codes().iter().map(|&c| probe_map[c as usize]).collect(),
            ))
        }
        (Str, _) | (_, Str) => {
            Err("cannot join a string column with a numeric column".into())
        }
        (Float64, _) | (_, Float64) => {
            let conv = |c: &ColumnData| -> Vec<u64> {
                (0..c.len()).map(|i| c.get_f64(i).to_bits()).collect()
            };
            Ok((conv(build), conv(probe)))
        }
        _ => {
            let conv = |c: &ColumnData| -> Vec<u64> {
                (0..c.len())
                    .map(|i| match c {
                        ColumnData::Int32(v) => v[i] as i64 as u64,
                        ColumnData::Int64(v) => v[i] as u64,
                        _ => unreachable!("integer types checked"),
                    })
                    .collect()
            };
            Ok((conv(build), conv(probe)))
        }
    }
}

/// Hash join `probe ⋈ build` on `probe_key = build_key`.
///
/// * `Inner`: output is probe columns then build columns (duplicate names
///   suffixed `_r`), one row per matching pair.
/// * `Semi`: probe rows with at least one match, probe columns only.
/// * `Anti`: probe rows with no match, probe columns only.
pub fn hash_join(
    build: &Chunk,
    probe: &Chunk,
    build_key: &str,
    probe_key: &str,
    kind: JoinKind,
) -> Result<Chunk, String> {
    let bcol = build.require_column(build_key)?;
    let pcol = probe.require_column(probe_key)?;
    let (bkeys, pkeys) = join_keys(bcol, pcol)?;

    let mut table: HashMap<u64, Vec<u32>> = HashMap::with_capacity(bkeys.len());
    for (i, &k) in bkeys.iter().enumerate() {
        table.entry(k).or_default().push(i as u32);
    }

    match kind {
        JoinKind::Inner => {
            let mut probe_pos = Vec::new();
            let mut build_pos = Vec::new();
            for (i, &k) in pkeys.iter().enumerate() {
                if k == u64::MAX {
                    continue; // probe-only string, cannot match
                }
                if let Some(matches) = table.get(&k) {
                    for &b in matches {
                        probe_pos.push(i);
                        build_pos.push(b as usize);
                    }
                }
            }
            Ok(probe.gather(&probe_pos).zip(build.gather(&build_pos)))
        }
        JoinKind::Semi => {
            let pos: Vec<usize> = pkeys
                .iter()
                .enumerate()
                .filter(|&(_, k)| *k != u64::MAX && table.contains_key(k))
                .map(|(i, _)| i)
                .collect();
            Ok(probe.gather(&pos))
        }
        JoinKind::Anti => {
            let pos: Vec<usize> = pkeys
                .iter()
                .enumerate()
                .filter(|&(_, k)| *k == u64::MAX || !table.contains_key(k))
                .map(|(i, _)| i)
                .collect();
            Ok(probe.gather(&pos))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robustq_storage::{DictColumn, Field, Value};

    fn build_side() -> Chunk {
        Chunk::new(
            vec![
                Field::new("id", DataType::Int32),
                Field::new("name", DataType::Str),
            ],
            vec![
                ColumnData::Int32(vec![1, 2, 2]),
                ColumnData::Str(DictColumn::from_strings(["a", "b", "b2"])),
            ],
        )
    }

    fn probe_side() -> Chunk {
        Chunk::new(
            vec![
                Field::new("fk", DataType::Int32),
                Field::new("v", DataType::Float64),
            ],
            vec![
                ColumnData::Int32(vec![2, 3, 1]),
                ColumnData::Float64(vec![20.0, 30.0, 10.0]),
            ],
        )
    }

    #[test]
    fn inner_join_matches_and_duplicates() {
        let out =
            hash_join(&build_side(), &probe_side(), "id", "fk", JoinKind::Inner).unwrap();
        // fk=2 matches two build rows, fk=3 none, fk=1 one.
        assert_eq!(out.num_rows(), 3);
        assert_eq!(out.num_columns(), 4);
        let rows = out.sorted_rows();
        assert!(rows.contains(&vec![
            Value::Int32(1),
            Value::Float64(10.0),
            Value::Int32(1),
            Value::from("a")
        ]));
    }

    #[test]
    fn semi_join_keeps_probe_schema() {
        let out =
            hash_join(&build_side(), &probe_side(), "id", "fk", JoinKind::Semi).unwrap();
        assert_eq!(out.num_columns(), 2);
        assert_eq!(out.num_rows(), 2); // fk=2 and fk=1 (no duplication)
    }

    #[test]
    fn anti_join_keeps_non_matching() {
        let out =
            hash_join(&build_side(), &probe_side(), "id", "fk", JoinKind::Anti).unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.row(0)[0], Value::Int32(3));
    }

    #[test]
    fn string_key_join_across_dictionaries() {
        let build = Chunk::new(
            vec![Field::new("n", DataType::Str)],
            vec![ColumnData::Str(DictColumn::from_strings(["FRANCE", "GERMANY"]))],
        );
        let probe = Chunk::new(
            vec![Field::new("n2", DataType::Str)],
            vec![ColumnData::Str(DictColumn::from_strings([
                "GERMANY", "RUSSIA", "FRANCE", "GERMANY",
            ]))],
        );
        let out = hash_join(&build, &probe, "n", "n2", JoinKind::Inner).unwrap();
        assert_eq!(out.num_rows(), 3);
        let semi = hash_join(&build, &probe, "n", "n2", JoinKind::Anti).unwrap();
        assert_eq!(semi.num_rows(), 1);
        assert_eq!(semi.row(0)[0], Value::from("RUSSIA"));
    }

    #[test]
    fn mixed_int_float_keys_join_numerically() {
        let build = Chunk::new(
            vec![Field::new("k", DataType::Float64)],
            vec![ColumnData::Float64(vec![1.0, 2.0])],
        );
        let probe = Chunk::new(
            vec![Field::new("k2", DataType::Int32)],
            vec![ColumnData::Int32(vec![2, 5])],
        );
        let out = hash_join(&build, &probe, "k", "k2", JoinKind::Inner).unwrap();
        assert_eq!(out.num_rows(), 1);
    }

    #[test]
    fn string_vs_numeric_key_is_an_error() {
        let build = Chunk::new(
            vec![Field::new("s", DataType::Str)],
            vec![ColumnData::Str(DictColumn::from_strings(["x"]))],
        );
        assert!(
            hash_join(&build, &probe_side(), "s", "fk", JoinKind::Inner).is_err()
        );
    }

    #[test]
    fn empty_sides() {
        let empty_build = build_side().gather(&[]);
        let out =
            hash_join(&empty_build, &probe_side(), "id", "fk", JoinKind::Inner).unwrap();
        assert_eq!(out.num_rows(), 0);
        let out =
            hash_join(&empty_build, &probe_side(), "id", "fk", JoinKind::Anti).unwrap();
        assert_eq!(out.num_rows(), 3);
    }
}
