//! Operator kernels.
//!
//! Each kernel is a pure function from input chunk(s) to an output chunk.
//! The same kernel code runs regardless of the *simulated* device — what
//! differs between CPU and co-processor execution is the virtual time
//! charged and the device memory accounted by the executor (`exec`), never
//! the result.

pub mod agg;
pub mod compressed;
pub(crate) mod hashtbl;
pub mod join;
pub mod project;
pub mod select;
pub mod sort;

use crate::batch::Chunk;
use crate::parallel::{self, ParallelCtx};
use crate::plan::PlanNode;
use robustq_storage::Database;

/// Execute one plan node given its children's outputs (build side first
/// for joins), returning the materialized result. Serial reference path.
pub fn execute_node(
    node: &PlanNode,
    children: &[Chunk],
    db: &Database,
) -> Result<Chunk, String> {
    execute_node_ctx(node, children, db, ParallelCtx::serial())
}

/// [`execute_node`] with an explicit parallelism context.
///
/// Selection, hash join and aggregation run through the morsel-parallel
/// kernels (`crate::parallel`), which fall back to the serial reference
/// kernels when `ctx.is_serial()` and are bit-identical otherwise.
pub fn execute_node_ctx(
    node: &PlanNode,
    children: &[Chunk],
    db: &Database,
    ctx: ParallelCtx,
) -> Result<Chunk, String> {
    match node {
        PlanNode::Scan { table, columns, predicate } => {
            let t = db
                .table(table)
                .ok_or_else(|| format!("no table {table}"))?;
            let (_, read_cols) = node.scan_access().expect("scan node");
            let chunk = Chunk::from_table(t, &read_cols)?;
            let filtered = match predicate {
                Some(p) => parallel::select(&chunk, p, ctx)?,
                None => chunk,
            };
            // Project away predicate-only columns.
            project::keep_columns(&filtered, columns)
        }
        PlanNode::Select { predicate, .. } => {
            parallel::select(&children[0], predicate, ctx)
        }
        PlanNode::HashJoin { build_key, probe_key, kind, .. } => parallel::hash_join(
            &children[0],
            &children[1],
            build_key,
            probe_key,
            *kind,
            ctx,
        ),
        PlanNode::Project { exprs, .. } => project::project(&children[0], exprs),
        PlanNode::Aggregate { group_by, aggs, .. } => {
            parallel::aggregate(&children[0], group_by, aggs, ctx)
        }
        PlanNode::Sort { keys, limit, .. } => sort::sort(&children[0], keys, *limit),
    }
}

/// Execute a whole plan tree recursively on the host, without any
/// simulation. This is the reference path used by tests and by the
/// vectorized comparator's correctness checks.
pub fn execute_plan(node: &PlanNode, db: &Database) -> Result<Chunk, String> {
    execute_plan_ctx(node, db, ParallelCtx::serial())
}

/// [`execute_plan`] with an explicit parallelism context.
pub fn execute_plan_ctx(
    node: &PlanNode,
    db: &Database,
    ctx: ParallelCtx,
) -> Result<Chunk, String> {
    let children: Vec<Chunk> = node
        .children()
        .iter()
        .map(|c| execute_plan_ctx(c, db, ctx))
        .collect::<Result<_, _>>()?;
    execute_node_ctx(node, children.as_slice(), db, ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::plan::AggSpec;
    use crate::predicate::Predicate;
    use robustq_storage::{ColumnData, DataType, Field, Schema, Table, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.add_table(
            Table::new(
                "facts",
                Schema::new(vec![
                    Field::new("k", DataType::Int32),
                    Field::new("v", DataType::Float64),
                ]),
                vec![
                    ColumnData::Int32(vec![1, 2, 1, 3]),
                    ColumnData::Float64(vec![10.0, 20.0, 30.0, 40.0]),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        db.add_table(
            Table::new(
                "dim",
                Schema::new(vec![
                    Field::new("id", DataType::Int32),
                    Field::new("grp", DataType::Int32),
                ]),
                vec![
                    ColumnData::Int32(vec![1, 2]),
                    ColumnData::Int32(vec![100, 200]),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        db
    }

    #[test]
    fn end_to_end_plan_execution() {
        let db = db();
        let plan = PlanNode::scan("facts", ["k", "v"])
            .join(PlanNode::scan("dim", ["id", "grp"]), "k", "id")
            .aggregate(["grp"], vec![AggSpec::sum(Expr::col("v"), "total")]);
        let out = execute_plan(&plan, &db).unwrap();
        let mut rows = out.sorted_rows();
        rows.sort_by_key(|r| r[0].as_i64());
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], vec![Value::Int32(100), Value::Float64(40.0)]);
        assert_eq!(rows[1], vec![Value::Int32(200), Value::Float64(20.0)]);
    }

    #[test]
    fn scan_projects_away_predicate_columns() {
        let db = db();
        let plan =
            PlanNode::scan("facts", ["v"]).filter(Predicate::eq("k", 1));
        let out = execute_plan(&plan, &db).unwrap();
        assert_eq!(out.num_columns(), 1);
        assert_eq!(out.num_rows(), 2);
        assert!(out.column("k").is_none());
    }

    #[test]
    fn missing_table_is_an_error() {
        let db = db();
        let plan = PlanNode::scan("nope", ["x"]);
        assert!(execute_plan(&plan, &db).is_err());
    }
}
