//! Projection kernel.

use crate::batch::Chunk;
use crate::expr::Expr;
use robustq_storage::Field;

/// Compute named expressions over `chunk`.
pub fn project(chunk: &Chunk, exprs: &[(String, Expr)]) -> Result<Chunk, String> {
    let mut fields = Vec::with_capacity(exprs.len());
    let mut columns = Vec::with_capacity(exprs.len());
    for (name, expr) in exprs {
        let ty = expr.result_type(chunk)?;
        let col = expr.evaluate(chunk)?;
        fields.push(Field::new(name.clone(), ty));
        columns.push(col);
    }
    Ok(Chunk::new(fields, columns))
}

/// Compute named expressions at the given row positions only — the
/// selection-vector form of [`project`]. Output rows are the selected rows
/// in position order, bit-identical to projecting the gathered chunk, but
/// only the columns each expression reads are ever touched.
pub fn project_at(
    chunk: &Chunk,
    exprs: &[(String, Expr)],
    positions: &[u32],
) -> Result<Chunk, String> {
    let mut fields = Vec::with_capacity(exprs.len());
    let mut columns = Vec::with_capacity(exprs.len());
    for (name, expr) in exprs {
        let ty = expr.result_type(chunk)?;
        let col = expr.evaluate_at(chunk, positions)?;
        fields.push(Field::new(name.clone(), ty));
        columns.push(col);
    }
    Ok(Chunk::new(fields, columns))
}

/// Keep only the named columns, in the given order.
pub fn keep_columns(chunk: &Chunk, names: &[String]) -> Result<Chunk, String> {
    let mut fields = Vec::with_capacity(names.len());
    let mut columns = Vec::with_capacity(names.len());
    for name in names {
        let idx = chunk
            .index_of(name)
            .ok_or_else(|| format!("no column {name} in chunk"))?;
        fields.push(chunk.fields()[idx].clone());
        columns.push(chunk.columns()[idx].clone());
    }
    Ok(Chunk::new(fields, columns))
}

#[cfg(test)]
mod tests {
    use super::*;
    use robustq_storage::{ColumnData, DataType, Value};

    fn chunk() -> Chunk {
        Chunk::new(
            vec![
                Field::new("a", DataType::Int32),
                Field::new("b", DataType::Float64),
            ],
            vec![
                ColumnData::Int32(vec![1, 2]),
                ColumnData::Float64(vec![10.0, 20.0]),
            ],
        )
    }

    #[test]
    fn computes_expressions() {
        let out = project(
            &chunk(),
            &[
                ("double_b".into(), Expr::col("b") * Expr::lit(2.0)),
                ("a".into(), Expr::col("a")),
            ],
        )
        .unwrap();
        assert_eq!(out.num_columns(), 2);
        assert_eq!(out.row(1), vec![Value::Float64(40.0), Value::Int32(2)]);
    }

    #[test]
    fn keep_columns_reorders() {
        let out = keep_columns(&chunk(), &["b".into(), "a".into()]).unwrap();
        assert_eq!(out.fields()[0].name, "b");
        assert_eq!(out.fields()[1].name, "a");
        assert!(keep_columns(&chunk(), &["zz".into()]).is_err());
    }

    #[test]
    fn missing_column_is_error() {
        assert!(project(&chunk(), &[("x".into(), Expr::col("zz"))]).is_err());
    }
}
