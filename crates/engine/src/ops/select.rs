//! Selection kernel.

use crate::batch::Chunk;
use crate::predicate::Predicate;

/// Filter `chunk` by `predicate`, materializing qualifying rows.
pub fn select(chunk: &Chunk, predicate: &Predicate) -> Result<Chunk, String> {
    let mask = predicate.evaluate(chunk)?;
    let positions: Vec<usize> =
        mask.iter().enumerate().filter_map(|(i, &m)| m.then_some(i)).collect();
    Ok(chunk.gather(&positions))
}

#[cfg(test)]
mod tests {
    use super::*;
    use robustq_storage::{ColumnData, DataType, Field, Value};

    fn chunk() -> Chunk {
        Chunk::new(
            vec![
                Field::new("a", DataType::Int32),
                Field::new("b", DataType::Float64),
            ],
            vec![
                ColumnData::Int32(vec![1, 2, 3, 4, 5]),
                ColumnData::Float64(vec![1.0, 2.0, 3.0, 4.0, 5.0]),
            ],
        )
    }

    #[test]
    fn filters_rows() {
        let out = select(&chunk(), &Predicate::between("a", 2, 4)).unwrap();
        assert_eq!(out.num_rows(), 3);
        assert_eq!(out.row(0), vec![Value::Int32(2), Value::Float64(2.0)]);
    }

    #[test]
    fn empty_selection() {
        let out = select(&chunk(), &Predicate::eq("a", 99)).unwrap();
        assert_eq!(out.num_rows(), 0);
        assert_eq!(out.num_columns(), 2);
    }

    #[test]
    fn true_predicate_keeps_everything() {
        let out = select(&chunk(), &Predicate::True).unwrap();
        assert_eq!(out.num_rows(), 5);
    }

    #[test]
    fn error_propagates() {
        assert!(select(&chunk(), &Predicate::eq("missing", 1)).is_err());
    }
}
