//! Selection kernel.
//!
//! [`select`] runs on selection vectors: the predicate emits qualifying
//! positions directly and a single gather materializes them.
//! [`select_via_mask`] is the original mask-then-gather implementation,
//! kept as the differential baseline for benches and property tests.

use crate::batch::{Chunk, SelVec};
use crate::predicate::Predicate;

/// Filter `chunk` by `predicate`, materializing qualifying rows.
pub fn select(chunk: &Chunk, predicate: &Predicate) -> Result<Chunk, String> {
    let sel = predicate.evaluate_selvec(chunk, None)?;
    Ok(chunk.gather(sel.positions()))
}

/// Filter `chunk` by `predicate`, restricted to the positions in `sel`
/// when given, returning the surviving selection vector (no
/// materialization).
pub fn select_sel(
    chunk: &Chunk,
    predicate: &Predicate,
    sel: Option<&SelVec>,
) -> Result<SelVec, String> {
    predicate.evaluate_selvec(chunk, sel)
}

/// Mask-based reference implementation of [`select`]: evaluate one `bool`
/// per row, convert to positions, gather. Produces bit-identical output;
/// exists so the selection-vector path always has an in-tree baseline to
/// be compared (and benchmarked) against.
pub fn select_via_mask(chunk: &Chunk, predicate: &Predicate) -> Result<Chunk, String> {
    let mask = predicate.evaluate(chunk)?;
    let positions: Vec<u32> = mask
        .iter()
        .enumerate()
        .filter_map(|(i, &m)| m.then_some(i as u32))
        .collect();
    Ok(chunk.gather(&positions))
}

#[cfg(test)]
mod tests {
    use super::*;
    use robustq_storage::{ColumnData, DataType, Field, Value};

    fn chunk() -> Chunk {
        Chunk::new(
            vec![
                Field::new("a", DataType::Int32),
                Field::new("b", DataType::Float64),
            ],
            vec![
                ColumnData::Int32(vec![1, 2, 3, 4, 5]),
                ColumnData::Float64(vec![1.0, 2.0, 3.0, 4.0, 5.0]),
            ],
        )
    }

    #[test]
    fn filters_rows() {
        let out = select(&chunk(), &Predicate::between("a", 2, 4)).unwrap();
        assert_eq!(out.num_rows(), 3);
        assert_eq!(out.row(0), vec![Value::Int32(2), Value::Float64(2.0)]);
    }

    #[test]
    fn empty_selection() {
        let out = select(&chunk(), &Predicate::eq("a", 99)).unwrap();
        assert_eq!(out.num_rows(), 0);
        assert_eq!(out.num_columns(), 2);
    }

    #[test]
    fn true_predicate_keeps_everything() {
        let out = select(&chunk(), &Predicate::True).unwrap();
        assert_eq!(out.num_rows(), 5);
    }

    #[test]
    fn error_propagates() {
        assert!(select(&chunk(), &Predicate::eq("missing", 1)).is_err());
    }
}
