#![warn(missing_docs)]

//! Operator-at-a-time query execution engine with CPU and simulated-GPU
//! operator variants.
//!
//! The engine mirrors CoGaDB's processing model (Section 2.5 of the
//! paper): queries are physical operator trees; each operator consumes its
//! complete input and materializes its output; sibling subtrees may run in
//! parallel (inter-operator parallelism). Operators *really execute* on
//! real columns — results are correct and testable — while all reported
//! timing comes from the `robustq-sim` virtual clock.
//!
//! Layout:
//!
//! * [`batch`] — materialized intermediate results ([`batch::Chunk`]),
//! * [`expr`] / [`predicate`] — scalar expressions and filter predicates,
//! * [`ops`] — the serial reference operator kernels (selection, hash
//!   join, aggregation, projection, sort/top-k),
//! * [`parallel`] — morsel-driven parallel variants of the hot kernels,
//!   bit-identical to `ops` and selected by [`ParallelCtx`],
//! * [`plan`] — physical plans,
//! * [`estimate`] — the simple analytical cardinality estimator used by
//!   compile-time placement heuristics,
//! * [`exec`] — the discrete-event executor: task graphs, device queues,
//!   transfers, staged heap allocation, operator aborts and the
//!   [`exec::policy::PlacementPolicy`] hook that the placement strategies
//!   in `robustq-core` implement,
//! * [`vectorized`] — a vector-at-a-time comparator engine (stands in for
//!   the MonetDB/Ocelot comparison of Appendix A; see DESIGN.md).

pub mod batch;
pub mod error;
pub mod estimate;
pub mod exec;
pub mod expr;
pub mod ops;
pub mod parallel;
pub mod plan;
pub mod predicate;
pub mod simd;
pub mod vectorized;

pub use batch::{Chunk, LazyChunk, SelVec};
pub use error::EngineError;
pub use parallel::{KernelClass, ParallelCtx};
pub use exec::costmodel::{CostModel, CostModelKind, ModelUpdate};
pub use exec::executor::{
    Arrival, ExecOptions, Executor, FeedEvent, FeedSchedule, RunOutcome, StandingQuery, WindowKind,
};
pub use exec::metrics::{RunMetrics, StagingStats};
pub use exec::pipeline::{execute_plan_fused, fusion_sites, FusedKind};
pub use exec::policy::{Placement, PlacementPolicy, PlaceReason, PolicyCtx, TaskInfo};
pub use exec::task::ShardSpec;
pub use plan::{AggFunc, AggSpec, JoinKind, PlanNode, SortKey, SortOrder};
