//! Materialized intermediate results and selection vectors.
//!
//! A [`Chunk`] is what flows between operators: a set of named, typed,
//! equal-length columns. The original operator-at-a-time engine
//! materialized every intermediate; since the selection-vector rework the
//! kernels can instead pass a `(Chunk, Option<&SelVec>)` pair — the base
//! columns untouched plus a [`SelVec`] of qualifying row positions — and
//! only pipeline breakers (join build sides, sort, final output)
//! materialize. [`LazyChunk`] is the operator-output form carrying either
//! representation.

use robustq_storage::{ColumnData, DataType, Field, Table, Value};
use std::sync::Arc;

/// A selection vector: qualifying row positions of a base [`Chunk`], as
/// `u32`, strictly increasing.
///
/// Passing positions instead of copied rows is the MonetDB/X100-style
/// late-materialization device: a filter produces a `SelVec`, downstream
/// operators read the base columns *through* it, and row order (hence
/// bit-identical results) is preserved because positions stay sorted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelVec(Vec<u32>);

impl SelVec {
    /// Wrap a position list. Positions must be strictly increasing (this
    /// is what preserves row order); checked in debug builds.
    pub fn new(positions: Vec<u32>) -> Self {
        debug_assert!(
            positions.windows(2).all(|w| w[0] < w[1]),
            "selection vector positions must be strictly increasing"
        );
        SelVec(positions)
    }

    /// The identity selection `0..n` (used when a dense input enters a
    /// position-based kernel).
    pub fn all(n: usize) -> Self {
        SelVec((0..n as u32).collect())
    }

    /// An empty selection.
    pub fn empty() -> Self {
        SelVec(Vec::new())
    }

    /// Number of selected rows.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if no rows are selected.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The positions, in increasing order.
    pub fn positions(&self) -> &[u32] {
        &self.0
    }

    /// The underlying position vector.
    pub fn into_positions(self) -> Vec<u32> {
        self.0
    }
}

impl From<Vec<u32>> for SelVec {
    fn from(positions: Vec<u32>) -> Self {
        SelVec::new(positions)
    }
}

/// An operator output that may still be unmaterialized.
///
/// `Filtered` is a base chunk plus a selection vector: logically it *is*
/// the gathered chunk (same rows, same order, same logical byte size), but
/// no column data has been copied yet. Consumers that understand selection
/// vectors (selection refinement, join probe, aggregation, projection)
/// read through it; everything else calls [`LazyChunk::chunk`] /
/// [`LazyChunk::materialize`] at a pipeline breaker.
#[derive(Debug, Clone)]
pub enum LazyChunk {
    /// A fully materialized chunk.
    Materialized(Chunk),
    /// A base chunk viewed through a selection vector.
    Filtered {
        /// The unfiltered base columns (shared, never copied).
        base: Arc<Chunk>,
        /// Qualifying positions into `base`.
        sel: SelVec,
    },
}

impl LazyChunk {
    /// Logical number of rows (selected rows for `Filtered`).
    pub fn num_rows(&self) -> usize {
        match self {
            LazyChunk::Materialized(c) => c.num_rows(),
            LazyChunk::Filtered { sel, .. } => sel.len(),
        }
    }

    /// Logical payload bytes: exactly what the materialized equivalent
    /// would report, so the simulator's transfer/footprint accounting is
    /// unchanged by late materialization.
    pub fn byte_size(&self) -> u64 {
        match self {
            LazyChunk::Materialized(c) => c.byte_size(),
            LazyChunk::Filtered { base, sel } => {
                let row_width: u64 = base
                    .fields()
                    .iter()
                    .map(|f| f.data_type.byte_width() as u64)
                    .sum();
                sel.len() as u64 * row_width
            }
        }
    }

    /// The base chunk and optional selection vector, for kernels that
    /// accept `(Chunk, Option<&SelVec>)`.
    pub fn parts(&self) -> (&Chunk, Option<&SelVec>) {
        match self {
            LazyChunk::Materialized(c) => (c, None),
            LazyChunk::Filtered { base, sel } => (base, Some(sel)),
        }
    }

    /// Materialize into an owned chunk (one gather for `Filtered`).
    pub fn materialize(self) -> Chunk {
        match self {
            LazyChunk::Materialized(c) => c,
            LazyChunk::Filtered { base, sel } => base.gather(sel.positions()),
        }
    }

    /// Materialized view without consuming (clones `Materialized`).
    pub fn chunk(&self) -> Chunk {
        match self {
            LazyChunk::Materialized(c) => c.clone(),
            LazyChunk::Filtered { base, sel } => base.gather(sel.positions()),
        }
    }
}

impl From<Chunk> for LazyChunk {
    fn from(c: Chunk) -> Self {
        LazyChunk::Materialized(c)
    }
}

/// A fully materialized intermediate result.
#[derive(Debug, Clone, PartialEq)]
pub struct Chunk {
    fields: Vec<Field>,
    columns: Vec<ColumnData>,
}

impl Chunk {
    /// Build a chunk; panics (debug) if lengths are inconsistent.
    pub fn new(fields: Vec<Field>, columns: Vec<ColumnData>) -> Self {
        debug_assert_eq!(fields.len(), columns.len());
        debug_assert!(
            columns.windows(2).all(|w| w[0].len() == w[1].len()),
            "all chunk columns must have equal length"
        );
        debug_assert!(fields
            .iter()
            .zip(&columns)
            .all(|(f, c)| f.data_type == c.data_type()));
        Chunk { fields, columns }
    }

    /// An empty, zero-column chunk.
    pub fn empty() -> Self {
        Chunk { fields: Vec::new(), columns: Vec::new() }
    }

    /// Materialize selected columns of a base table into a chunk.
    ///
    /// Column order follows `columns`; unknown names are an error.
    pub fn from_table(table: &Table, columns: &[String]) -> Result<Self, String> {
        let mut fields = Vec::with_capacity(columns.len());
        let mut data = Vec::with_capacity(columns.len());
        for name in columns {
            let idx = table
                .schema()
                .index_of(name)
                .ok_or_else(|| format!("no column {name} in table {}", table.name()))?;
            fields.push(table.schema().field(idx).clone());
            data.push(table.column_at(idx).clone());
        }
        Ok(Chunk { fields, columns: data })
    }

    /// Materialize selected columns of the row range `[lo, hi)` of a base
    /// table into a chunk. This is the windowed-scan entry point: string
    /// columns share the table's dictionary (codes are stable under
    /// append), so a range chunk is value-identical to the same rows of
    /// the full table.
    pub fn from_table_range(
        table: &Table,
        columns: &[String],
        lo: usize,
        hi: usize,
    ) -> Result<Self, String> {
        let mut fields = Vec::with_capacity(columns.len());
        let mut data = Vec::with_capacity(columns.len());
        for name in columns {
            let idx = table
                .schema()
                .index_of(name)
                .ok_or_else(|| format!("no column {name} in table {}", table.name()))?;
            fields.push(table.schema().field(idx).clone());
            data.push(table.column_slice(idx, lo, hi));
        }
        Ok(Chunk { fields, columns: data })
    }

    /// The fields, in column order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// The column data, in field order.
    pub fn columns(&self) -> &[ColumnData] {
        &self.columns
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.columns.first().map_or(0, ColumnData::len)
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Payload bytes over all columns — the footprint/transfer unit.
    pub fn byte_size(&self) -> u64 {
        self.columns.iter().map(ColumnData::byte_size).sum()
    }

    /// Index of the column named `name`.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Column by name.
    pub fn column(&self, name: &str) -> Option<&ColumnData> {
        self.index_of(name).map(|i| &self.columns[i])
    }

    /// Column by name, with a descriptive error.
    pub fn require_column(&self, name: &str) -> Result<&ColumnData, String> {
        self.column(name).ok_or_else(|| {
            format!(
                "no column {name} in chunk (have: {})",
                self.fields
                    .iter()
                    .map(|f| f.name.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })
    }

    /// Type of the column named `name`.
    pub fn column_type(&self, name: &str) -> Option<DataType> {
        self.index_of(name).map(|i| self.fields[i].data_type)
    }

    /// Gather the given row positions (`u32`, selection-vector form) from
    /// every column.
    pub fn gather(&self, positions: &[u32]) -> Chunk {
        Chunk {
            fields: self.fields.clone(),
            columns: self.columns.iter().map(|c| c.gather(positions)).collect(),
        }
    }

    /// Concatenate the columns of two chunks side by side (used by joins).
    ///
    /// Duplicate names on the right side are suffixed with `_r`.
    pub fn zip(mut self, right: Chunk) -> Chunk {
        for (mut f, c) in right.fields.into_iter().zip(right.columns) {
            if self.index_of(&f.name).is_some() {
                f.name.push_str("_r");
            }
            self.fields.push(f);
            self.columns.push(c);
        }
        self
    }

    /// Concatenate chunks with identical schemas row-wise.
    ///
    /// Dictionary columns are rebuilt (each part has its own dictionary).
    /// Returns an error on empty input or schema mismatch.
    pub fn concat(parts: &[Chunk]) -> Result<Chunk, String> {
        let first = parts.first().ok_or("concat of zero chunks")?;
        for p in &parts[1..] {
            if p.fields() != first.fields() {
                return Err(format!(
                    "schema mismatch in concat: {:?} vs {:?}",
                    p.fields(),
                    first.fields()
                ));
            }
        }
        let mut columns = Vec::with_capacity(first.num_columns());
        for c in 0..first.num_columns() {
            let col = match &first.columns[c] {
                ColumnData::Int32(_) => ColumnData::Int32(
                    parts
                        .iter()
                        .flat_map(|p| match &p.columns[c] {
                            ColumnData::Int32(v) => v.iter().copied(),
                            _ => unreachable!("schemas checked"),
                        })
                        .collect(),
                ),
                ColumnData::Int64(_) => ColumnData::Int64(
                    parts
                        .iter()
                        .flat_map(|p| match &p.columns[c] {
                            ColumnData::Int64(v) => v.iter().copied(),
                            _ => unreachable!("schemas checked"),
                        })
                        .collect(),
                ),
                ColumnData::Float64(_) => ColumnData::Float64(
                    parts
                        .iter()
                        .flat_map(|p| match &p.columns[c] {
                            ColumnData::Float64(v) => v.iter().copied(),
                            _ => unreachable!("schemas checked"),
                        })
                        .collect(),
                ),
                ColumnData::Str(_) => {
                    let strings = parts.iter().flat_map(|p| match &p.columns[c] {
                        ColumnData::Str(d) => {
                            (0..d.len()).map(move |i| d.get(i).to_owned())
                        }
                        _ => unreachable!("schemas checked"),
                    });
                    ColumnData::Str(robustq_storage::DictColumn::from_strings(strings))
                }
            };
            columns.push(col);
        }
        Ok(Chunk { fields: first.fields.clone(), columns })
    }

    /// One row as values (for result checks and display).
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.get(i)).collect()
    }

    /// All rows as value vectors, sorted lexicographically by display form.
    ///
    /// Useful for order-insensitive result comparison in tests.
    pub fn sorted_rows(&self) -> Vec<Vec<Value>> {
        let mut rows: Vec<Vec<Value>> = (0..self.num_rows()).map(|i| self.row(i)).collect();
        rows.sort_by_key(|r| r.iter().map(Value::to_string).collect::<Vec<_>>());
        rows
    }

    /// A cheap order-insensitive checksum of the chunk's contents.
    pub fn checksum(&self) -> u64 {
        let mut acc = 0u64;
        for i in 0..self.num_rows() {
            let mut row_hash = 0xcbf2_9ce4_8422_2325u64;
            for c in &self.columns {
                row_hash = row_hash
                    .rotate_left(13)
                    .wrapping_mul(0x1000_0000_01b3)
                    .wrapping_add(c.key_at(i));
            }
            acc = acc.wrapping_add(row_hash);
        }
        acc ^ (self.num_rows() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robustq_storage::{DictColumn, Schema};

    fn chunk() -> Chunk {
        Chunk::new(
            vec![
                Field::new("k", DataType::Int32),
                Field::new("s", DataType::Str),
            ],
            vec![
                ColumnData::Int32(vec![1, 2, 3]),
                ColumnData::Str(DictColumn::from_strings(["a", "b", "c"])),
            ],
        )
    }

    #[test]
    fn basic_accessors() {
        let c = chunk();
        assert_eq!(c.num_rows(), 3);
        assert_eq!(c.num_columns(), 2);
        assert_eq!(c.byte_size(), 12 + 12);
        assert_eq!(c.column_type("k"), Some(DataType::Int32));
        assert!(c.column("missing").is_none());
        assert!(c.require_column("missing").is_err());
    }

    #[test]
    fn from_table_projects_columns() {
        let t = Table::new(
            "t",
            Schema::new(vec![
                Field::new("a", DataType::Int32),
                Field::new("b", DataType::Float64),
            ]),
            vec![
                ColumnData::Int32(vec![1, 2]),
                ColumnData::Float64(vec![0.5, 1.5]),
            ],
        )
        .unwrap();
        let c = Chunk::from_table(&t, &["b".into()]).unwrap();
        assert_eq!(c.num_columns(), 1);
        assert_eq!(c.column("b").unwrap(), t.column("b").unwrap());
        assert!(Chunk::from_table(&t, &["zz".into()]).is_err());
    }

    #[test]
    fn gather_rows() {
        let c = chunk().gather(&[2, 0]);
        assert_eq!(c.row(0), vec![Value::Int32(3), Value::from("c")]);
        assert_eq!(c.row(1), vec![Value::Int32(1), Value::from("a")]);
    }

    #[test]
    fn zip_renames_duplicates() {
        let a = chunk();
        let b = chunk();
        let z = a.zip(b);
        assert_eq!(z.num_columns(), 4);
        assert!(z.column("k").is_some());
        assert!(z.column("k_r").is_some());
        assert!(z.column("s_r").is_some());
    }

    #[test]
    fn checksum_is_order_insensitive() {
        let a = chunk();
        let b = chunk().gather(&[2, 1, 0]);
        assert_eq!(a.checksum(), b.checksum());
        let c = chunk().gather(&[0, 1]);
        assert_ne!(a.checksum(), c.checksum());
    }

    #[test]
    fn sorted_rows_for_comparison() {
        let a = chunk().sorted_rows();
        let b = chunk().gather(&[1, 2, 0]).sorted_rows();
        assert_eq!(a, b);
    }

    #[test]
    fn concat_rebuilds_dictionaries() {
        let a = chunk();
        let b = chunk().gather(&[2, 0]);
        let c = Chunk::concat(&[a.clone(), b]).unwrap();
        assert_eq!(c.num_rows(), 5);
        assert_eq!(c.row(3), vec![Value::Int32(3), Value::from("c")]);
        assert_eq!(c.row(4), vec![Value::Int32(1), Value::from("a")]);
        // Schema mismatch and empty input are errors.
        let other = Chunk::new(
            vec![Field::new("x", DataType::Int32)],
            vec![ColumnData::Int32(vec![1])],
        );
        assert!(Chunk::concat(&[a, other]).is_err());
        assert!(Chunk::concat(&[]).is_err());
    }

    #[test]
    fn empty_chunk() {
        let e = Chunk::empty();
        assert_eq!(e.num_rows(), 0);
        assert_eq!(e.byte_size(), 0);
        assert_eq!(e.checksum(), 0);
    }
}
