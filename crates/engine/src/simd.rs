//! Branch-free, block-oriented predicate evaluation ("SIMD" path).
//!
//! [`crate::predicate::CompiledPred`] tests one row at a time through an
//! enum dispatch returning `Result<bool, String>` — correct, but the hot
//! selection loops pay a branch (and an error check) per row. This module
//! compiles the same predicate shapes into a [`BlockPred`] that evaluates
//! **64 rows per step** into a `u64` match mask with tight per-type inner
//! loops the compiler can autovectorize (no `Result`, no enum dispatch,
//! no data-dependent branch inside the lane loop). Qualifying positions
//! are then emitted with `trailing_zeros` bit iteration.
//!
//! Bit-identity with the scalar reference is load-bearing:
//!
//! * **Selected rows** are exactly those of
//!   [`crate::predicate::Predicate::evaluate_selvec`]. Integer lanes
//!   compare through `v as f64` like [`ColumnData::get_f64`]; dictionary
//!   lanes go through the same per-code truth tables.
//! * **Errors**: every data-dependent failure a supported shape can raise
//!   is the NaN comparison error, and all of them carry the identical
//!   message (`"NaN in comparison"`). Each leaf therefore reports a
//!   per-lane *error mask* next to its match mask, and the boolean
//!   combinators thread an *active-lane* mask that mirrors the scalar
//!   short-circuit: a NaN in an `AND` conjunct at a row an earlier
//!   conjunct already rejected does **not** error — exactly like
//!   `CompiledPred::test`. An error anywhere aborts the whole kernel, so
//!   block-granular detection is observationally identical to row-granular
//!   detection.
//! * **Unsupported shapes** (`ColCmp`, type mismatches, unknown columns)
//!   make [`BlockPred::try_compile`] return `None`; callers fall back to
//!   the scalar `CompiledPred`, which also reproduces the static error
//!   messages in their original order.

use crate::batch::Chunk;
use crate::predicate::{CmpOp, Predicate};
use robustq_storage::{ColumnData, Value};
use std::ops::Range;

/// Mask with the low `len` (≤ 64) bits set.
#[inline]
fn low_mask(len: usize) -> u64 {
    debug_assert!(len <= 64);
    if len == 64 {
        u64::MAX
    } else {
        (1u64 << len) - 1
    }
}

const NAN_ERR: &str = "NaN in comparison";

/// Pack `f` over a ≤ 64-lane slice into a bit mask. The closure is
/// branch-free for every caller, so the loop reduces to compare + shift —
/// the autovectorizable core of the module.
#[inline]
fn pack<T: Copy>(s: &[T], f: impl Fn(T) -> bool) -> u64 {
    let mut m = 0u64;
    for (l, &x) in s.iter().enumerate() {
        m |= ((f(x)) as u64) << l;
    }
    m
}

/// Gathered form of [`pack`]: lanes are `v[pos[l]]`.
#[inline]
fn pack_at<T: Copy>(v: &[T], pos: &[u32], f: impl Fn(T) -> bool) -> u64 {
    let mut m = 0u64;
    for (l, &p) in pos.iter().enumerate() {
        m |= ((f(v[p as usize])) as u64) << l;
    }
    m
}

/// Dispatch a comparison operator into six specialized packed loops.
#[inline]
fn cmp_pack<T: Copy>(s: &[T], get: impl Fn(T) -> f64, op: CmpOp, rhs: f64) -> u64 {
    match op {
        CmpOp::Eq => pack(s, |x| get(x) == rhs),
        CmpOp::Ne => pack(s, |x| get(x) != rhs),
        CmpOp::Lt => pack(s, |x| get(x) < rhs),
        CmpOp::Le => pack(s, |x| get(x) <= rhs),
        CmpOp::Gt => pack(s, |x| get(x) > rhs),
        CmpOp::Ge => pack(s, |x| get(x) >= rhs),
    }
}

#[inline]
fn cmp_pack_at<T: Copy>(
    v: &[T],
    pos: &[u32],
    get: impl Fn(T) -> f64,
    op: CmpOp,
    rhs: f64,
) -> u64 {
    match op {
        CmpOp::Eq => pack_at(v, pos, |x| get(x) == rhs),
        CmpOp::Ne => pack_at(v, pos, |x| get(x) != rhs),
        CmpOp::Lt => pack_at(v, pos, |x| get(x) < rhs),
        CmpOp::Le => pack_at(v, pos, |x| get(x) <= rhs),
        CmpOp::Gt => pack_at(v, pos, |x| get(x) > rhs),
        CmpOp::Ge => pack_at(v, pos, |x| get(x) >= rhs),
    }
}

/// The numeric lanes a leaf reads: a typed borrow of the whole column.
#[derive(Clone, Copy)]
enum NumLanes<'a> {
    I32(&'a [i32]),
    I64(&'a [i64]),
    F64(&'a [f64]),
}

impl<'a> NumLanes<'a> {
    fn from_column(col: &'a ColumnData) -> Option<NumLanes<'a>> {
        match col {
            ColumnData::Int32(v) => Some(NumLanes::I32(v)),
            ColumnData::Int64(v) => Some(NumLanes::I64(v)),
            ColumnData::Float64(v) => Some(NumLanes::F64(v)),
            ColumnData::Str(_) => None,
        }
    }

    /// `(match, err)` masks for `lanes <op> rhs` over `rows`.
    fn cmp(&self, rows: Range<usize>, op: CmpOp, rhs: f64) -> (u64, u64) {
        let rhs_err = if rhs.is_nan() { low_mask(rows.len()) } else { 0 };
        match self {
            NumLanes::I32(v) => (cmp_pack(&v[rows], |x| x as f64, op, rhs), rhs_err),
            NumLanes::I64(v) => (cmp_pack(&v[rows], |x| x as f64, op, rhs), rhs_err),
            NumLanes::F64(v) => {
                let s = &v[rows];
                (cmp_pack(s, |x| x, op, rhs), rhs_err | pack(s, |x: f64| x.is_nan()))
            }
        }
    }

    /// `(match, err)` masks for `lo <= lanes <= hi` over `rows`.
    fn range(&self, rows: Range<usize>, lo: f64, hi: f64) -> (u64, u64) {
        let bound_err =
            if lo.is_nan() || hi.is_nan() { low_mask(rows.len()) } else { 0 };
        match self {
            NumLanes::I32(v) => (
                pack(&v[rows], |x| {
                    let x = x as f64;
                    (x >= lo) & (x <= hi)
                }),
                bound_err,
            ),
            NumLanes::I64(v) => (
                pack(&v[rows], |x| {
                    let x = x as f64;
                    (x >= lo) & (x <= hi)
                }),
                bound_err,
            ),
            NumLanes::F64(v) => {
                let s = &v[rows];
                (
                    pack(s, |x| (x >= lo) & (x <= hi)),
                    bound_err | pack(s, |x: f64| x.is_nan()),
                )
            }
        }
    }

    /// `(match, err)` masks for `lanes IN (values…)` over `rows`.
    fn in_list(&self, rows: Range<usize>, values: &[f64]) -> (u64, u64) {
        let value_err = if values.iter().any(|v| v.is_nan()) {
            low_mask(rows.len())
        } else {
            0
        };
        let mut m = 0u64;
        match self {
            NumLanes::I32(v) => {
                let s = &v[rows];
                for &rhs in values {
                    m |= pack(s, |x| x as f64 == rhs);
                }
                (m, value_err)
            }
            NumLanes::I64(v) => {
                let s = &v[rows];
                for &rhs in values {
                    m |= pack(s, |x| x as f64 == rhs);
                }
                (m, value_err)
            }
            NumLanes::F64(v) => {
                let s = &v[rows];
                for &rhs in values {
                    m |= pack(s, |x| x == rhs);
                }
                (m, value_err | pack(s, |x: f64| x.is_nan()))
            }
        }
    }

    /// Gathered variants of the three mask kernels: lanes are the column
    /// values at `pos` (≤ 64 positions) instead of a dense range — the
    /// selection-vector refinement form.
    fn cmp_at(&self, pos: &[u32], op: CmpOp, rhs: f64) -> (u64, u64) {
        let rhs_err = if rhs.is_nan() { low_mask(pos.len()) } else { 0 };
        match self {
            NumLanes::I32(v) => (cmp_pack_at(v, pos, |x| x as f64, op, rhs), rhs_err),
            NumLanes::I64(v) => (cmp_pack_at(v, pos, |x| x as f64, op, rhs), rhs_err),
            NumLanes::F64(v) => (
                cmp_pack_at(v, pos, |x| x, op, rhs),
                rhs_err | pack_at(v, pos, |x: f64| x.is_nan()),
            ),
        }
    }

    fn range_at(&self, pos: &[u32], lo: f64, hi: f64) -> (u64, u64) {
        let bound_err =
            if lo.is_nan() || hi.is_nan() { low_mask(pos.len()) } else { 0 };
        match self {
            NumLanes::I32(v) => (
                pack_at(v, pos, |x| {
                    let x = x as f64;
                    (x >= lo) & (x <= hi)
                }),
                bound_err,
            ),
            NumLanes::I64(v) => (
                pack_at(v, pos, |x| {
                    let x = x as f64;
                    (x >= lo) & (x <= hi)
                }),
                bound_err,
            ),
            NumLanes::F64(v) => (
                pack_at(v, pos, |x| (x >= lo) & (x <= hi)),
                bound_err | pack_at(v, pos, |x: f64| x.is_nan()),
            ),
        }
    }

    fn in_list_at(&self, pos: &[u32], values: &[f64]) -> (u64, u64) {
        let value_err = if values.iter().any(|v| v.is_nan()) {
            low_mask(pos.len())
        } else {
            0
        };
        let mut m = 0u64;
        match self {
            NumLanes::I32(v) => {
                for &rhs in values {
                    m |= pack_at(v, pos, |x| x as f64 == rhs);
                }
                (m, value_err)
            }
            NumLanes::I64(v) => {
                for &rhs in values {
                    m |= pack_at(v, pos, |x| x as f64 == rhs);
                }
                (m, value_err)
            }
            NumLanes::F64(v) => {
                for &rhs in values {
                    m |= pack_at(v, pos, |x| x == rhs);
                }
                (m, value_err | pack_at(v, pos, |x: f64| x.is_nan()))
            }
        }
    }
}

/// One compiled predicate node.
enum Node<'a> {
    /// Constant outcome (`TRUE`).
    Const(bool),
    /// `column <op> literal` over numeric lanes.
    Cmp { lanes: NumLanes<'a>, op: CmpOp, rhs: f64 },
    /// `lo <= column <= hi` over numeric lanes.
    Range { lanes: NumLanes<'a>, lo: f64, hi: f64 },
    /// `column IN (…)` over numeric lanes.
    In { lanes: NumLanes<'a>, values: Vec<f64> },
    /// Truth table over dictionary codes (string `=`, `BETWEEN`, `IN`,
    /// prefix/suffix matching all compile to this).
    Codes { codes: &'a [u32], table: Vec<bool> },
    /// Conjunction with lane-mask short-circuit.
    All(Vec<Node<'a>>),
    /// Disjunction with lane-mask short-circuit.
    Any(Vec<Node<'a>>),
    /// Negation.
    Not(Box<Node<'a>>),
}

/// Leaf epilogue: raise the NaN error if any active lane errored.
#[inline]
fn finish((m, e): (u64, u64), active: u64) -> Result<u64, String> {
    if e & active != 0 {
        Err(NAN_ERR.to_string())
    } else {
        Ok(m)
    }
}

impl Node<'_> {
    /// Match mask over the dense block `rows` (≤ 64 rows). Lanes outside
    /// `active` carry arbitrary bits; errors are only raised for active
    /// lanes, mirroring scalar short-circuit order.
    fn eval(&self, rows: Range<usize>, active: u64) -> Result<u64, String> {
        match self {
            Node::Const(b) => Ok(if *b { u64::MAX } else { 0 }),
            Node::Cmp { lanes, op, rhs } => finish(lanes.cmp(rows, *op, *rhs), active),
            Node::Range { lanes, lo, hi } => {
                finish(lanes.range(rows, *lo, *hi), active)
            }
            Node::In { lanes, values } => finish(lanes.in_list(rows, values), active),
            Node::Codes { codes, table } => {
                Ok(pack(&codes[rows], |c| table[c as usize]))
            }
            Node::All(ps) => {
                let mut act = active;
                for p in ps {
                    act &= p.eval(rows.clone(), act)?;
                    if act == 0 {
                        break;
                    }
                }
                Ok(act)
            }
            Node::Any(ps) => {
                let mut undecided = active;
                let mut m = 0u64;
                for p in ps {
                    let pm = p.eval(rows.clone(), undecided)?;
                    m |= pm & undecided;
                    undecided &= !pm;
                    if undecided == 0 {
                        break;
                    }
                }
                Ok(m)
            }
            Node::Not(p) => Ok(!p.eval(rows, active)?),
        }
    }

    /// Match mask over the gathered block `pos` (≤ 64 positions).
    fn eval_at(&self, pos: &[u32], active: u64) -> Result<u64, String> {
        match self {
            Node::Const(b) => Ok(if *b { u64::MAX } else { 0 }),
            Node::Cmp { lanes, op, rhs } => {
                finish(lanes.cmp_at(pos, *op, *rhs), active)
            }
            Node::Range { lanes, lo, hi } => {
                finish(lanes.range_at(pos, *lo, *hi), active)
            }
            Node::In { lanes, values } => {
                finish(lanes.in_list_at(pos, values), active)
            }
            Node::Codes { codes, table } => {
                Ok(pack_at(codes, pos, |c| table[c as usize]))
            }
            Node::All(ps) => {
                let mut act = active;
                for p in ps {
                    act &= p.eval_at(pos, act)?;
                    if act == 0 {
                        break;
                    }
                }
                Ok(act)
            }
            Node::Any(ps) => {
                let mut undecided = active;
                let mut m = 0u64;
                for p in ps {
                    let pm = p.eval_at(pos, undecided)?;
                    m |= pm & undecided;
                    undecided &= !pm;
                    if undecided == 0 {
                        break;
                    }
                }
                Ok(m)
            }
            Node::Not(p) => Ok(!p.eval_at(pos, active)?),
        }
    }
}

/// A predicate compiled to block form against one chunk.
pub struct BlockPred<'a> {
    node: Node<'a>,
}

impl<'a> BlockPred<'a> {
    /// Compile `pred` against `chunk`, or `None` when any sub-shape is
    /// outside the block-evaluable subset (column-to-column comparison,
    /// type mismatches, unknown columns). Callers fall back to the scalar
    /// [`crate::predicate::CompiledPred`] on `None`, which reproduces the
    /// static error messages exactly.
    pub fn try_compile(pred: &'a Predicate, chunk: &'a Chunk) -> Option<BlockPred<'a>> {
        Some(BlockPred { node: compile_node(pred, chunk)? })
    }

    /// Append the qualifying positions of the dense `rows` range to `out`,
    /// 64 rows per mask step.
    pub fn append_range(
        &self,
        rows: Range<usize>,
        out: &mut Vec<u32>,
    ) -> Result<(), String> {
        let mut start = rows.start;
        while start < rows.end {
            let len = (rows.end - start).min(64);
            let full = low_mask(len);
            let m = self.node.eval(start..start + len, full)? & full;
            emit(m, start as u32, out);
            start += len;
        }
        Ok(())
    }

    /// Retain only matching entries of `positions`, in place (the
    /// selection-vector refinement kernel): gathered 64-lane blocks, same
    /// survivors and errors as [`crate::predicate::CompiledPred::retain`].
    pub fn refine(&self, positions: &mut Vec<u32>) -> Result<(), String> {
        let mut w = 0usize;
        let mut r = 0usize;
        let mut block = [0u32; 64];
        while r < positions.len() {
            let len = (positions.len() - r).min(64);
            block[..len].copy_from_slice(&positions[r..r + len]);
            let full = low_mask(len);
            let mut m = self.node.eval_at(&block[..len], full)? & full;
            while m != 0 {
                let lane = m.trailing_zeros() as usize;
                positions[w] = block[lane];
                w += 1;
                m &= m - 1;
            }
            r += len;
        }
        positions.truncate(w);
        Ok(())
    }

    /// Append the entries of `positions` that match to `out` (the sparse
    /// morsel form of [`BlockPred::refine`]).
    pub fn append_filtered(
        &self,
        positions: &[u32],
        out: &mut Vec<u32>,
    ) -> Result<(), String> {
        for block in positions.chunks(64) {
            let full = low_mask(block.len());
            let mut m = self.node.eval_at(block, full)? & full;
            while m != 0 {
                let lane = m.trailing_zeros() as usize;
                out.push(block[lane]);
                m &= m - 1;
            }
        }
        Ok(())
    }
}

/// Pop set bits of `m` into positions `base + lane`.
#[inline]
fn emit(mut m: u64, base: u32, out: &mut Vec<u32>) {
    while m != 0 {
        out.push(base + m.trailing_zeros());
        m &= m - 1;
    }
}

/// Per-code truth table for a string column under `test`.
fn code_table(d: &robustq_storage::DictColumn, test: impl Fn(&str) -> bool) -> Vec<bool> {
    d.dict().iter().map(|s| test(s)).collect()
}

fn compile_node<'a>(pred: &'a Predicate, chunk: &'a Chunk) -> Option<Node<'a>> {
    match pred {
        Predicate::True => Some(Node::Const(true)),
        Predicate::Cmp { column, op, value } => {
            let col = chunk.require_column(column).ok()?;
            match (col, value) {
                (ColumnData::Str(d), Value::Str(s)) => Some(Node::Codes {
                    codes: d.codes(),
                    table: code_table(d, |e| op.matches(e.cmp(s.as_str()))),
                }),
                (ColumnData::Str(_), _) => None,
                (col, v) => Some(Node::Cmp {
                    lanes: NumLanes::from_column(col)?,
                    op: *op,
                    rhs: v.as_f64()?,
                }),
            }
        }
        Predicate::Between { column, lo, hi } => {
            let col = chunk.require_column(column).ok()?;
            match col {
                ColumnData::Str(d) => {
                    let (lo, hi) = match (lo, hi) {
                        (Value::Str(a), Value::Str(b)) => (a.as_str(), b.as_str()),
                        _ => return None,
                    };
                    Some(Node::Codes {
                        codes: d.codes(),
                        table: code_table(d, |e| e >= lo && e <= hi),
                    })
                }
                _ => Some(Node::Range {
                    lanes: NumLanes::from_column(col)?,
                    lo: lo.as_f64()?,
                    hi: hi.as_f64()?,
                }),
            }
        }
        Predicate::InList { column, values } => {
            let col = chunk.require_column(column).ok()?;
            match col {
                ColumnData::Str(d) => {
                    let mut table = vec![false; d.dict().len()];
                    for v in values {
                        let s = match v {
                            Value::Str(s) => s.as_str(),
                            _ => return None,
                        };
                        for (t, e) in table.iter_mut().zip(d.dict().iter()) {
                            *t |= e.as_str() == s;
                        }
                    }
                    Some(Node::Codes { codes: d.codes(), table })
                }
                _ => Some(Node::In {
                    lanes: NumLanes::from_column(col)?,
                    values: values.iter().map(|v| v.as_f64()).collect::<Option<_>>()?,
                }),
            }
        }
        Predicate::StrPrefix { column, prefix } => {
            match chunk.require_column(column).ok()? {
                ColumnData::Str(d) => Some(Node::Codes {
                    codes: d.codes(),
                    table: code_table(d, |s| s.starts_with(prefix.as_str())),
                }),
                _ => None,
            }
        }
        Predicate::StrSuffix { column, suffix } => {
            match chunk.require_column(column).ok()? {
                ColumnData::Str(d) => Some(Node::Codes {
                    codes: d.codes(),
                    table: code_table(d, |s| s.ends_with(suffix.as_str())),
                }),
                _ => None,
            }
        }
        Predicate::ColCmp { .. } => None,
        Predicate::And(ps) => Some(Node::All(
            ps.iter().map(|p| compile_node(p, chunk)).collect::<Option<_>>()?,
        )),
        Predicate::Or(ps) => Some(Node::Any(
            ps.iter().map(|p| compile_node(p, chunk)).collect::<Option<_>>()?,
        )),
        Predicate::Not(p) => Some(Node::Not(Box::new(compile_node(p, chunk)?))),
    }
}

/// The production compiled predicate: block-evaluated when the shape
/// supports it, scalar [`CompiledPred`] otherwise. Compile once per
/// (predicate, chunk) and share across morsel workers — both forms are
/// `Sync` borrows of the chunk.
pub(crate) enum ProdPred<'a> {
    /// Block-evaluable shape: 64-row masks.
    Block(BlockPred<'a>),
    /// Fallback: per-row scalar evaluation.
    Scalar(crate::predicate::CompiledPred<'a>),
}

impl<'a> ProdPred<'a> {
    /// Compile `pred` against `chunk`. Static errors (unknown columns,
    /// type mismatches) surface with the scalar path's exact messages.
    pub(crate) fn compile(
        pred: &'a Predicate,
        chunk: &'a Chunk,
    ) -> Result<ProdPred<'a>, String> {
        match BlockPred::try_compile(pred, chunk) {
            Some(bp) => Ok(ProdPred::Block(bp)),
            None => Ok(ProdPred::Scalar(
                crate::predicate::CompiledPred::compile(pred, chunk)?,
            )),
        }
    }

    /// Append the qualifying positions of the dense `rows` range.
    pub(crate) fn append_range(
        &self,
        rows: Range<usize>,
        out: &mut Vec<u32>,
    ) -> Result<(), String> {
        match self {
            ProdPred::Block(b) => b.append_range(rows, out),
            ProdPred::Scalar(s) => s.append_range(rows, out),
        }
    }
}

/// Emit the qualifying positions of `rows` through the block evaluator
/// when the predicate compiles, falling back to the scalar compiled form
/// otherwise. This is the production selection path; the scalar
/// [`crate::predicate::Predicate::evaluate_positions_range`] remains the
/// reference baseline.
pub fn eval_positions_range(
    pred: &Predicate,
    chunk: &Chunk,
    rows: Range<usize>,
    out: &mut Vec<u32>,
) -> Result<(), String> {
    ProdPred::compile(pred, chunk)?.append_range(rows, out)
}

/// Production selection-vector refinement: the block-evaluated equivalent
/// of [`crate::predicate::Predicate::evaluate_selvec`]`(chunk, Some(sel))`
/// — surviving positions in original order, gathered 64-lane blocks.
pub fn refine_selvec(
    pred: &Predicate,
    chunk: &Chunk,
    sel: &crate::batch::SelVec,
) -> Result<crate::batch::SelVec, String> {
    let mut out = Vec::with_capacity(sel.len());
    match ProdPred::compile(pred, chunk)? {
        ProdPred::Block(b) => b.append_filtered(sel.positions(), &mut out)?,
        ProdPred::Scalar(s) => s.append_filtered(sel.positions(), &mut out)?,
    }
    Ok(crate::batch::SelVec::new(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::SelVec;
    use crate::predicate::CompiledPred;
    use robustq_storage::{DataType, DictColumn, Field};

    fn chunk(rows: usize) -> Chunk {
        let ints: Vec<i32> = (0..rows).map(|i| (i as i32 * 7) % 23 - 11).collect();
        let longs: Vec<i64> =
            (0..rows).map(|i| (i as i64 * 31) % 1000 - 500).collect();
        let floats: Vec<f64> = (0..rows).map(|i| (i as f64) * 0.37 - 50.0).collect();
        let strs: Vec<String> =
            (0..rows).map(|i| format!("k{}", (i * 13) % 17)).collect();
        Chunk::new(
            vec![
                Field::new("a", DataType::Int32),
                Field::new("b", DataType::Int64),
                Field::new("f", DataType::Float64),
                Field::new("s", DataType::Str),
            ],
            vec![
                ColumnData::Int32(ints),
                ColumnData::Int64(longs),
                ColumnData::Float64(floats),
                ColumnData::Str(DictColumn::from_strings(strs)),
            ],
        )
    }

    fn preds() -> Vec<Predicate> {
        vec![
            Predicate::True,
            Predicate::cmp("a", CmpOp::Lt, 3),
            Predicate::cmp("a", CmpOp::Ne, 0),
            Predicate::cmp("b", CmpOp::Ge, -100),
            Predicate::cmp("f", CmpOp::Gt, -10.0),
            Predicate::between("a", -5, 5),
            Predicate::between("f", -20.0, 20.0),
            Predicate::between("s", "k1", "k4"),
            Predicate::in_list("a", [1, 2, 3]),
            Predicate::in_list("s", ["k3", "k11"]),
            Predicate::eq("s", "k5"),
            Predicate::StrPrefix { column: "s".into(), prefix: "k1".into() },
            Predicate::StrSuffix { column: "s".into(), suffix: "2".into() },
            Predicate::and([
                Predicate::between("a", -8, 8),
                Predicate::cmp("f", CmpOp::Le, 40.0),
            ]),
            Predicate::or([
                Predicate::eq("s", "k0"),
                Predicate::cmp("b", CmpOp::Lt, -400),
            ]),
            Predicate::Not(Box::new(Predicate::between("a", -3, 3))),
            Predicate::and([
                Predicate::or([
                    Predicate::cmp("a", CmpOp::Gt, 0),
                    Predicate::cmp("b", CmpOp::Gt, 0),
                ]),
                Predicate::Not(Box::new(Predicate::eq("s", "k7"))),
            ]),
        ]
    }

    #[test]
    fn block_matches_scalar_over_dense_ranges() {
        // Sizes straddle block boundaries (63/64/65) and a multi-block run.
        for rows in [0, 1, 63, 64, 65, 130, 1000] {
            let c = chunk(rows);
            for p in preds() {
                let bp = BlockPred::try_compile(&p, &c)
                    .unwrap_or_else(|| panic!("{p} should compile"));
                let mut got = Vec::new();
                bp.append_range(0..rows, &mut got).unwrap();
                let want = p.evaluate_selvec(&c, None).unwrap();
                assert_eq!(got, want.positions(), "{p} over {rows} rows");
                // Sub-ranges agree too (the morsel form).
                if rows >= 65 {
                    let mut sub = Vec::new();
                    bp.append_range(7..rows - 3, &mut sub).unwrap();
                    let expect: Vec<u32> = want
                        .positions()
                        .iter()
                        .copied()
                        .filter(|&x| (7..rows as u32 - 3).contains(&x))
                        .collect();
                    assert_eq!(sub, expect, "{p} sub-range over {rows}");
                }
            }
        }
    }

    #[test]
    fn refine_matches_scalar_retain() {
        let c = chunk(500);
        // A stride-3 starting selection.
        let base: Vec<u32> = (0..500u32).filter(|x| x % 3 == 0).collect();
        for p in preds() {
            let bp = BlockPred::try_compile(&p, &c).unwrap();
            let mut got = base.clone();
            bp.refine(&mut got).unwrap();
            let mut want = base.clone();
            CompiledPred::compile(&p, &c).unwrap().retain(&mut want).unwrap();
            assert_eq!(got, want, "{p}");

            let mut appended = Vec::new();
            bp.append_filtered(&base, &mut appended).unwrap();
            assert_eq!(appended, want, "{p} append_filtered");
        }
    }

    #[test]
    fn eval_positions_range_selects_block_path_and_falls_back() {
        let c = chunk(200);
        // Block-evaluable predicate.
        let p = Predicate::between("a", -5, 5);
        let mut got = Vec::new();
        eval_positions_range(&p, &c, 0..200, &mut got).unwrap();
        assert_eq!(SelVec::new(got), p.evaluate_selvec(&c, None).unwrap());
        // ColCmp is unsupported: must fall back, not fail.
        let p = Predicate::ColCmp {
            left: "a".into(),
            op: CmpOp::Lt,
            right: "b".into(),
        };
        assert!(BlockPred::try_compile(&p, &c).is_none());
        let mut got = Vec::new();
        eval_positions_range(&p, &c, 0..200, &mut got).unwrap();
        assert_eq!(SelVec::new(got), p.evaluate_selvec(&c, None).unwrap());
        // Static errors surface with the scalar message.
        let p = Predicate::eq("zz", 1);
        let mut out = Vec::new();
        let err = eval_positions_range(&p, &c, 0..200, &mut out).unwrap_err();
        assert_eq!(err, p.evaluate_selvec(&c, None).unwrap_err());
    }

    #[test]
    fn nan_errors_match_scalar_short_circuit() {
        let c = Chunk::new(
            vec![
                Field::new("x", DataType::Float64),
                Field::new("g", DataType::Int32),
            ],
            vec![
                ColumnData::Float64(vec![1.0, f64::NAN, 3.0, 4.0]),
                ColumnData::Int32(vec![0, 0, 1, 1]),
            ],
        );
        // Direct comparison over a NaN lane errors, like the scalar path.
        let p = Predicate::cmp("x", CmpOp::Gt, 2.0);
        let bp = BlockPred::try_compile(&p, &c).unwrap();
        let mut out = Vec::new();
        assert_eq!(
            bp.append_range(0..4, &mut out).unwrap_err(),
            p.evaluate_selvec(&c, None).unwrap_err()
        );
        // AND short-circuit: the NaN row is rejected by the first conjunct,
        // so neither path errors.
        let p = Predicate::and([
            Predicate::eq("g", 1),
            Predicate::cmp("x", CmpOp::Gt, 2.0),
        ]);
        let bp = BlockPred::try_compile(&p, &c).unwrap();
        let mut out = Vec::new();
        bp.append_range(0..4, &mut out).unwrap();
        assert_eq!(SelVec::new(out), p.evaluate_selvec(&c, None).unwrap());
        // Flipped order: the NaN row is live when the comparison runs, so
        // both paths error identically.
        let p = Predicate::and([
            Predicate::cmp("x", CmpOp::Gt, 2.0),
            Predicate::eq("g", 1),
        ]);
        let bp = BlockPred::try_compile(&p, &c).unwrap();
        let mut out = Vec::new();
        assert_eq!(
            bp.append_range(0..4, &mut out).unwrap_err(),
            p.evaluate_selvec(&c, None).unwrap_err()
        );
        // OR short-circuit: a true first branch hides the NaN in the
        // second branch, in both paths.
        let p = Predicate::or([
            Predicate::eq("g", 0),
            Predicate::cmp("x", CmpOp::Gt, 2.0),
        ]);
        let bp = BlockPred::try_compile(&p, &c).unwrap();
        let mut out = Vec::new();
        bp.append_range(0..4, &mut out).unwrap();
        assert_eq!(SelVec::new(out), p.evaluate_selvec(&c, None).unwrap());
        // NaN literal: every active lane errors.
        let p = Predicate::cmp("x", CmpOp::Eq, f64::NAN);
        let bp = BlockPred::try_compile(&p, &c).unwrap();
        let mut out = Vec::new();
        assert_eq!(
            bp.append_range(0..4, &mut out).unwrap_err(),
            p.evaluate_selvec(&c, None).unwrap_err()
        );
    }

    #[test]
    fn empty_inputs() {
        let c = chunk(0);
        let p = Predicate::between("a", -5, 5);
        let bp = BlockPred::try_compile(&p, &c).unwrap();
        let mut out = Vec::new();
        bp.append_range(0..0, &mut out).unwrap();
        assert!(out.is_empty());
        let mut none: Vec<u32> = Vec::new();
        bp.refine(&mut none).unwrap();
        assert!(none.is_empty());
    }
}
