//! Morsel-driven parallel execution of the hot CPU kernels.
//!
//! The paper's CPU baseline is a multi-core Xeon; a serial scalar loop is
//! not an honest stand-in. This module partitions a [`Chunk`] into
//! fixed-size row ranges ("morsels", after HyPer's morsel-driven
//! parallelism), fans kernel work across a scoped worker pool
//! (`std::thread::scope` — no external dependencies), and merges partial
//! results **deterministically in morsel order**, so the parallel kernels
//! are bit-identical to the serial reference in `ops/`:
//!
//! * **selection** — each worker evaluates the predicate over its morsel
//!   ([`Predicate::evaluate_range`]); qualifying positions are concatenated
//!   in morsel order and materialized by a single global `gather`, exactly
//!   like the serial path (so string columns share the same dictionary
//!   `Arc` either way).
//! * **hash-join probe** — the build table is built once and shared
//!   read-only; each worker probes its morsel of the probe side; match
//!   vectors are concatenated in morsel order (= probe row order).
//! * **aggregation** — each worker groups its morsel into a local hash
//!   table (phase 1); local groups are merged serially in morsel order,
//!   which reproduces the serial first-occurrence group numbering; the
//!   aggregate states are then accumulated serially in row order (phase 2),
//!   so even non-associative `f64` sums come out bit-for-bit equal to the
//!   serial fold. Phase 1 — the hashing — is the expensive part.
//!
//! Work is distributed by an atomic next-morsel counter (work stealing):
//! scheduling order is nondeterministic, result order never is. Workers
//! only compute *partial positions/groupings*; everything ordered happens
//! on the calling thread.
//!
//! Kernels whose output is a flat position (or position-pair) stream —
//! selection and the join probes — run through
//! [`ParallelCtx::run_morsels_arena`]: each worker appends every morsel it
//! claims into **one reused arena** instead of allocating a `Vec` per
//! morsel, and the merge pre-sizes the final buffer from the per-worker
//! counts and copies each morsel's span exactly once, in morsel order.
//! Per-morsel allocation churn was what pushed the 10M-row select/probe
//! kernels below 1× against their serial baselines.
//!
//! Parallelism changes only real wall-clock time. Simulated virtual time
//! (`robustq-sim`) is computed from the cost model and is unaffected, and
//! because results are bit-identical, checksums and figures are too.

use crate::batch::{Chunk, SelVec};
use crate::ops;
use crate::ops::hashtbl::JoinTable;
use crate::plan::{AggSpec, JoinKind};
use crate::predicate::Predicate;
use crate::simd::ProdPred;
use robustq_storage::ColumnData;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default rows per morsel.
///
/// Large enough that per-morsel overhead (range bookkeeping, one small
/// `Vec` per morsel) is negligible, small enough that a 1M-row chunk still
/// splits into ~16 units for load balancing.
pub const DEFAULT_MORSEL_ROWS: usize = 65_536;

/// Default minimum rows each worker must have before fan-out pays off.
///
/// Below `2 ×` this, kernels run serially: thread spawn/join plus
/// per-morsel bookkeeping cost more than the parallel speedup on
/// memory-bound kernels (the PR-1 benchmarks measured a net *slowdown*,
/// 0.97×, at 1M rows).
pub const DEFAULT_MIN_ROWS_PER_WORKER: usize = 524_288;

/// Kernel classes with distinct parallel break-even points.
///
/// Fan-out overhead is roughly constant, so how many rows amortize it
/// depends on per-row kernel cost: block-vectorized selection is the
/// cheapest per row and needs the most rows, hash-probe joins (a
/// dependent load per row) the fewest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelClass {
    /// Predicate evaluation / selection-vector refinement.
    Selection,
    /// Hash-join build + probe.
    Join,
    /// Group-by aggregation.
    Aggregation,
}

/// How kernel work is spread across CPU worker threads.
///
/// `workers == 1` (the [`Default`]) means strictly serial execution on the
/// calling thread — the `ops/` reference kernels run unchanged, which is
/// what tests use. Any result is bit-identical across all `workers`,
/// `morsel_rows` and `min_rows_per_worker` settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelCtx {
    /// Number of worker threads to fan kernel work across (≥ 1).
    pub workers: usize,
    /// Rows per morsel (≥ 1).
    pub morsel_rows: usize,
    /// Minimum rows of input per effective worker; inputs smaller than
    /// `2 × min_rows_per_worker` run serially. `0` disables the threshold
    /// (always fan out), which tests use to exercise parallel paths on
    /// tiny chunks.
    pub min_rows_per_worker: usize,
}

impl Default for ParallelCtx {
    fn default() -> Self {
        ParallelCtx::serial()
    }
}

impl ParallelCtx {
    /// Strictly serial execution (the reference path).
    pub fn serial() -> Self {
        ParallelCtx {
            workers: 1,
            morsel_rows: DEFAULT_MORSEL_ROWS,
            min_rows_per_worker: DEFAULT_MIN_ROWS_PER_WORKER,
        }
    }

    /// One worker per available hardware thread.
    pub fn auto() -> Self {
        let workers =
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        ParallelCtx::serial().with_workers(workers)
    }

    /// Set the worker count (clamped to ≥ 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Set the morsel size in rows (clamped to ≥ 1).
    pub fn with_morsel_rows(mut self, rows: usize) -> Self {
        self.morsel_rows = rows.max(1);
        self
    }

    /// Set the serial-fallback threshold (`0` disables it).
    pub fn with_min_rows_per_worker(mut self, rows: usize) -> Self {
        self.min_rows_per_worker = rows;
        self
    }

    /// True if kernels run on the calling thread only.
    pub fn is_serial(&self) -> bool {
        self.workers <= 1
    }

    /// True if an input of `rows` rows is worth fanning out: at least two
    /// workers would each get [`ParallelCtx::min_rows_per_worker`] rows.
    /// Kernels fall back to the serial reference path otherwise.
    pub fn should_parallelize(&self, rows: usize) -> bool {
        !self.is_serial() && rows >= self.min_rows_per_worker.saturating_mul(2)
    }

    /// Class-scaled minimum rows per worker (cost-aware threshold):
    /// vectorized selection needs `2×` the base rows to amortize fan-out,
    /// aggregation breaks even at the base, and join probes at half of it.
    /// `min_rows_per_worker == 0` still disables thresholds entirely.
    pub fn min_rows_for(&self, class: KernelClass) -> usize {
        match class {
            KernelClass::Selection => self.min_rows_per_worker.saturating_mul(2),
            KernelClass::Aggregation => self.min_rows_per_worker,
            KernelClass::Join => self.min_rows_per_worker / 2,
        }
    }

    /// [`ParallelCtx::should_parallelize`] with the per-class threshold.
    pub fn should_parallelize_kernel(&self, rows: usize, class: KernelClass) -> bool {
        !self.is_serial() && rows >= self.min_rows_for(class).saturating_mul(2)
    }

    /// True if an input of `rows` rows would actually fan out to more
    /// than one thread after the hardware cap. Kernels use this on top of
    /// [`ParallelCtx::should_parallelize`] to fall back to the serial
    /// reference when fan-out would be vacuous — e.g. eight requested
    /// workers on a single-core host, where the morsel machinery is pure
    /// overhead. Like the threshold, it is disabled by
    /// `min_rows_per_worker == 0` (the test configuration), so parallel
    /// merge paths stay exercised on single-core CI hosts.
    pub fn fans_out(&self, rows: usize) -> bool {
        let num_morsels = rows.div_ceil(self.morsel_rows.max(1));
        self.effective_workers(rows, num_morsels) > 1
    }

    /// The worker count a `rows`-row input actually fans out to: capped
    /// so each thread gets [`ParallelCtx::min_rows_per_worker`] rows, and
    /// by the hardware thread count — threads beyond the cores are pure
    /// scheduling overhead on a saturated host (the 10M-row kernel bench
    /// measured net slowdowns from oversubscription). With the threshold
    /// disabled (`min_rows_per_worker == 0` — the test configuration)
    /// both caps are off, so parallel merge paths stay exercised even on
    /// single-core CI hosts. Results are bit-identical either way.
    fn effective_workers(&self, rows: usize, num_morsels: usize) -> usize {
        let cap = match self.min_rows_per_worker {
            0 => self.workers,
            min => {
                let hw = std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(usize::MAX);
                (rows / min).max(1).min(hw)
            }
        };
        self.workers.min(cap).clamp(1, num_morsels.max(1))
    }

    /// Split `rows` into morsels, apply `f` to every morsel range across
    /// the worker pool, and return the per-morsel results **in morsel
    /// order** (deterministic regardless of scheduling). The first error in
    /// morsel order is returned, matching what a serial left-to-right scan
    /// would report.
    ///
    /// The effective worker count is capped so each thread has at least
    /// [`ParallelCtx::min_rows_per_worker`] rows (and never exceeds the
    /// morsel count or the hardware thread count); with one effective
    /// worker the loop runs on the calling thread with no pool at all.
    pub fn run_morsels<T, F>(&self, rows: usize, f: F) -> Result<Vec<T>, String>
    where
        T: Send,
        F: Fn(Range<usize>) -> Result<T, String> + Sync,
    {
        let morsel = self.morsel_rows.max(1);
        let num_morsels = rows.div_ceil(morsel);
        let range_of = |i: usize| -> Range<usize> {
            let start = i * morsel;
            start..(start + morsel).min(rows)
        };
        let workers = self.effective_workers(rows, num_morsels);
        if workers == 1 {
            return (0..num_morsels).map(|i| f(range_of(i))).collect();
        }

        // Work stealing: each worker claims the next unclaimed morsel.
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<Result<T, String>>> =
            (0..num_morsels).map(|_| None).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut done: Vec<(usize, Result<T, String>)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= num_morsels {
                                break;
                            }
                            done.push((i, f(range_of(i))));
                        }
                        done
                    })
                })
                .collect();
            for handle in handles {
                let done = handle
                    .join()
                    .unwrap_or_else(|panic| std::panic::resume_unwind(panic));
                for (i, result) in done {
                    slots[i] = Some(result);
                }
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every morsel index was claimed"))
            .collect()
    }

    /// Like [`ParallelCtx::run_morsels`], but for kernels whose output is
    /// a flat stream: instead of one allocation per morsel, every worker
    /// appends into a single reused [`MorselArena`] and records the span
    /// each morsel produced. The spans are then concatenated — in morsel
    /// order, pre-sized from the per-worker counts — into one buffer, so
    /// the result is bit-identical to a serial left-to-right scan.
    ///
    /// With one effective worker the arena already *is* the result in
    /// morsel order and is returned without any copy at all — the
    /// single-worker path costs exactly what the serial kernel costs.
    pub fn run_morsels_arena<A, F>(&self, rows: usize, f: F) -> Result<A, String>
    where
        A: MorselArena,
        F: Fn(Range<usize>, &mut A) -> Result<(), String> + Sync,
    {
        let morsel = self.morsel_rows.max(1);
        let num_morsels = rows.div_ceil(morsel);
        let range_of = |i: usize| -> Range<usize> {
            let start = i * morsel;
            start..(start + morsel).min(rows)
        };
        let workers = self.effective_workers(rows, num_morsels);
        if workers == 1 {
            let mut arena = A::default();
            for i in 0..num_morsels {
                f(range_of(i), &mut arena)?;
            }
            return Ok(arena);
        }

        // Work stealing as in `run_morsels`; each worker returns its
        // arena, the (morsel index, span) list of what it claimed, and
        // its first error (after which it stops claiming).
        type WorkerPart<A> = (A, Vec<(usize, Range<usize>)>, Option<(usize, String)>);
        let next = AtomicUsize::new(0);
        let parts: Vec<WorkerPart<A>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut arena = A::default();
                            let mut spans = Vec::new();
                            let mut err = None;
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                if i >= num_morsels {
                                    break;
                                }
                                let start = arena.len();
                                match f(range_of(i), &mut arena) {
                                    Ok(()) => spans.push((i, start..arena.len())),
                                    Err(e) => {
                                        err = Some((i, e));
                                        break;
                                    }
                                }
                            }
                            (arena, spans, err)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        h.join().unwrap_or_else(|p| std::panic::resume_unwind(p))
                    })
                    .collect()
            });

        // First error in morsel order, matching a serial scan: the claim
        // counter is monotonic, so every index below the smallest reported
        // error index was claimed and completed Ok (had it errored, it
        // would be the smaller report).
        if let Some((_, e)) = parts
            .iter()
            .filter_map(|(_, _, err)| err.as_ref())
            .min_by_key(|(i, _)| *i)
        {
            return Err(e.clone());
        }

        // Merge: pre-size the output from the per-worker counts, then
        // copy each morsel's span exactly once, in morsel order.
        let mut slots: Vec<Option<(usize, Range<usize>)>> = vec![None; num_morsels];
        let mut total = 0usize;
        for (w, (_, spans, _)) in parts.iter().enumerate() {
            for (i, span) in spans {
                total += span.len();
                slots[*i] = Some((w, span.clone()));
            }
        }
        let mut out = A::default();
        out.reserve(total);
        for slot in slots {
            let (w, span) = slot.expect("every morsel index was claimed");
            out.append_range(&parts[w].0, span);
        }
        Ok(out)
    }
}

/// A per-worker output buffer [`ParallelCtx::run_morsels_arena`] can
/// append into and concatenate deterministically: a flat growable stream
/// where a morsel's output is the contiguous span it appended.
pub trait MorselArena: Default + Send {
    /// Items currently in the buffer (span endpoints index into this).
    fn len(&self) -> usize;

    /// True if the buffer holds no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pre-size for exactly `n` more items.
    fn reserve(&mut self, n: usize);

    /// Append `src[range]` onto `self`.
    fn append_range(&mut self, src: &Self, range: Range<usize>);
}

impl<T: Copy + Send> MorselArena for Vec<T> {
    fn len(&self) -> usize {
        self.as_slice().len()
    }

    fn reserve(&mut self, n: usize) {
        Vec::reserve_exact(self, n);
    }

    fn append_range(&mut self, src: &Self, range: Range<usize>) {
        self.extend_from_slice(&src[range]);
    }
}

/// Two streams appended in lockstep (e.g. probe/build position pairs).
impl<T: Copy + Send, U: Copy + Send> MorselArena for (Vec<T>, Vec<U>) {
    fn len(&self) -> usize {
        self.0.len()
    }

    fn reserve(&mut self, n: usize) {
        self.0.reserve_exact(n);
        self.1.reserve_exact(n);
    }

    fn append_range(&mut self, src: &Self, range: Range<usize>) {
        self.0.extend_from_slice(&src.0[range.clone()]);
        self.1.extend_from_slice(&src.1[range]);
    }
}

/// Production selection: bit-identical to [`ops::select::select`].
///
/// Serial or parallel, the selection vector comes from the block
/// predicate evaluator ([`crate::simd`]) and the result is materialized
/// by one global gather, like the serial reference path (so string
/// columns share the same dictionary `Arc` either way).
pub fn select(
    chunk: &Chunk,
    predicate: &Predicate,
    ctx: ParallelCtx,
) -> Result<Chunk, String> {
    let sel = select_positions(chunk, predicate, ctx)?;
    Ok(chunk.gather(sel.positions()))
}

/// Compute the selection vector for `predicate` over `chunk` without
/// materializing anything: each worker appends its morsels' qualifying
/// positions into its arena and the spans are concatenated **once**, in
/// morsel order — so the result equals the serial
/// [`Predicate::evaluate_selvec`]`(chunk, None)` exactly.
///
/// The predicate is compiled **once** (to the block form when the shape
/// supports it — see [`crate::simd::BlockPred`]) and shared read-only
/// across workers; the serial path runs the same compiled form over the
/// full row range.
pub fn select_positions(
    chunk: &Chunk,
    predicate: &Predicate,
    ctx: ParallelCtx,
) -> Result<SelVec, String> {
    let pred = ProdPred::compile(predicate, chunk)?;
    if ctx.is_serial()
        || !ctx.should_parallelize_kernel(chunk.num_rows(), KernelClass::Selection)
        || !ctx.fans_out(chunk.num_rows())
    {
        let mut positions = Vec::new();
        pred.append_range(0..chunk.num_rows(), &mut positions)?;
        return Ok(SelVec::new(positions));
    }
    let positions =
        ctx.run_morsels_arena(chunk.num_rows(), |rows, out: &mut Vec<u32>| {
            pred.append_range(rows, out)
        })?;
    Ok(SelVec::new(positions))
}

/// Parallel hash join: bit-identical to [`ops::join::hash_join`].
///
/// The build side is hashed once on the calling thread; only the probe
/// loop fans out.
pub fn hash_join(
    build: &Chunk,
    probe: &Chunk,
    build_key: &str,
    probe_key: &str,
    kind: JoinKind,
    ctx: ParallelCtx,
) -> Result<Chunk, String> {
    if ctx.is_serial()
        || !ctx.should_parallelize_kernel(probe.num_rows(), KernelClass::Join)
        || !ctx.fans_out(probe.num_rows())
    {
        return ops::join::hash_join_fast(build, probe, build_key, probe_key, kind);
    }
    let bcol = build.require_column(build_key)?;
    let pcol = probe.require_column(probe_key)?;
    ops::join::with_key_buffers(|bkeys, pkeys| {
        ops::join::join_keys_into(bcol, pcol, bkeys, pkeys)?;
        let table = JoinTable::build(bkeys);

        match kind {
            JoinKind::Inner => {
                let (probe_pos, build_pos) = ctx.run_morsels_arena(
                    pkeys.len(),
                    |rows, out: &mut (Vec<u32>, Vec<u32>)| {
                        for i in rows {
                            let k = pkeys[i];
                            if k == u64::MAX {
                                continue; // probe-only string, cannot match
                            }
                            table.for_each_match(k, |b| {
                                out.0.push(i as u32);
                                out.1.push(b);
                            });
                        }
                        Ok(())
                    },
                )?;
                Ok(probe.gather(&probe_pos).zip(build.gather(&build_pos)))
            }
            JoinKind::Semi | JoinKind::Anti => {
                let keep_matches = kind == JoinKind::Semi;
                let pos =
                    ctx.run_morsels_arena(pkeys.len(), |rows, out: &mut Vec<u32>| {
                        out.extend(
                            rows.filter(|&i| {
                                let k = pkeys[i];
                                let found = k != u64::MAX && table.contains(k);
                                found == keep_matches
                            })
                            .map(|i| i as u32),
                        );
                        Ok(())
                    })?;
                Ok(probe.gather(&pos))
            }
        }
    })
}

/// A composite group key (dense cases avoid the per-row `Vec`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum GroupKey {
    One(u64),
    Two(u64, u64),
    Many(Vec<u64>),
}

fn group_key(key_cols: &[&ColumnData], row: usize) -> GroupKey {
    match key_cols {
        [a] => GroupKey::One(a.key_at(row)),
        [a, b] => GroupKey::Two(a.key_at(row), b.key_at(row)),
        cols => GroupKey::Many(cols.iter().map(|c| c.key_at(row)).collect()),
    }
}

/// Per-morsel grouping result (phase 1).
struct LocalGroups {
    /// Distinct keys, in local first-occurrence order.
    keys: Vec<GroupKey>,
    /// Global row index of each key's first occurrence in this morsel.
    reps: Vec<u32>,
    /// Local group id of every row of the morsel, in row order.
    row_gids: Vec<u32>,
}

/// Parallel group-by aggregation: bit-identical to
/// [`ops::agg::aggregate`].
///
/// Phase 1 (parallel) builds per-morsel hash tables mapping composite keys
/// to local group ids. The merge walks morsels in order, assigning global
/// group ids in first-occurrence order — the same numbering the serial
/// kernel produces. Phase 2 then folds every aggregate input serially in
/// row order, so `f64` sums associate exactly like the serial reference.
///
/// Global aggregation (`group_by` empty) is delegated to the serial
/// kernel: it is a pure fold whose result depends on association order, so
/// there is no bit-identical way to split it.
pub fn aggregate(
    chunk: &Chunk,
    group_by: &[String],
    aggs: &[AggSpec],
    ctx: ParallelCtx,
) -> Result<Chunk, String> {
    if ctx.is_serial()
        || group_by.is_empty()
        || !ctx.should_parallelize_kernel(chunk.num_rows(), KernelClass::Aggregation)
        || !ctx.fans_out(chunk.num_rows())
    {
        return ops::agg::aggregate_fast(chunk, group_by, aggs);
    }
    let n = chunk.num_rows();
    let key_cols: Vec<&ColumnData> = group_by
        .iter()
        .map(|name| chunk.require_column(name))
        .collect::<Result<_, _>>()?;
    let agg_inputs: Vec<Vec<f64>> = aggs
        .iter()
        .map(|a| a.input.evaluate_f64(chunk))
        .collect::<Result<_, _>>()?;

    // Phase 1 (parallel): per-morsel grouping.
    let locals = ctx.run_morsels(n, |rows| {
        let mut map: HashMap<GroupKey, u32> = HashMap::new();
        let mut keys = Vec::new();
        let mut reps = Vec::new();
        let mut row_gids = Vec::with_capacity(rows.len());
        for row in rows {
            let gid = match map.entry(group_key(&key_cols, row)) {
                Entry::Occupied(e) => *e.get(),
                Entry::Vacant(e) => {
                    let g = keys.len() as u32;
                    keys.push(e.key().clone());
                    reps.push(row as u32);
                    e.insert(g);
                    g
                }
            };
            row_gids.push(gid);
        }
        Ok(LocalGroups { keys, reps, row_gids })
    })?;

    // Merge (serial, morsel order): global ids in first-occurrence order.
    let mut global: HashMap<GroupKey, u32> = HashMap::new();
    let mut representative: Vec<u32> = Vec::new();
    let mut gids: Vec<u32> = Vec::with_capacity(n);
    for local in &locals {
        let translate: Vec<u32> = local
            .keys
            .iter()
            .zip(&local.reps)
            .map(|(key, &rep)| match global.entry(key.clone()) {
                Entry::Occupied(e) => *e.get(),
                Entry::Vacant(e) => {
                    let g = representative.len() as u32;
                    representative.push(rep);
                    e.insert(g);
                    g
                }
            })
            .collect();
        gids.extend(local.row_gids.iter().map(|&l| translate[l as usize]));
    }

    // Phase 2 (serial, row order): exact serial accumulation order.
    let mut states =
        vec![vec![ops::agg::AggState::new(); aggs.len()]; representative.len()];
    for (row, &gid) in gids.iter().enumerate() {
        for (state, input) in states[gid as usize].iter_mut().zip(&agg_inputs) {
            state.update(input[row]);
        }
    }
    Ok(ops::agg::finalize(group_by, &key_cols, aggs, &representative, &states))
}

/// Per-morsel result of a fused filter→aggregate loop: the selected
/// positions plus their local grouping, produced in one pass.
struct FusedLocal {
    /// Qualifying global positions of the morsel, in row order.
    positions: Vec<u32>,
    /// Distinct keys, in local first-occurrence order over the selection.
    keys: Vec<GroupKey>,
    /// Global row of each key's first occurrence in this morsel.
    reps: Vec<u32>,
    /// Local group id of every *selected* row, in selection order.
    row_gids: Vec<u32>,
}

/// Fused filter→aggregate: one morsel loop filters **and** groups, so the
/// filtered intermediate chunk is never materialized.
///
/// Each worker compiles nothing and copies nothing per row: the shared
/// compiled predicate emits a morsel's qualifying positions, which are
/// immediately grouped against the *base* columns. The merge and phase-2
/// accumulation mirror [`aggregate`] — morsel-order group numbering,
/// selection-order `f64` folds, aggregate inputs evaluated at selected
/// positions only — so the result is bit-identical to
/// `select(chunk, pred)` followed by `aggregate(...)`.
pub fn fused_filter_aggregate(
    chunk: &Chunk,
    predicate: &Predicate,
    group_by: &[String],
    aggs: &[AggSpec],
    ctx: ParallelCtx,
) -> Result<Chunk, String> {
    if ctx.is_serial()
        || !ctx.should_parallelize_kernel(chunk.num_rows(), KernelClass::Aggregation)
        || !ctx.fans_out(chunk.num_rows())
    {
        let pred = ProdPred::compile(predicate, chunk)?;
        let mut positions = Vec::new();
        pred.append_range(0..chunk.num_rows(), &mut positions)?;
        let sel = SelVec::new(positions);
        return ops::agg::aggregate_sel_fast(chunk, Some(&sel), group_by, aggs);
    }
    let pred = ProdPred::compile(predicate, chunk)?;
    let key_cols: Vec<&ColumnData> = group_by
        .iter()
        .map(|name| chunk.require_column(name))
        .collect::<Result<_, _>>()?;

    // Phase 1 (parallel): filter + local grouping in one pass per morsel.
    let locals = ctx.run_morsels(chunk.num_rows(), |rows| {
        let mut positions = Vec::new();
        pred.append_range(rows, &mut positions)?;
        let mut map: HashMap<GroupKey, u32> = HashMap::new();
        let mut keys = Vec::new();
        let mut reps = Vec::new();
        let mut row_gids = Vec::with_capacity(positions.len());
        for &p in &positions {
            let gid = match map.entry(group_key(&key_cols, p as usize)) {
                Entry::Occupied(e) => *e.get(),
                Entry::Vacant(e) => {
                    let g = keys.len() as u32;
                    keys.push(e.key().clone());
                    reps.push(p);
                    e.insert(g);
                    g
                }
            };
            row_gids.push(gid);
        }
        Ok(FusedLocal { positions, keys, reps, row_gids })
    })?;

    // Merge (serial, morsel order): global ids in first-occurrence order
    // over the concatenated selection.
    let total: usize = locals.iter().map(|l| l.positions.len()).sum();
    let mut global: HashMap<GroupKey, u32> = HashMap::new();
    let mut representative: Vec<u32> = Vec::new();
    let mut positions: Vec<u32> = Vec::with_capacity(total);
    let mut gids: Vec<u32> = Vec::with_capacity(total);
    for local in &locals {
        let translate: Vec<u32> = local
            .keys
            .iter()
            .zip(&local.reps)
            .map(|(key, &rep)| match global.entry(key.clone()) {
                Entry::Occupied(e) => *e.get(),
                Entry::Vacant(e) => {
                    let g = representative.len() as u32;
                    representative.push(rep);
                    e.insert(g);
                    g
                }
            })
            .collect();
        gids.extend(local.row_gids.iter().map(|&l| translate[l as usize]));
        positions.extend_from_slice(&local.positions);
    }

    // Phase 2 (serial, selection order): inputs at selected rows only.
    let agg_inputs: Vec<Vec<f64>> = aggs
        .iter()
        .map(|a| a.input.evaluate_f64_at(chunk, &positions))
        .collect::<Result<_, _>>()?;
    let mut states =
        vec![vec![ops::agg::AggState::new(); aggs.len()]; representative.len()];
    for (j, &gid) in gids.iter().enumerate() {
        for (state, input) in states[gid as usize].iter_mut().zip(&agg_inputs) {
            state.update(input[j]);
        }
    }
    // Global aggregate over an empty selection: one row of neutral values.
    if group_by.is_empty() && states.is_empty() {
        representative.push(0);
        states.push(vec![ops::agg::AggState::new(); aggs.len()]);
    }
    Ok(ops::agg::finalize(group_by, &key_cols, aggs, &representative, &states))
}

/// Fused filter→probe: each worker filters its morsel of the probe side
/// and immediately probes the surviving positions against the (shared,
/// prebuilt) hash table, emitting global position pairs — the filtered
/// probe side is never materialized.
///
/// The concatenation runs in morsel order and the output is gathered once
/// from the *base* probe chunk, so the result is bit-identical to
/// `select(probe, pred)` followed by `hash_join(build, ..., kind)`.
pub fn fused_filter_probe(
    build: &Chunk,
    probe: &Chunk,
    predicate: &Predicate,
    build_key: &str,
    probe_key: &str,
    kind: JoinKind,
    ctx: ParallelCtx,
) -> Result<Chunk, String> {
    if ctx.is_serial()
        || !ctx.should_parallelize_kernel(probe.num_rows(), KernelClass::Join)
        || !ctx.fans_out(probe.num_rows())
    {
        let pred = ProdPred::compile(predicate, probe)?;
        let mut positions = Vec::new();
        pred.append_range(0..probe.num_rows(), &mut positions)?;
        let sel = SelVec::new(positions);
        return ops::join::hash_join_sel_fast(
            build,
            probe,
            build_key,
            probe_key,
            kind,
            Some(&sel),
        );
    }
    let pred = ProdPred::compile(predicate, probe)?;
    let bcol = build.require_column(build_key)?;
    let pcol = probe.require_column(probe_key)?;
    ops::join::with_key_buffers(|bkeys, _pkeys| {
        let keys = ops::join::probe_key_extractor(bcol, pcol, bkeys)?;
        let table = JoinTable::build(bkeys);
        match kind {
            JoinKind::Inner => {
                let (probe_pos, build_pos) = ctx.run_morsels_arena(
                    probe.num_rows(),
                    |rows, out: &mut (Vec<u32>, Vec<u32>)| {
                        // The filter scratch is morsel-bounded; size it once.
                        let mut positions = Vec::with_capacity(rows.len());
                        pred.append_range(rows, &mut positions)?;
                        ops::join::probe_table_into(
                            &keys,
                            &table,
                            kind,
                            positions.into_iter(),
                            &mut out.0,
                            &mut out.1,
                        );
                        Ok(())
                    },
                )?;
                Ok(probe.gather(&probe_pos).zip(build.gather(&build_pos)))
            }
            // Semi/anti probes emit probe positions only, so the arena is
            // a single stream and the build-side sink stays empty.
            JoinKind::Semi | JoinKind::Anti => {
                let probe_pos = ctx.run_morsels_arena(
                    probe.num_rows(),
                    |rows, out: &mut Vec<u32>| {
                        let mut positions = Vec::with_capacity(rows.len());
                        pred.append_range(rows, &mut positions)?;
                        let mut build_pos = Vec::new();
                        ops::join::probe_table_into(
                            &keys,
                            &table,
                            kind,
                            positions.into_iter(),
                            out,
                            &mut build_pos,
                        );
                        debug_assert!(build_pos.is_empty());
                        Ok(())
                    },
                )?;
                Ok(probe.gather(&probe_pos))
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::plan::AggSpec;
    use robustq_storage::{ColumnData, DataType, DictColumn, Field};

    fn wide_chunk(rows: usize) -> Chunk {
        let ints: Vec<i32> = (0..rows).map(|i| (i as i32 * 7) % 23 - 11).collect();
        let floats: Vec<f64> = (0..rows).map(|i| (i as f64) * 0.37 - 50.0).collect();
        let strs: Vec<String> =
            (0..rows).map(|i| format!("k{}", (i * 13) % 17)).collect();
        Chunk::new(
            vec![
                Field::new("a", DataType::Int32),
                Field::new("f", DataType::Float64),
                Field::new("s", DataType::Str),
            ],
            vec![
                ColumnData::Int32(ints),
                ColumnData::Float64(floats),
                ColumnData::Str(DictColumn::from_strings(strs)),
            ],
        )
    }

    fn ctx(workers: usize, morsel: usize) -> ParallelCtx {
        // Threshold disabled so tiny test chunks still exercise the
        // parallel paths.
        ParallelCtx { workers, morsel_rows: morsel, min_rows_per_worker: 0 }
    }

    #[test]
    fn run_morsels_preserves_order_and_covers_all_rows() {
        let c = ctx(4, 10);
        let parts = c.run_morsels(95, |r| Ok(r.clone())).unwrap();
        assert_eq!(parts.len(), 10);
        assert_eq!(parts[0], 0..10);
        assert_eq!(parts[9], 90..95);
        let total: usize = parts.iter().map(|r| r.len()).sum();
        assert_eq!(total, 95);
    }

    #[test]
    fn run_morsels_empty_input() {
        let parts = ctx(4, 8).run_morsels(0, |r| Ok(r.len())).unwrap();
        assert!(parts.is_empty());
    }

    #[test]
    fn run_morsels_reports_first_error_in_morsel_order() {
        let c = ctx(4, 1);
        let err = c
            .run_morsels(10, |r| {
                if r.start >= 3 {
                    Err(format!("boom at {}", r.start))
                } else {
                    Ok(r.start)
                }
            })
            .unwrap_err();
        assert_eq!(err, "boom at 3");
    }

    #[test]
    fn run_morsels_arena_concatenates_in_morsel_order() {
        let c = ctx(4, 10);
        let out: Vec<u32> = c
            .run_morsels_arena(95, |r, out: &mut Vec<u32>| {
                out.extend(r.map(|i| i as u32));
                Ok(())
            })
            .unwrap();
        assert_eq!(out, (0..95).collect::<Vec<u32>>());
    }

    #[test]
    fn run_morsels_arena_empty_input() {
        let out: Vec<u32> = ctx(4, 8)
            .run_morsels_arena(0, |_r, _out: &mut Vec<u32>| {
                panic!("no morsels to run")
            })
            .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn run_morsels_arena_reports_first_error_in_morsel_order() {
        let err = ctx(4, 1)
            .run_morsels_arena(10, |r, out: &mut Vec<u32>| {
                if r.start >= 3 {
                    Err(format!("boom at {}", r.start))
                } else {
                    out.push(r.start as u32);
                    Ok(())
                }
            })
            .unwrap_err();
        assert_eq!(err, "boom at 3");
    }

    #[test]
    fn run_morsels_arena_pair_stays_in_lockstep() {
        let (a, b): (Vec<u32>, Vec<u32>) = ctx(3, 7)
            .run_morsels_arena(50, |r, out: &mut (Vec<u32>, Vec<u32>)| {
                for i in r {
                    out.0.push(i as u32);
                    out.1.push(2 * i as u32);
                }
                Ok(())
            })
            .unwrap();
        assert_eq!(a, (0..50).collect::<Vec<u32>>());
        assert_eq!(b, (0..50).map(|i| 2 * i).collect::<Vec<u32>>());
    }

    #[test]
    fn parallel_select_matches_serial_exactly() {
        let chunk = wide_chunk(1_000);
        let pred = Predicate::between("a", -5, 5);
        let serial = ops::select::select(&chunk, &pred).unwrap();
        for workers in [2, 8] {
            for morsel in [1, 7, 64] {
                let par = select(&chunk, &pred, ctx(workers, morsel)).unwrap();
                assert_eq!(par, serial, "workers={workers} morsel={morsel}");
            }
        }
    }

    #[test]
    fn parallel_join_matches_serial_exactly() {
        let build = wide_chunk(50);
        let probe = wide_chunk(777);
        for kind in [JoinKind::Inner, JoinKind::Semi, JoinKind::Anti] {
            let serial =
                ops::join::hash_join(&build, &probe, "a", "a", kind).unwrap();
            let par =
                hash_join(&build, &probe, "a", "a", kind, ctx(3, 13)).unwrap();
            assert_eq!(par, serial, "{kind:?}");
        }
    }

    #[test]
    fn parallel_aggregate_matches_serial_exactly() {
        let chunk = wide_chunk(2_000);
        let aggs = vec![
            AggSpec::sum(Expr::col("f"), "s"),
            AggSpec::count("c"),
            AggSpec::new(crate::plan::AggFunc::Avg, Expr::col("f"), "m"),
        ];
        let group_by = vec!["s".to_string(), "a".to_string()];
        let serial = ops::agg::aggregate(&chunk, &group_by, &aggs).unwrap();
        let par = aggregate(&chunk, &group_by, &aggs, ctx(4, 111)).unwrap();
        assert_eq!(par, serial);
    }

    #[test]
    fn errors_match_serial() {
        let chunk = wide_chunk(100);
        assert!(select(&chunk, &Predicate::eq("zz", 1), ctx(2, 8)).is_err());
        assert!(hash_join(
            &chunk,
            &chunk,
            "zz",
            "a",
            JoinKind::Inner,
            ctx(2, 8)
        )
        .is_err());
        assert!(aggregate(
            &chunk,
            &["zz".to_string()],
            &[AggSpec::count("c")],
            ctx(2, 8)
        )
        .is_err());
    }

    #[test]
    fn default_ctx_is_serial() {
        assert!(ParallelCtx::default().is_serial());
        assert!(ParallelCtx::serial().is_serial());
        assert!(!ParallelCtx::serial().with_workers(4).is_serial());
        assert!(ParallelCtx::auto().workers >= 1);
    }

    #[test]
    fn min_rows_threshold_forces_serial_on_small_inputs() {
        let c = ParallelCtx::serial().with_workers(8);
        assert!(!c.should_parallelize(1_000_000)); // 1M < 2 × 524_288
        assert!(c.should_parallelize(10_000_000));
        assert!(!ParallelCtx::serial().should_parallelize(10_000_000));
        // Threshold disabled: any multi-worker input fans out.
        assert!(c.with_min_rows_per_worker(0).should_parallelize(10));
        // run_morsels caps effective workers by rows/threshold.
        let parts = c
            .with_morsel_rows(100)
            .run_morsels(1_000, |r| Ok(r.len()))
            .unwrap();
        assert_eq!(parts.iter().sum::<usize>(), 1_000);
    }

    #[test]
    fn select_positions_matches_serial_selvec() {
        let chunk = wide_chunk(1_000);
        let pred = Predicate::between("a", -5, 5);
        let serial = pred.evaluate_selvec(&chunk, None).unwrap();
        for workers in [2, 8] {
            for morsel in [1, 7, 64] {
                let par =
                    select_positions(&chunk, &pred, ctx(workers, morsel)).unwrap();
                assert_eq!(
                    par.positions(),
                    serial.positions(),
                    "workers={workers} morsel={morsel}"
                );
            }
        }
    }

    #[test]
    fn fused_filter_aggregate_matches_select_then_aggregate() {
        let chunk = wide_chunk(2_000);
        let pred = Predicate::between("a", -7, 7);
        let aggs = vec![
            AggSpec::sum(Expr::col("f"), "s"),
            AggSpec::count("c"),
            AggSpec::new(crate::plan::AggFunc::Avg, Expr::col("f"), "m"),
        ];
        for group_by in [vec![], vec!["s".to_string()], vec!["s".to_string(), "a".into()]] {
            let filtered = ops::select::select(&chunk, &pred).unwrap();
            let serial = ops::agg::aggregate(&filtered, &group_by, &aggs).unwrap();
            for workers in [1, 2, 8] {
                let fused = fused_filter_aggregate(
                    &chunk,
                    &pred,
                    &group_by,
                    &aggs,
                    ctx(workers, 111),
                )
                .unwrap();
                assert_eq!(fused, serial, "workers={workers} group_by={group_by:?}");
            }
        }
    }

    #[test]
    fn fused_filter_aggregate_empty_selection_global_agg() {
        let chunk = wide_chunk(500);
        let pred = Predicate::eq("a", 9_999); // matches nothing
        let out = fused_filter_aggregate(
            &chunk,
            &pred,
            &[],
            &[AggSpec::count("c")],
            ctx(4, 64),
        )
        .unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.row(0)[0].as_i64(), Some(0));
    }

    #[test]
    fn fused_filter_probe_matches_select_then_join() {
        let build = wide_chunk(50);
        let probe = wide_chunk(777);
        let pred = Predicate::between("a", -8, 4);
        for kind in [JoinKind::Inner, JoinKind::Semi, JoinKind::Anti] {
            let filtered = ops::select::select(&probe, &pred).unwrap();
            let serial =
                ops::join::hash_join(&build, &filtered, "a", "a", kind).unwrap();
            for workers in [1, 3, 8] {
                let fused = fused_filter_probe(
                    &build,
                    &probe,
                    &pred,
                    "a",
                    "a",
                    kind,
                    ctx(workers, 13),
                )
                .unwrap();
                assert_eq!(fused, serial, "{kind:?} workers={workers}");
            }
        }
    }

    #[test]
    fn fused_string_key_probe_shares_dictionaries() {
        // String keys across distinct dictionaries exercise the probe-key
        // translation table inside the fused loop.
        let build = wide_chunk(40);
        let probe = wide_chunk(333);
        let pred = Predicate::True;
        let filtered = ops::select::select(&probe, &pred).unwrap();
        let serial =
            ops::join::hash_join(&build, &filtered, "s", "s", JoinKind::Inner)
                .unwrap();
        let fused =
            fused_filter_probe(&build, &probe, &pred, "s", "s", JoinKind::Inner, ctx(4, 17))
                .unwrap();
        assert_eq!(fused, serial);
    }

    #[test]
    fn fused_errors_match_serial() {
        let chunk = wide_chunk(100);
        assert!(fused_filter_aggregate(
            &chunk,
            &Predicate::eq("zz", 1),
            &[],
            &[AggSpec::count("c")],
            ctx(2, 8)
        )
        .is_err());
        assert!(fused_filter_probe(
            &chunk,
            &chunk,
            &Predicate::True,
            "zz",
            "a",
            JoinKind::Inner,
            ctx(2, 8)
        )
        .is_err());
    }
}
