//! Per-device runtime state: ready queues, worker slots and the
//! processor-sharing compute sets.
//!
//! Each device of the topology gets one [`DeviceRt`]; the executor's
//! dispatch/advance/settle/reschedule cycle below is what turns the
//! discrete-event queue into per-device operator streams. `n` operators
//! computing concurrently on one device each progress at rate `1/n`
//! (processor sharing), which is how worker-slot contention stretches
//! kernel times without simulating schedulers.

use crate::error::EngineError;
use crate::exec::event_loop::{Ev, Sim, Status};
use robustq_sim::{
    partition_bytes, DeviceId, DeviceKind, Direction, PerDevice, VirtualTime,
};
use robustq_trace::{TraceEvent, TransferKind};
use std::collections::VecDeque;

/// One device's scheduling state.
#[derive(Debug, Default)]
pub(crate) struct DeviceRt {
    /// FIFO ready queue of task ids waiting for a worker slot.
    pub(crate) queue: VecDeque<usize>,
    /// Operators holding a worker slot (transferring or computing).
    pub(crate) running: usize,
    /// Estimated outstanding work (the policy's load signal).
    pub(crate) load: VirtualTime,
    /// Tasks currently *computing* (slot holders doing transfers are not
    /// in here yet); all of them share the device.
    pub(crate) compute: Vec<usize>,
    /// When `compute` progress was last applied.
    pub(crate) last_update: VirtualTime,
    /// Invalidates stale `DeviceTick` events.
    pub(crate) tick_version: u64,
}

/// The per-device runtime table, one entry per topology device.
#[derive(Debug)]
pub(crate) struct DeviceSet {
    rts: Vec<DeviceRt>,
}

impl DeviceSet {
    pub(crate) fn new(devices: usize) -> Self {
        DeviceSet { rts: (0..devices).map(|_| DeviceRt::default()).collect() }
    }

    pub(crate) fn rt(&self, device: DeviceId) -> &DeviceRt {
        &self.rts[device.index()]
    }

    pub(crate) fn rt_mut(&mut self, device: DeviceId) -> &mut DeviceRt {
        &mut self.rts[device.index()]
    }

    /// Snapshot of per-device queued work for the policy context.
    pub(crate) fn load_table(&self) -> PerDevice<VirtualTime> {
        PerDevice::from_fn(self.rts.len(), |d| self.rts[d.index()].load)
    }

    /// Snapshot of per-device running operators for the policy context.
    pub(crate) fn running_table(&self) -> PerDevice<usize> {
        PerDevice::from_fn(self.rts.len(), |d| self.rts[d.index()].running)
    }
}

impl Sim<'_, '_> {
    /// Positional byte volume of a shard merge, if `task` is one.
    ///
    /// Shards hand the merge selection vectors (~4 B/row — the same rule
    /// `d2h_consume_bytes` applies to scan outputs), and the merge
    /// concatenates positions without touching payload bytes. Its kernel
    /// cost is therefore charged on positions; `bytes_in`/`output_bytes`
    /// keep reporting the logical payload for downstream accounting.
    pub(crate) fn merge_positional_bytes(&self, task: usize) -> Option<u64> {
        let t = &self.tasks[task];
        matches!(t.node.op, crate::exec::task::TaskOp::MergeShards { .. }).then(|| {
            t.children.iter().map(|&c| self.tasks[c].output_rows * 4).sum()
        })
    }

    pub(crate) fn enqueue(&mut self, task: usize, device: DeviceId) {
        let now = self.now;
        let pos = self.merge_positional_bytes(task);
        let t = &mut self.tasks[task];
        t.device = Some(device);
        t.status = Status::Queued;
        t.queued_at = now;
        let (cost_in, cost_out) = match pos {
            Some(p) => (p.min(t.bytes_in), p.min(t.est_bytes_out)),
            None => (t.bytes_in, t.est_bytes_out),
        };
        let est = self.cost.duration(
            t.node.op.op_class(),
            device.kind(),
            cost_in,
            cost_out,
        );
        t.load_contribution = est;
        let rt = self.devices.rt_mut(device);
        rt.load += est;
        rt.queue.push_back(task);
    }

    pub(crate) fn slots(&self, device: DeviceId) -> usize {
        self.policy
            .worker_slots(device, self.config.spec(device).worker_slots)
    }

    pub(crate) fn dispatch(&mut self, device: DeviceId) -> Result<(), EngineError> {
        while self.devices.rt(device).running < self.slots(device) {
            let Some(task) = self.devices.rt_mut(device).queue.pop_front() else {
                break;
            };
            let contribution = self.tasks[task].load_contribution;
            let rt = self.devices.rt_mut(device);
            rt.load = rt.load.saturating_sub(contribution);
            self.start_task(task, device)?;
        }
        Ok(())
    }

    pub(crate) fn start_task(&mut self, task: usize, device: DeviceId) -> Result<(), EngineError> {
        let now = self.now;
        self.devices.rt_mut(device).running += 1;
        {
            let t = &mut self.tasks[task];
            t.status = Status::Running;
            t.start_time = now;
            t.device = Some(device);
        }

        // Compute the kernel result eagerly (host side); reuse a result
        // computed before an abort.
        if self.tasks[task].output.is_none() {
            let children_chunks: Vec<crate::batch::LazyChunk> = self.tasks[task]
                .children
                .iter()
                .map(|&c| {
                    self.tasks[c].output.clone().ok_or_else(|| {
                        EngineError::Internal("child output missing".to_string())
                    })
                })
                .collect::<Result<_, _>>()?;
            // A standing-query tick scans only its window's rows of the
            // fed table; batch queries (window `None`) take the plain
            // path, byte-identical to earlier releases.
            let window = self.queries[self.tasks[task].query].window.map(|w| {
                let name = self.db.tables()[w.table as usize].name();
                (name, w.lo as usize, w.hi as usize)
            });
            let out = self
                .tasks[task]
                .node
                .op
                .execute_windowed(&children_chunks, self.db, self.opts.parallel, window)
                .map_err(EngineError::Kernel)?;
            self.tasks[task].output_bytes = out.byte_size();
            self.tasks[task].output_rows = out.num_rows() as u64;
            self.tasks[task].output = Some(out);
        }
        let bytes_in = self.tasks[task].bytes_in;
        let bytes_out = self.tasks[task].output_bytes;
        let class = self.tasks[task].node.op.op_class();
        // Kernel-cost volume: positional for shard merges, payload else.
        let (cost_in, cost_out) = match self.merge_positional_bytes(task) {
            Some(p) => (p.min(bytes_in), p.min(bytes_out)),
            None => (bytes_in, bytes_out),
        };

        // Record base-column accesses (the counters driving LFU placement).
        for &col in &self.tasks[task].base_columns.clone() {
            self.db.stats().record_access(col.index());
        }

        let mut ready_at = now;
        if device.is_coprocessor() {
            let query = self.tasks[task].query;
            // Inputs resident on a *sibling* co-processor first return to
            // the host over that device's link; they then transfer in with
            // the other host-resident inputs below (there is no
            // peer-to-peer path in the simulated machine).
            for &c in &self.tasks[task].children.clone() {
                if self.tasks[c]
                    .output_device
                    .is_some_and(|d| d.is_coprocessor() && d != device)
                {
                    let end = self.pull_child_to_host(c, query, now);
                    ready_at = ready_at.max(end);
                }
            }
            // Working memory: staged allocation of footprint + retained
            // result, plus any host-resident inputs copied in.
            let mut input_transfer_bytes = 0u64;
            // A merge consumes its shards' position lists, not payloads,
            // so its h2d input transfers are positional too.
            let positional =
                matches!(self.tasks[task].node.op, crate::exec::task::TaskOp::MergeShards { .. });
            for &c in &self.tasks[task].children.clone() {
                if self.tasks[c].output_device == Some(DeviceId::Cpu) {
                    let b = self.tasks[c].output_bytes;
                    input_transfer_bytes +=
                        if positional { (self.tasks[c].output_rows * 4).min(b) } else { b };
                }
            }
            let footprint = self.cost.gpu_working_footprint(class, cost_in, cost_out)
                + bytes_out;
            // Larger-than-heap operators: with chunked staging enabled
            // they partition and stream instead of walking into a
            // guaranteed mid-flight abort (DESIGN.md §15).
            if self.opts.chunked_staging
                && input_transfer_bytes + footprint > self.heaps.device(device).capacity()
            {
                return self.start_staged_task(
                    task,
                    device,
                    input_transfer_bytes,
                    cost_in,
                    cost_out,
                );
            }
            // Operators allocate incrementally (Section 2.5.1): a small
            // upfront slice (input buffers), then three growth stages
            // mid-execution — which is what makes mid-flight aborts, and
            // the wasted time of Figure 20, possible.
            let stage = footprint * 3 / 10;
            let tag = Self::working_tag(task);
            let mut injected = false;
            let ok = self
                .alloc_or_inject(device, tag, input_transfer_bytes, 0, query, &mut injected)
                && self.alloc_or_inject(
                    device,
                    tag,
                    footprint - 3 * stage,
                    0,
                    query,
                    &mut injected,
                );
            if !ok {
                self.abort_task(task, injected)?;
                return Ok(());
            }

            // Base columns: probe the device's cache, transfer on miss. A
            // permanent transfer fault aborts the operator to the CPU,
            // exactly like a failed allocation.
            match self.stage_base_columns(task, device, now)? {
                Some(end) => ready_at = ready_at.max(end),
                None => return Ok(()), // aborted inside
            }
            // Host-resident intermediate inputs cross the bus.
            if input_transfer_bytes > 0 {
                match self.xfer(
                    now,
                    device,
                    robustq_sim::Direction::HostToDevice,
                    TransferKind::Input,
                    input_transfer_bytes,
                    Some(query),
                    true,
                ) {
                    Some(end) => ready_at = ready_at.max(end),
                    None => {
                        self.abort_task(task, true)?;
                        return Ok(());
                    }
                }
            }

            let duration =
                self.cost.duration(class, DeviceKind::CoProcessor, cost_in, cost_out);
            let solo = duration.as_nanos() as f64;
            let t = &mut self.tasks[task];
            t.kernel_duration = duration;
            t.remaining_ns = solo;
            // Remaining-time thresholds for the three later allocation
            // stages, ascending so the largest is popped first.
            t.milestones = vec![0.25 * solo, 0.5 * solo, 0.75 * solo];
            t.stage_bytes = stage;
            let epoch = t.epoch;
            self.events.push(ready_at, Ev::ComputeStart { task, epoch });
        } else {
            // CPU: pull any co-processor-resident inputs back to the
            // host. These transfers are durable — the CPU is the fallback
            // device, so its inputs must always arrive.
            let query = self.tasks[task].query;
            for &c in &self.tasks[task].children.clone() {
                if self.tasks[c].output_device.is_some_and(DeviceId::is_coprocessor) {
                    let end = self.pull_child_to_host(c, query, now);
                    ready_at = ready_at.max(end);
                }
            }
            let duration = self.cost.duration(class, DeviceKind::Cpu, cost_in, cost_out);
            let t = &mut self.tasks[task];
            t.kernel_duration = duration;
            t.remaining_ns = duration.as_nanos() as f64;
            t.milestones = Vec::new();
            t.stage_bytes = 0;
            let epoch = t.epoch;
            self.events.push(ready_at, Ev::ComputeStart { task, epoch });
        }
        Ok(())
    }

    /// Upper bound on staging fan-out; per-chunk launch overhead makes
    /// finer partitions pointless long before this.
    const MAX_STAGE_CHUNKS: u32 = 4096;

    /// Worst-case (first-chunk) device bytes of an `n`-way staged
    /// execution: the chunk's input slice, its working footprint and its
    /// retained chunk result. `partition_bytes` hands remainders to the
    /// low chunks, so chunk 0 dominates.
    fn staged_chunk_bytes(
        &self,
        class: robustq_sim::OpClass,
        total_in: u64,
        cost_in: u64,
        cost_out: u64,
        bytes_out: u64,
        n: u32,
    ) -> u64 {
        let w = self.cost.gpu_working_footprint(
            class,
            partition_bytes(cost_in, 0, n),
            partition_bytes(cost_out, 0, n),
        );
        partition_bytes(total_in, 0, n) + w + partition_bytes(bytes_out, 0, n)
    }

    /// Chunked out-of-core execution of a larger-than-heap operator:
    /// partition → transfer → execute → evict over the device's existing
    /// link machinery (DESIGN.md §15).
    ///
    /// The operator takes one fixed working allocation sized for a single
    /// chunk, streams its input in chunk-sized slices over the host link
    /// (compute starts when the first chunk lands; later chunks overlap
    /// compute behind it on the FIFO), runs for the sum of per-chunk
    /// kernel durations, and at completion streams each chunk's result
    /// back to the host (`complete_task`'s evict phase). Base columns
    /// travel inside the chunk stream and bypass the column cache — a
    /// working set that outgrows the heap would only thrash it. The CPU
    /// fallback remains for the case where even one chunk cannot fit.
    fn start_staged_task(
        &mut self,
        task: usize,
        device: DeviceId,
        host_input_bytes: u64,
        cost_in: u64,
        cost_out: u64,
    ) -> Result<(), EngineError> {
        let now = self.now;
        let query = self.tasks[task].query;
        let class = self.tasks[task].node.op.op_class();
        let bytes_out = self.tasks[task].output_bytes;
        let shard = self.tasks[task].node.op.shard_spec();
        let base_bytes: u64 = self.tasks[task]
            .base_columns
            .clone()
            .iter()
            .map(|&col| {
                let full = self.db.column_size(col);
                match shard {
                    Some(s) => partition_bytes(full, s.index, s.of),
                    None => full,
                }
            })
            .sum();
        let total_in = host_input_bytes + base_bytes;
        let cap = self.heaps.device(device).capacity();
        let chunks = (2..=Self::MAX_STAGE_CHUNKS).find(|&n| {
            self.staged_chunk_bytes(class, total_in, cost_in, cost_out, bytes_out, n) <= cap
        });
        let Some(chunks) = chunks else {
            // Even one chunk cannot fit the device heap: the CPU is the
            // only remaining route.
            self.staging.oversize_fallbacks += 1;
            return self.abort_task(task, false);
        };
        let chunk_total =
            self.staged_chunk_bytes(class, total_in, cost_in, cost_out, bytes_out, chunks);
        let tag = Self::working_tag(task);
        let mut injected = false;
        if !self.alloc_or_inject(device, tag, chunk_total, 0, query, &mut injected) {
            // The chunk-sized set fits an *empty* heap but not the
            // current occupancy — ordinary contention abort.
            return self.abort_task(task, injected);
        }
        self.tracer.emit(TraceEvent::OpStaged {
            query: query as u32,
            task: task as u32,
            device,
            chunks,
            chunk_bytes: chunk_total,
            at: now,
        });

        // Transfer phase: chunk slices stream back-to-back over the host
        // link; compute may begin once the first slice arrived.
        let mut ready_at = now;
        let mut duration = VirtualTime::ZERO;
        for i in 0..chunks {
            let cin = partition_bytes(total_in, i, chunks);
            if cin > 0 {
                match self.xfer(
                    now,
                    device,
                    Direction::HostToDevice,
                    TransferKind::Input,
                    cin,
                    Some(query),
                    true,
                ) {
                    Some(end) => {
                        if i == 0 {
                            ready_at = ready_at.max(end);
                        }
                    }
                    None => {
                        return self.abort_task(task, true);
                    }
                }
            }
            // Execute phase is costed per chunk: each slice pays its own
            // launch overhead, so the adaptive model sees the real
            // (overhead-heavier) staged throughput.
            duration += self.cost.duration(
                class,
                DeviceKind::CoProcessor,
                partition_bytes(cost_in, i, chunks),
                partition_bytes(cost_out, i, chunks),
            );
        }

        let t = &mut self.tasks[task];
        t.kernel_duration = duration;
        t.remaining_ns = duration.as_nanos() as f64;
        // One fixed chunk-sized allocation: no growth stages, no
        // mid-flight heap aborts.
        t.milestones = Vec::new();
        t.stage_bytes = 0;
        t.staged_chunks = chunks;
        let epoch = t.epoch;
        self.events.push(ready_at, Ev::ComputeStart { task, epoch });
        Ok(())
    }

    pub(crate) fn on_compute_start(&mut self, task: usize, epoch: u32) -> Result<(), EngineError> {
        if self.tasks[task].epoch != epoch || self.tasks[task].status != Status::Running {
            return Ok(());
        }
        let device = self.tasks[task].device.expect("computing task is placed");
        let query = self.tasks[task].query;
        let class = self.tasks[task].node.op.op_class();
        if self.fault.abort_kernel(class, device) {
            // Injected kernel fault: surfaces as an ordinary abort.
            self.note_injected(Some(query), robustq_trace::FaultKind::KernelAbort, self.now);
            self.abort_task(task, true)?;
            return Ok(());
        }
        if let Some(until) = self.fault.stall_until(device, self.now) {
            // The worker slot is stalled: the kernel launch is deferred
            // to the end of the window, in virtual time.
            let wait = until - self.now;
            self.note_injected(
                Some(query),
                robustq_trace::FaultKind::Stall { wait },
                self.now,
            );
            self.note_injected_wasted(Some(query), wait);
            self.events.push(until, Ev::ComputeStart { task, epoch });
            return Ok(());
        }
        self.advance(device);
        self.devices.rt_mut(device).compute.push(task);
        self.reschedule(device);
        Ok(())
    }

    pub(crate) fn on_device_tick(
        &mut self,
        device: DeviceId,
        version: u64,
    ) -> Result<(), EngineError> {
        if self.devices.rt(device).tick_version != version {
            return Ok(());
        }
        self.advance(device);
        self.settle(device)?;
        self.reschedule(device);
        Ok(())
    }

    /// Progress every computing task on `device` up to `self.now`:
    /// `n` concurrent tasks each run at rate `1/n` (processor sharing).
    pub(crate) fn advance(&mut self, device: DeviceId) {
        let rt = self.devices.rt_mut(device);
        let dt = self.now.saturating_sub(rt.last_update);
        rt.last_update = self.now;
        let n = rt.compute.len();
        if n == 0 || dt == VirtualTime::ZERO {
            return;
        }
        let dec = dt.as_nanos() as f64 / n as f64;
        for &t in &self.devices.rt(device).compute {
            self.tasks[t].remaining_ns -= dec;
        }
    }

    /// Process every due allocation stage and completion on `device`.
    pub(crate) fn settle(&mut self, device: DeviceId) -> Result<(), EngineError> {
        loop {
            // Next due action in deterministic compute-set order.
            let mut action: Option<(usize, bool)> = None; // (task, is_completion)
            for &t in &self.devices.rt(device).compute {
                let rem = self.tasks[t].remaining_ns;
                if rem <= Self::EPS_NS {
                    action = Some((t, true));
                    break;
                }
                if let Some(&thr) = self.tasks[t].milestones.last() {
                    if rem <= thr + Self::EPS_NS {
                        action = Some((t, false));
                        break;
                    }
                }
            }
            let Some((t, done)) = action else {
                return Ok(());
            };
            if done {
                self.devices.rt_mut(device).compute.retain(|&x| x != t);
                self.complete_task(t)?;
            } else {
                self.tasks[t].milestones.pop();
                let bytes = self.tasks[t].stage_bytes;
                // Growth stages are numbered 1..=3 after the pop.
                let stage = (3 - self.tasks[t].milestones.len()) as u32;
                let query = self.tasks[t].query;
                let mut injected = false;
                if !self.alloc_or_inject(
                    device,
                    Self::working_tag(t),
                    bytes,
                    stage,
                    query,
                    &mut injected,
                ) {
                    // Mid-flight out-of-memory: the heap-contention abort.
                    self.devices.rt_mut(device).compute.retain(|&x| x != t);
                    self.abort_task(t, injected)?;
                }
            }
        }
    }

    /// Re-arm the device's next tick: the earliest completion or
    /// allocation-stage crossing under the current sharing factor.
    pub(crate) fn reschedule(&mut self, device: DeviceId) {
        self.devices.rt_mut(device).tick_version += 1;
        let rt = self.devices.rt(device);
        let n = rt.compute.len();
        if n == 0 {
            return;
        }
        let mut min_dt = f64::INFINITY;
        for &t in &rt.compute {
            let rem = self.tasks[t].remaining_ns;
            let target = self.tasks[t].milestones.last().copied().unwrap_or(0.0);
            min_dt = min_dt.min((rem - target).max(0.0));
        }
        let dt = (min_dt * n as f64).ceil().max(1.0) as u64;
        let version = rt.tick_version;
        self.events.push(
            self.now + VirtualTime::from_nanos(dt),
            Ev::DeviceTick { device, version },
        );
    }
}
