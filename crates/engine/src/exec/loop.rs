//! The discrete-event core: simulation state and the event loop.
//!
//! [`Sim`] owns the whole per-run state — task graph, device runtimes,
//! heaps, caches, links, fault plan, metrics and tracer — and drains the
//! event queue until the workload completes. The surrounding layers
//! contribute focused `impl Sim` blocks:
//!
//! * `device_rt` — per-device ready queues, worker slots and the
//!   processor-sharing compute sets,
//! * `transfer` — interconnect staging and cache consults,
//! * `memory` — staged heap allocation, aborts and completions,
//! * `admission` — session lifecycle and admission control.

use crate::batch::LazyChunk;
use crate::error::EngineError;
use crate::exec::costmodel::ModelUpdate;
use crate::exec::device_rt::DeviceSet;
use crate::exec::executor::{ExecOptions, RunOutcome};
use crate::exec::memory::HeapSet;
use crate::exec::metrics::{FaultCounters, QueryOutcome, RunMetrics, StagingStats};
use crate::exec::policy::{PlacementPolicy, TaskInfo};
use crate::exec::task::TaskNode;
use crate::plan::PlanNode;
use robustq_sim::{
    CacheSet, CostModel as SimCostModel, DeviceId, Direction, EventQueue, FaultPlan,
    Interconnect, SimConfig, VirtualTime,
};
use robustq_storage::{ColumnId, Database};
use robustq_trace::Tracer;
use std::collections::VecDeque;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Status {
    Pending,
    Queued,
    Running,
    Done,
}

pub(crate) struct TaskState {
    pub(crate) node: TaskNode,
    pub(crate) query: usize,
    /// Children / parent as *global* task indices.
    pub(crate) children: Vec<usize>,
    pub(crate) parent: Option<usize>,
    pub(crate) pending_children: usize,
    pub(crate) annotation: Option<DeviceId>,
    pub(crate) forced_cpu: bool,
    pub(crate) epoch: u32,
    pub(crate) status: Status,
    pub(crate) device: Option<DeviceId>,
    /// When the task last entered a ready queue (trace queue-wait).
    pub(crate) queued_at: VirtualTime,
    pub(crate) start_time: VirtualTime,
    pub(crate) kernel_duration: VirtualTime,
    pub(crate) bytes_in: u64,
    pub(crate) est_bytes_in: u64,
    pub(crate) est_bytes_out: u64,
    /// Remaining solo-execution nanoseconds (processor sharing).
    pub(crate) remaining_ns: f64,
    /// Pending allocation-stage thresholds, ascending: a stage fires when
    /// `remaining_ns` drops to the popped (largest) threshold.
    pub(crate) milestones: Vec<f64>,
    /// Bytes allocated per remaining stage.
    pub(crate) stage_bytes: u64,
    /// Non-zero while the operator runs as a chunked out-of-core staging
    /// pipeline: the number of partitions its input/output stream in.
    pub(crate) staged_chunks: u32,
    pub(crate) base_columns: Vec<ColumnId>,
    /// The kernel result, kept lazy (base + selection vector) until a
    /// pipeline breaker or the query root forces materialization. Logical
    /// `num_rows`/`byte_size` are identical either way, so all simulated
    /// timing below is unaffected.
    pub(crate) output: Option<LazyChunk>,
    pub(crate) output_bytes: u64,
    pub(crate) output_rows: u64,
    pub(crate) output_device: Option<DeviceId>,
    pub(crate) load_contribution: VirtualTime,
}

/// The feed-table row range a windowed query execution scans:
/// `[lo, hi)` of the table at registration index `table`. Scans of any
/// other table (static dimensions) read in full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct QueryWindow {
    /// Registration index of the windowed (fed) table.
    pub(crate) table: u32,
    /// First feed-table row in the window.
    pub(crate) lo: u64,
    /// One past the last feed-table row in the window.
    pub(crate) hi: u64,
}

pub(crate) struct QueryState {
    pub(crate) session: usize,
    pub(crate) seq: usize,
    pub(crate) root: usize,
    /// First global task index of this query's graph (recurring-slot
    /// arithmetic: `task - first_task` identifies "the same operator"
    /// across window ticks of a standing query).
    pub(crate) first_task: usize,
    /// The window this execution scans, for standing-query ticks.
    pub(crate) window: Option<QueryWindow>,
    /// Standing-query registration index, if this execution is a tick.
    pub(crate) standing: Option<u32>,
    /// When the session issued the query (queueing for admission counts
    /// toward latency — the paper's admission-control comparison measures
    /// response time from submission).
    pub(crate) submit_time: VirtualTime,
    /// When admission control let the query start executing
    /// (`admit_time - submit_time` is the admission wait).
    pub(crate) admit_time: VirtualTime,
}

/// One query waiting for admission: who submitted it, its position in
/// that session's stream, the plan and the submission instant.
pub(crate) struct Submission {
    pub(crate) session: usize,
    pub(crate) seq: usize,
    pub(crate) plan: PlanNode,
    pub(crate) submit: VirtualTime,
    /// Feed-table window, for standing-query ticks (`seq` is the tick).
    pub(crate) window: Option<QueryWindow>,
    /// Standing-query registration index, for standing-query ticks.
    pub(crate) standing: Option<u32>,
}

pub(crate) enum Ev {
    /// Transfers finished; the operator joins its device's compute set.
    ComputeStart { task: usize, epoch: u32 },
    /// Re-evaluate a device's compute set (next completion or
    /// allocation-stage crossing under processor sharing).
    DeviceTick { device: DeviceId, version: u64 },
    QueryDone { query: usize },
    /// An open-loop arrival fires: the indexed entry of `Sim::arrivals`
    /// is submitted for admission (DESIGN.md §13).
    Arrive { arrival: usize },
    /// A feed append batch commits: the indexed entry of
    /// `Sim::feed.appends` bumps column epochs and invalidates stale
    /// cache residency (the data itself is pre-built; see `exec::feed`).
    Append { index: usize },
    /// A standing query's window closes: the indexed entry of
    /// `Sim::feed.fires` is submitted for admission.
    WindowFire { fire: usize },
}

pub(crate) struct Sim<'a, 'p> {
    pub(crate) db: &'a Database,
    pub(crate) config: &'a SimConfig,
    pub(crate) policy: &'p mut dyn PlacementPolicy,
    pub(crate) opts: &'a ExecOptions,
    pub(crate) cost: SimCostModel,
    /// One column cache per co-processor (caller-owned: warm across runs).
    pub(crate) caches: &'a mut CacheSet,
    /// One operator heap per co-processor.
    pub(crate) heaps: HeapSet,
    /// One host link per co-processor.
    pub(crate) link: Interconnect,
    pub(crate) fault: FaultPlan,
    /// Per-query fault counters, indexed by query id.
    pub(crate) query_faults: Vec<FaultCounters>,
    pub(crate) events: EventQueue<Ev>,
    pub(crate) tasks: Vec<TaskState>,
    pub(crate) queries: Vec<QueryState>,
    /// Per-device ready queues, worker slots and compute sets.
    pub(crate) devices: DeviceSet,
    pub(crate) sessions: Vec<VecDeque<PlanNode>>,
    /// Next per-session sequence number (submission order within the
    /// session, closed- and open-loop alike).
    pub(crate) session_seq: Vec<usize>,
    /// Open-loop arrival schedule, indexed by [`Ev::Arrive`]; entries are
    /// taken when their event fires. Empty in closed-loop runs.
    pub(crate) arrivals: Vec<Option<Submission>>,
    pub(crate) admission_queue: VecDeque<Submission>,
    /// Feed replay and standing-query state (empty for batch runs).
    pub(crate) feed: crate::exec::feed::FeedRt,
    pub(crate) active_queries: usize,
    pub(crate) completed_since_update: usize,
    pub(crate) metrics: RunMetrics,
    pub(crate) outcomes: Vec<QueryOutcome>,
    /// Predicted-vs-actual samples from the policy's cost model, in
    /// operator-completion order (side data: not part of `RunMetrics`).
    pub(crate) model_samples: Vec<ModelUpdate>,
    /// Chunked-staging counters (side data: not part of `RunMetrics`).
    pub(crate) staging: StagingStats,
    pub(crate) now: VirtualTime,
    pub(crate) tracer: Tracer,
}

impl Sim<'_, '_> {
    /// Tolerance for floating-point progress comparisons (nanoseconds).
    pub(crate) const EPS_NS: f64 = 1.0;

    pub(crate) fn run(&mut self, total_queries: usize) -> Result<RunOutcome, EngineError> {
        // The caches may be warm from a previous run on the same handle;
        // metrics report this run's probes only (matching the trace).
        let (base_hits, base_misses) = self.cache_hit_miss();
        let trace_mark = self.tracer.mark();
        // Pick the cost model before anything executes; policies keep
        // their learned state when the kind is unchanged (warm-up →
        // measured run continuity).
        self.policy.set_cost_model(self.opts.cost_model);
        // Initial data placement from whatever statistics already exist
        // (the paper pre-loads access structures before each benchmark,
        // Section 6.1) — free of charge, like `ExecOptions::preload`.
        let _ = self.policy.update_data_placement(
            self.db,
            self.caches,
            &self.feed.col_epochs,
        );

        // Kick off. Closed loop: the first query of every session is a
        // candidate. Open loop: every arrival is scheduled at its instant
        // (the heap keeps insertion order at equal timestamps, so
        // same-instant arrivals submit in schedule order). Feed appends
        // are pushed before window fires so a window closing at the very
        // instant of an append observes the post-append epoch.
        for s in 0..self.sessions.len() {
            if let Some(plan) = self.sessions[s].pop_front() {
                let seq = self.session_seq[s];
                self.session_seq[s] += 1;
                self.submit_query(Submission {
                    session: s,
                    seq,
                    plan,
                    submit: self.now,
                    window: None,
                    standing: None,
                });
            }
        }
        for i in 0..self.feed.appends.len() {
            self.events.push(self.feed.appends[i].at, Ev::Append { index: i });
        }
        for i in 0..self.feed.fires.len() {
            self.events.push(self.feed.fires[i].at, Ev::WindowFire { fire: i });
        }
        for (i, slot) in self.arrivals.iter().enumerate() {
            if let Some(sub) = slot {
                self.events.push(sub.submit, Ev::Arrive { arrival: i });
            }
        }
        self.process_admissions()?;

        while let Some((t, ev)) = self.events.pop() {
            self.now = t;
            match ev {
                Ev::ComputeStart { task, epoch } => self.on_compute_start(task, epoch)?,
                Ev::DeviceTick { device, version } => {
                    self.on_device_tick(device, version)?
                }
                Ev::QueryDone { query } => self.on_query_done(query)?,
                Ev::Arrive { arrival } => self.on_arrive(arrival)?,
                Ev::Append { index } => self.on_append(index),
                Ev::WindowFire { fire } => self.on_window_fire(fire)?,
            }
            #[cfg(debug_assertions)]
            self.audit();
        }

        if self.outcomes.len() + self.metrics.shed as usize != total_queries {
            return Err(EngineError::Stalled {
                completed: self.outcomes.len(),
                total: total_queries,
            });
        }
        self.metrics.queries = self.outcomes.len();
        let (hits, misses) = self.cache_hit_miss();
        self.metrics.cache_hits = hits - base_hits;
        self.metrics.cache_misses = misses - base_misses;
        self.metrics.gpu_heap_peak = self.heaps.peak_max();
        self.metrics.gpu_heap_leaked = self.heaps.used_total();
        self.metrics.fault_stats = *self.fault.stats();
        self.metrics.link_h2d = self.link.total_stats(Direction::HostToDevice);
        self.metrics.link_d2h = self.link.total_stats(Direction::DeviceToHost);
        debug_assert_eq!(
            self.heaps.used_total(),
            0,
            "device heaps must drain once every query completed"
        );
        // Cross-check: the metrics re-derived from this run's event
        // stream must match the incrementally maintained counters. Only
        // possible with tracing enabled and no dropped events.
        #[cfg(debug_assertions)]
        if let Some(events) = self.tracer.events_since(trace_mark) {
            debug_assert_eq!(
                RunMetrics::from_events(&events),
                self.metrics,
                "trace-derived metrics diverge from legacy counters"
            );
        }
        #[cfg(not(debug_assertions))]
        let _ = trace_mark;
        Ok(RunOutcome {
            metrics: self.metrics.clone(),
            outcomes: std::mem::take(&mut self.outcomes),
            model_samples: std::mem::take(&mut self.model_samples),
            staging: self.staging,
        })
    }

    /// Cache hits/misses summed over every co-processor cache.
    pub(crate) fn cache_hit_miss(&self) -> (u64, u64) {
        let mut hits = 0;
        let mut misses = 0;
        for (_, cache) in self.caches.iter() {
            let (h, m) = cache.hit_miss();
            hits += h;
            misses += m;
        }
        (hits, misses)
    }

    pub(crate) fn task_info(&self, task: usize, compile_time: bool) -> TaskInfo {
        let t = &self.tasks[task];
        let children_devices = if compile_time {
            Vec::new()
        } else {
            t.children
                .iter()
                .filter_map(|&c| self.tasks[c].output_device)
                .collect()
        };
        let children_bytes = t
            .children
            .iter()
            .map(|&c| {
                if compile_time {
                    self.tasks[c].est_bytes_out
                } else {
                    self.tasks[c].output_bytes
                }
            })
            .collect();
        let q = &self.queries[t.query];
        TaskInfo {
            query: t.query,
            task,
            op_class: t.node.op.op_class(),
            base_columns: t.base_columns.clone(),
            bytes_in: if compile_time { t.est_bytes_in } else { t.bytes_in },
            bytes_out_estimate: t.est_bytes_out,
            children_devices,
            children_bytes,
            children_tasks: t.children.clone(),
            was_aborted: t.forced_cpu,
            shard: t.node.op.shard_spec(),
            recurring: q.standing.map(|s| (s, (task - q.first_task) as u32)),
        }
    }

    /// Heap, cache and link accounting invariants, re-checked after
    /// every simulation event in debug builds (tests and chaos runs) —
    /// per co-processor, so a K-device fleet is audited device by device.
    #[cfg(debug_assertions)]
    pub(crate) fn audit(&self) {
        for (device, heap) in self.heaps.iter() {
            assert_eq!(
                heap.used(),
                heap.accounted_bytes(),
                "{device}: heap conservation: used must equal the sum of live tags"
            );
            assert!(heap.used() <= heap.capacity(), "{device}: heap overcommitted");
        }
        for (device, cache) in self.caches.iter() {
            assert_eq!(
                cache.used(),
                cache.accounted_bytes(),
                "{device}: cache accounting: used must equal the sum of resident entries"
            );
            assert!(
                cache.used() <= cache.capacity(),
                "{device}: cache overcommitted"
            );
        }
        for device in self.config.topology.coprocessors() {
            for dir in [Direction::HostToDevice, Direction::DeviceToHost] {
                let s = self.link.stats(device, dir);
                assert!(
                    s.transfers > 0 || (s.bytes == 0 && s.busy_time == VirtualTime::ZERO),
                    "{device}: link stats: traffic without transfers"
                );
                // Each transfer advances busy_until by at least its
                // service time, so the FIFO horizon dominates accumulated
                // service.
                assert!(
                    self.link.busy_until(device, dir) >= s.busy_time,
                    "{device}: link busy_until fell behind accumulated service time"
                );
            }
        }
    }
}

/// Construct a compile-time/run-time [`PolicyCtx`] from `$sim`'s fields.
///
/// A macro instead of a `&self` method so the borrows stay field-precise:
/// the context borrows `caches`/`heaps`/`devices` while the caller holds
/// `policy` mutably, which a whole-`Sim` borrow would forbid. Free heap
/// bytes report `u64::MAX` for the CPU's unbounded host memory.
macro_rules! policy_ctx {
    ($sim:expr) => {
        PolicyCtx {
            db: $sim.db,
            topology: &$sim.config.topology,
            caches: &*$sim.caches,
            queued_work: $sim.devices.load_table(),
            running: $sim.devices.running_table(),
            heap_free: PerDevice::from_fn($sim.config.topology.device_count(), |d| {
                if d.is_coprocessor() {
                    $sim.heaps.device(d).free_bytes()
                } else {
                    u64::MAX
                }
            }),
            now: $sim.now,
            col_epochs: &$sim.feed.col_epochs,
        }
    };
}
pub(crate) use policy_ctx;
