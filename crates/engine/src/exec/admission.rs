//! Session lifecycle and admission control.
//!
//! Sessions run closed-loop — each submits its next query when the
//! previous one completes — or open-loop, where a pre-computed arrival
//! schedule submits queries at fixed virtual-time instants regardless of
//! progress (DESIGN.md §13). Admission control (the reference mechanism
//! of Section 6.2.2) bounds how many queries execute concurrently;
//! queries waiting for admission accrue latency from their submission
//! instant. Under overload the queue-depth cap and admission timeout
//! shed submissions instead of queueing unboundedly. Admission is also
//! where the placement policy speaks: a compile-time `plan_query` pass
//! at admission, and `place_ready` for every task the pass left
//! unannotated.

use crate::error::EngineError;
use crate::exec::event_loop::{
    policy_ctx, QueryState, QueryWindow, Sim, Status, Submission, TaskState,
};
use crate::exec::metrics::{FaultCounters, QueryOutcome};
use crate::exec::policy::{PolicyCtx, TaskInfo};
use crate::exec::task::{flatten, ShardSpec, TaskNode, TaskOp};
use robustq_sim::{DeviceId, Direction, PerDevice, VirtualTime};
use robustq_storage::ColumnId;
use robustq_trace::{EstVec, PlacePhase, ShedReason, TraceEvent, TransferKind};

/// Rewrite a flattened task graph for intra-operator sharding: every leaf
/// scan whose estimated input is at least `min_bytes` becomes `ways`
/// [`TaskOp::ScanShard`] tasks plus one [`TaskOp::MergeShards`] barrier
/// that takes the scan's place in the graph. The rewrite preserves the
/// postorder invariants (children before parents, root last) and leaves
/// estimates aligned: shards get `1/ways` of the scan's input estimate,
/// the merge consumes and reproduces the scan's output estimate.
pub(crate) fn expand_shards(
    nodes: Vec<TaskNode>,
    estimates: Vec<(f64, f64)>,
    ways: usize,
    min_bytes: f64,
) -> (Vec<TaskNode>, Vec<(f64, f64)>) {
    if ways < 2 {
        return (nodes, estimates);
    }
    let mut out: Vec<TaskNode> = Vec::with_capacity(nodes.len());
    let mut est: Vec<(f64, f64)> = Vec::with_capacity(nodes.len());
    // New index of each old node (the merge barrier stands in for a
    // sharded scan).
    let mut remap: Vec<usize> = Vec::with_capacity(nodes.len());
    for (i, node) in nodes.iter().enumerate() {
        let e = estimates[i];
        let shardable = node.children.is_empty()
            && matches!(node.op, TaskOp::Scan { .. })
            && e.0 >= min_bytes;
        if !shardable {
            remap.push(out.len());
            out.push(node.clone());
            est.push(e);
            continue;
        }
        let TaskOp::Scan { table, columns, predicate } = node.op.clone() else {
            unreachable!("shardable implies scan");
        };
        let first = out.len();
        for index in 0..ways {
            out.push(TaskNode {
                op: TaskOp::ScanShard {
                    table: table.clone(),
                    columns: columns.clone(),
                    predicate: predicate.clone(),
                    shard: ShardSpec { index: index as u32, of: ways as u32 },
                },
                children: Vec::new(),
                parent: None, // set just below
            });
            est.push((e.0 / ways as f64, e.1 / ways as f64));
        }
        let merge = out.len();
        out.push(TaskNode {
            op: TaskOp::MergeShards { columns },
            children: (first..merge).collect(),
            parent: node.parent, // remapped in the fix-up pass
        });
        for shard in &mut out[first..merge] {
            shard.parent = Some(merge);
        }
        est.push((e.1, e.1));
        remap.push(merge);
    }
    // Fix up edges that still point into the old graph. Shard nodes and
    // merge children are already final; everything else goes through
    // `remap`.
    for (i, node) in nodes.iter().enumerate() {
        let n = remap[i];
        if !matches!(out[n].op, TaskOp::MergeShards { .. }) {
            out[n].children = node.children.iter().map(|&c| remap[c]).collect();
        }
        out[n].parent = node.parent.map(|p| remap[p]);
    }
    (out, est)
}

impl Sim<'_, '_> {
    /// Offer a submission to the admission queue, shedding it on the spot
    /// when the queue is at its depth cap (open-loop overload protection,
    /// DESIGN.md §13). Default options (`queue_cap == usize::MAX`) never
    /// shed, keeping closed-loop runs byte-identical to earlier releases.
    pub(crate) fn submit_query(&mut self, sub: Submission) {
        if self.admission_queue.len() >= self.opts.queue_cap {
            self.shed(sub, ShedReason::QueueFull);
        } else {
            self.admission_queue.push_back(sub);
        }
    }

    /// Drop a submission: count it, trace it, and — closed loop only —
    /// let the issuing session offer its next query anyway, so a shed
    /// never deadlocks a session's remaining stream.
    fn shed(&mut self, sub: Submission, reason: ShedReason) {
        self.metrics.shed += 1;
        self.tracer.emit(TraceEvent::QueryShed {
            session: sub.session as u32,
            seq: sub.seq as u32,
            submit: sub.submit,
            reason,
            at: self.now,
        });
        if let Some(plan) =
            self.sessions.get_mut(sub.session).and_then(|s| s.pop_front())
        {
            let seq = self.session_seq[sub.session];
            self.session_seq[sub.session] += 1;
            self.submit_query(Submission {
                session: sub.session,
                seq,
                plan,
                submit: self.now,
                window: None,
                standing: None,
            });
        }
    }

    /// An open-loop arrival fires: take the scheduled submission and
    /// offer it for admission.
    pub(crate) fn on_arrive(&mut self, arrival: usize) -> Result<(), EngineError> {
        let sub = self.arrivals[arrival].take().expect("arrival fires once");
        debug_assert_eq!(sub.submit, self.now);
        self.submit_query(sub);
        self.process_admissions()
    }

    pub(crate) fn process_admissions(&mut self) -> Result<(), EngineError> {
        while self.active_queries < self.opts.max_concurrent_queries {
            let Some(sub) = self.admission_queue.pop_front() else {
                break;
            };
            // Lazy admission timeout: a query that waited too long is
            // shed the moment it reaches the head of the queue — its
            // client would have given up on the response anyway.
            if self.opts.admission_timeout > VirtualTime::ZERO
                && self.now.saturating_sub(sub.submit) >= self.opts.admission_timeout
            {
                self.shed(sub, ShedReason::Timeout);
                continue;
            }
            self.admit_query(sub)?;
        }
        Ok(())
    }

    pub(crate) fn admit_query(&mut self, sub: Submission) -> Result<(), EngineError> {
        let Submission { session, seq, plan, submit: submit_time, window, standing } =
            sub;
        let query = self.queries.len();
        let base = self.tasks.len();
        let nodes = flatten(&plan);
        let mut estimates =
            crate::exec::executor::postorder_estimates(&plan, self.db);
        debug_assert_eq!(nodes.len(), estimates.len());
        // Windowed ticks scan only the window's slice of the feed table:
        // scale the leaf estimates so sharding and compile-time placement
        // see the pruned input, not the whole (ever-growing) table.
        if let Some(w) = window {
            let frac = self.window_fraction(w);
            for (node, est) in nodes.iter().zip(estimates.iter_mut()) {
                let windowed_leaf = matches!(
                    &node.op,
                    TaskOp::Scan { table, .. }
                        if self.db.table_position(table) == Some(w.table as usize)
                );
                if windowed_leaf {
                    est.0 *= frac;
                    est.1 *= frac;
                }
            }
        }
        // Intra-operator sharding (DESIGN.md §12): qualifying leaf scans
        // fan out across the co-processor fleet. One shard per
        // co-processor at most — with fewer than two there is nothing to
        // spread, and the graph stays byte-identical to sharding off.
        let ways = self
            .opts
            .shard_ways
            .min(self.config.topology.device_count().saturating_sub(1));
        let (nodes, estimates) =
            expand_shards(nodes, estimates, ways, self.opts.shard_min_bytes);
        let shard_fanouts: Vec<(usize, u32)> = nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n.op, TaskOp::MergeShards { .. }))
            .map(|(i, n)| (base + i, n.children.len() as u32))
            .collect();

        for (node, est) in nodes.into_iter().zip(estimates) {
            let base_columns = match node.op.scan_access() {
                Some((table, cols)) => cols
                    .iter()
                    .map(|c| {
                        self.db
                            .require_column_id(table, c)
                            .map_err(|e| EngineError::Storage(e.to_string()))
                    })
                    .collect::<Result<Vec<_>, _>>()?,
                None => Vec::new(),
            };
            let children: Vec<usize> = node.children.iter().map(|&c| base + c).collect();
            let parent = node.parent.map(|p| base + p);
            let pending = children.len();
            self.tasks.push(TaskState {
                node,
                query,
                children,
                parent,
                pending_children: pending,
                annotation: None,
                forced_cpu: false,
                epoch: 0,
                status: Status::Pending,
                device: None,
                queued_at: VirtualTime::ZERO,
                start_time: VirtualTime::ZERO,
                kernel_duration: VirtualTime::ZERO,
                bytes_in: 0,
                est_bytes_in: est.0 as u64,
                est_bytes_out: est.1 as u64,
                remaining_ns: 0.0,
                milestones: Vec::new(),
                stage_bytes: 0,
                staged_chunks: 0,
                base_columns,
                output: None,
                output_bytes: 0,
                output_rows: 0,
                output_device: None,
                load_contribution: VirtualTime::ZERO,
            });
        }
        let root = self.tasks.len() - 1;
        self.queries.push(QueryState {
            session,
            seq,
            root,
            first_task: base,
            window,
            standing,
            submit_time,
            admit_time: self.now,
        });
        self.query_faults.push(FaultCounters::default());
        self.active_queries += 1;
        self.tracer.emit(TraceEvent::QuerySubmit {
            query: query as u32,
            session: session as u32,
            seq: seq as u32,
            at: submit_time,
        });
        if let (Some(s), Some(w)) = (standing, window) {
            // Emitted at admission, once the execution has a query id.
            self.tracer.emit(TraceEvent::WindowFire {
                standing: s,
                tick: seq as u32,
                query: query as u32,
                lo: w.lo,
                hi: w.hi,
                at: submit_time,
            });
        }
        for (merge, shards) in shard_fanouts {
            self.tracer.emit(TraceEvent::ShardFanout {
                query: query as u32,
                task: merge as u32,
                shards,
                at: submit_time,
            });
        }

        // Compile-time placement pass.
        let infos: Vec<TaskInfo> =
            (base..=root).map(|t| self.task_info(t, true)).collect();
        let ctx = policy_ctx!(self);
        let annotations = self.policy.plan_query(&infos, &ctx);
        debug_assert_eq!(annotations.len(), infos.len());
        for (t, a) in (base..=root).zip(annotations) {
            if let Some(p) = a {
                self.tracer.emit(TraceEvent::Placement {
                    query: query as u32,
                    task: t as u32,
                    op: self.tasks[t].node.op.op_class(),
                    phase: PlacePhase::Compile,
                    est: EstVec::from_per_device(&p.est),
                    chosen: p.device,
                    reason: p.reason,
                    at: self.now,
                });
                self.tasks[t].annotation = Some(p.device);
            }
        }

        // Leaves enter the operator stream immediately.
        for t in base..=root {
            if self.tasks[t].children.is_empty() {
                self.make_ready(t)?;
            }
        }
        Ok(())
    }

    /// Fraction of the windowed table a tick actually reads, via segment
    /// pruning: only segments overlapping `[lo, hi)` are touched, and of
    /// those only the overlapping rows. (Segments partition the row
    /// space, so this equals the row fraction — but walking the segment
    /// list is what a real column store would do, and keeps the figure
    /// honest if segment layout ever gains gaps.)
    pub(crate) fn window_fraction(&self, w: QueryWindow) -> f64 {
        let table = &self.db.tables()[w.table as usize];
        let rows = table.num_rows();
        if rows == 0 {
            return 1.0;
        }
        let (lo, hi) = (w.lo as usize, w.hi as usize);
        let overlap: usize = table
            .segments_overlapping(lo, hi)
            .map(|s| s.rows().end.min(hi).saturating_sub(s.rows().start.max(lo)))
            .sum();
        overlap as f64 / rows as f64
    }

    pub(crate) fn exact_bytes_in(&self, task: usize) -> u64 {
        let t = &self.tasks[task];
        if t.children.is_empty() {
            // A windowed tick's feed-table scan reads only the window's
            // slice of each base column (segment pruning).
            let win_frac = match (t.node.op.scan_access(), self.queries[t.query].window)
            {
                (Some((table, _)), Some(w))
                    if self.db.table_position(table) == Some(w.table as usize) =>
                {
                    self.window_fraction(w)
                }
                _ => 1.0,
            };
            let full: u64 =
                t.base_columns.iter().map(|&c| self.db.column_size(c)).sum();
            let full = (full as f64 * win_frac) as u64;
            // A shard reads only its row-range slice of each base column.
            match t.node.op.shard_spec() {
                Some(s) => (full as f64 * s.fraction()) as u64,
                None => full,
            }
        } else {
            t.children.iter().map(|&c| self.tasks[c].output_bytes).sum()
        }
    }

    pub(crate) fn make_ready(&mut self, task: usize) -> Result<(), EngineError> {
        self.tasks[task].bytes_in = self.exact_bytes_in(task);
        let device = if self.tasks[task].forced_cpu {
            DeviceId::Cpu
        } else if let Some(d) = self.tasks[task].annotation {
            d
        } else {
            let info = self.task_info(task, false);
            let ctx = policy_ctx!(self);
            let placed = self.policy.place_ready(&info, &ctx);
            self.tracer.emit(TraceEvent::Placement {
                query: self.tasks[task].query as u32,
                task: task as u32,
                op: self.tasks[task].node.op.op_class(),
                phase: PlacePhase::Ready,
                est: EstVec::from_per_device(&placed.est),
                chosen: placed.device,
                reason: placed.reason,
                at: self.now,
            });
            placed.device
        };
        self.enqueue(task, device);
        self.dispatch(device)?;
        Ok(())
    }

    pub(crate) fn on_query_done(&mut self, query: usize) -> Result<(), EngineError> {
        let q = &self.queries[query];
        let root = q.root;
        let session = q.session;
        let seq = q.seq;
        let submit_time = q.submit_time;
        let admit_time = q.admit_time;
        let latency = self.now - submit_time;
        self.metrics.makespan = self.metrics.makespan.max(self.now);
        let output =
            self.tasks[root].output.take().expect("root output present").materialize();
        self.tracer.emit(TraceEvent::QueryDone {
            query: query as u32,
            session: session as u32,
            seq: seq as u32,
            submit: submit_time,
            admit: admit_time,
            end: self.now,
            rows: output.num_rows() as u64,
        });
        self.outcomes.push(QueryOutcome {
            session,
            seq,
            latency,
            admit_wait: admit_time.saturating_sub(submit_time),
            rows: output.num_rows(),
            checksum: output.checksum(),
            faults: self.query_faults[query],
            result: self.opts.capture_results.then_some(output),
        });
        self.active_queries -= 1;

        // Periodic data-placement background job (Section 3.2). The
        // policy may re-pin any co-processor cache; each newly cached
        // column crosses that device's host link.
        self.completed_since_update += 1;
        if self.opts.placement_update_period > 0
            && self.completed_since_update >= self.opts.placement_update_period
        {
            self.completed_since_update = 0;
            let new_keys = self.policy.update_data_placement(
                self.db,
                self.caches,
                &self.feed.col_epochs,
            );
            for (device, key) in new_keys {
                // Partition keys home a byte-range slice of the column;
                // whole-column keys move it in full.
                let full = self.db.column_size(ColumnId(key.column_id()));
                let bytes = match key.partition_of() {
                    Some((index, of)) => robustq_sim::partition_bytes(full, index, of),
                    None => full,
                };
                // Background placement transfers are durable and not
                // attributed to any one query.
                self.xfer(
                    self.now,
                    device,
                    Direction::HostToDevice,
                    TransferKind::Placement,
                    bytes,
                    None,
                    false,
                );
                self.tracer.emit(TraceEvent::CacheInsert {
                    device,
                    key,
                    bytes,
                    at: self.now,
                });
            }
        }

        // Closed loop: the session submits its next query. Open-loop
        // sessions are virtual (no queue) — `get_mut` is a no-op there.
        if let Some(plan) = self.sessions.get_mut(session).and_then(|s| s.pop_front()) {
            let seq = self.session_seq[session];
            self.session_seq[session] += 1;
            self.submit_query(Submission {
                session,
                seq,
                plan,
                submit: self.now,
                window: None,
                standing: None,
            });
        }
        self.process_admissions()?;
        Ok(())
    }
}
