//! Flattened task graphs.
//!
//! The executor works on a flat, index-addressed form of the plan tree:
//! one [`TaskNode`] per operator, children before parents (postorder), the
//! root last. Query chopping (Section 5.2) falls out naturally: leaves
//! have no dependencies and enter the operator stream immediately; every
//! other task enters when its last child finishes.

use crate::batch::{Chunk, LazyChunk, SelVec};
use crate::expr::Expr;
use crate::ops;
use crate::parallel::{self, ParallelCtx};
use crate::plan::{AggSpec, JoinKind, PlanNode, SortKey};
use crate::predicate::Predicate;
use robustq_sim::OpClass;
use robustq_storage::Database;
use std::ops::Range;
use std::sync::Arc;

/// Which piece of a sharded scan a task covers: shard `index` of `of`
/// equal row-range partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// Zero-based shard index.
    pub index: u32,
    /// Total number of shards the operator was split into.
    pub of: u32,
}

impl ShardSpec {
    /// The half-open row range this shard covers out of `rows` total rows.
    /// Ranges of consecutive shards are disjoint, ordered and exhaustive.
    pub fn row_range(&self, rows: usize) -> Range<usize> {
        let of = self.of.max(1) as usize;
        let lo = rows * self.index as usize / of;
        let hi = rows * (self.index as usize + 1) / of;
        lo..hi
    }

    /// Fraction of the operator's rows this shard covers.
    pub fn fraction(&self) -> f64 {
        1.0 / f64::from(self.of.max(1))
    }
}

/// The operator payload of one task (a plan node without its children).
#[derive(Debug, Clone, PartialEq)]
pub enum TaskOp {
    /// Scan a base table with an optional pushed-down predicate.
    Scan {
        /// Table to read.
        table: String,
        /// Columns to output.
        columns: Vec<String>,
        /// Pushed-down filter, if any.
        predicate: Option<Predicate>,
    },
    /// Filter an intermediate result.
    Select {
        /// The filter.
        predicate: Predicate,
    },
    /// Hash equi-join (build side is the first child).
    HashJoin {
        /// Key column on the build side.
        build_key: String,
        /// Key column on the probe side.
        probe_key: String,
        /// Inner, semi or anti.
        kind: JoinKind,
    },
    /// Compute named expressions.
    Project {
        /// `(output name, expression)` pairs.
        exprs: Vec<(String, Expr)>,
    },
    /// Group-by aggregation.
    Aggregate {
        /// Grouping key columns.
        group_by: Vec<String>,
        /// Aggregates to compute.
        aggs: Vec<AggSpec>,
    },
    /// Sort / top-k.
    Sort {
        /// Sort keys, most significant first.
        keys: Vec<SortKey>,
        /// Keep only the first `limit` rows, if set.
        limit: Option<usize>,
    },
    /// One device-shard of a partitioned table scan: evaluates the pushed
    /// predicate over its [`ShardSpec::row_range`] only and emits the
    /// qualifying positions as a selection vector over the shared base
    /// chunk. Produced by shard expansion at admission, never by planning.
    ScanShard {
        /// Table to read.
        table: String,
        /// Columns the merged scan outputs.
        columns: Vec<String>,
        /// Pushed-down filter, if any.
        predicate: Option<Predicate>,
        /// Which row-range partition this shard covers.
        shard: ShardSpec,
    },
    /// Merge barrier for a sharded scan: concatenates its children's
    /// (disjoint, ordered) shard selection vectors and gathers **once**
    /// from the shared base chunk, so the union is byte-identical to the
    /// unsharded [`TaskOp::Scan`] output — same rows, same order, same
    /// string dictionaries.
    MergeShards {
        /// Columns the merged scan outputs.
        columns: Vec<String>,
    },
}

impl TaskOp {
    /// Cost-model class.
    pub fn op_class(&self) -> OpClass {
        match self {
            TaskOp::Scan { .. } | TaskOp::Select { .. } | TaskOp::ScanShard { .. } => {
                OpClass::Selection
            }
            TaskOp::HashJoin { .. } => OpClass::HashJoin,
            TaskOp::Project { .. } | TaskOp::MergeShards { .. } => OpClass::Projection,
            TaskOp::Aggregate { .. } => OpClass::Aggregation,
            TaskOp::Sort { .. } => OpClass::Sort,
        }
    }

    /// For scans (whole or sharded): table and the full set of base
    /// columns read.
    pub fn scan_access(&self) -> Option<(&str, Vec<String>)> {
        match self {
            TaskOp::Scan { table, columns, predicate }
            | TaskOp::ScanShard { table, columns, predicate, .. } => {
                let mut cols = columns.clone();
                if let Some(p) = predicate {
                    for c in p.referenced_columns() {
                        if !cols.contains(&c) {
                            cols.push(c);
                        }
                    }
                }
                Some((table.as_str(), cols))
            }
            _ => None,
        }
    }

    /// For shard tasks: which partition of the operator this is.
    pub fn shard_spec(&self) -> Option<ShardSpec> {
        match self {
            TaskOp::ScanShard { shard, .. } => Some(*shard),
            _ => None,
        }
    }

    /// Execute the kernel given the children's outputs (build side first
    /// for joins). Serial reference path.
    pub fn execute(&self, children: &[Chunk], db: &Database) -> Result<Chunk, String> {
        self.execute_ctx(children, db, ParallelCtx::serial())
    }

    /// [`TaskOp::execute`] with an explicit parallelism context: scans
    /// with pushed-down predicates, selections, hash joins and
    /// aggregations run through the morsel-parallel kernels
    /// (`crate::parallel`), bit-identical to the serial path.
    pub fn execute_ctx(
        &self,
        children: &[Chunk],
        db: &Database,
        ctx: ParallelCtx,
    ) -> Result<Chunk, String> {
        match self {
            TaskOp::Scan { table, columns, predicate } => {
                let t = db.table(table).ok_or_else(|| format!("no table {table}"))?;
                let (_, read_cols) = self.scan_access().expect("scan op");
                let chunk = Chunk::from_table(t, &read_cols)?;
                let filtered = match predicate {
                    Some(p) => parallel::select(&chunk, p, ctx)?,
                    None => chunk,
                };
                ops::project::keep_columns(&filtered, columns)
            }
            TaskOp::Select { predicate } => {
                parallel::select(&children[0], predicate, ctx)
            }
            TaskOp::HashJoin { build_key, probe_key, kind } => parallel::hash_join(
                &children[0],
                &children[1],
                build_key,
                probe_key,
                *kind,
                ctx,
            ),
            TaskOp::Project { exprs } => ops::project::project(&children[0], exprs),
            TaskOp::Aggregate { group_by, aggs } => {
                parallel::aggregate(&children[0], group_by, aggs, ctx)
            }
            TaskOp::Sort { keys, limit } => ops::sort::sort(&children[0], keys, *limit),
            TaskOp::ScanShard { table, columns, shard, .. } => {
                let t = db.table(table).ok_or_else(|| format!("no table {table}"))?;
                let (_, read_cols) = self.scan_access().expect("scan op");
                let chunk = Chunk::from_table(t, &read_cols)?;
                let sel = shard_positions(&chunk, self.shard_predicate(), *shard)?;
                ops::project::keep_columns(&chunk.gather(sel.positions()), columns)
            }
            TaskOp::MergeShards { columns } => {
                let merged = Chunk::concat(children)?;
                ops::project::keep_columns(&merged, columns)
            }
        }
    }

    /// Execute the kernel over lazily-filtered inputs, producing a lazy
    /// output — the executor's late-materialization path.
    ///
    /// A `Select` never materializes: it emits (or refines, for an already
    /// filtered input) a selection vector over the child's base chunk.
    /// Downstream operators consume `(base, selvec)` directly — joins probe
    /// through the selection, aggregations accumulate at selected positions,
    /// projections evaluate at selected positions only — and materialize at
    /// pipeline breakers (join build sides, sort, projection output, final
    /// results). Every output is bit-identical to the materializing
    /// [`TaskOp::execute_ctx`] on materialized children, and reports the
    /// same logical `num_rows`/`byte_size`, so simulated timing and golden
    /// figures are unchanged.
    pub fn execute_lazy(
        &self,
        children: &[LazyChunk],
        db: &Database,
        ctx: ParallelCtx,
    ) -> Result<LazyChunk, String> {
        match self {
            TaskOp::Scan { .. } => {
                Ok(LazyChunk::Materialized(self.execute_ctx(&[], db, ctx)?))
            }
            TaskOp::Select { predicate } => match children[0].clone() {
                LazyChunk::Materialized(c) => {
                    let sel = parallel::select_positions(&c, predicate, ctx)?;
                    Ok(LazyChunk::Filtered { base: Arc::new(c), sel })
                }
                LazyChunk::Filtered { base, sel } => {
                    // AND short-circuit: refine the incoming selection in
                    // place instead of rescanning the base chunk.
                    let sel = crate::simd::refine_selvec(predicate, &base, &sel)?;
                    Ok(LazyChunk::Filtered { base, sel })
                }
            },
            TaskOp::HashJoin { build_key, probe_key, kind } => {
                // The build side is a pipeline breaker: the hash table
                // needs every build row, so materialize it.
                let build = children[0].chunk();
                let out = match children[1].parts() {
                    (base, Some(sel)) => ops::join::hash_join_sel_fast(
                        &build,
                        base,
                        build_key,
                        probe_key,
                        *kind,
                        Some(sel),
                    )?,
                    (base, None) => parallel::hash_join(
                        &build,
                        base,
                        build_key,
                        probe_key,
                        *kind,
                        ctx,
                    )?,
                };
                Ok(LazyChunk::Materialized(out))
            }
            TaskOp::Project { exprs } => {
                let out = match children[0].parts() {
                    (base, Some(sel)) => {
                        ops::project::project_at(base, exprs, sel.positions())?
                    }
                    (base, None) => ops::project::project(base, exprs)?,
                };
                Ok(LazyChunk::Materialized(out))
            }
            TaskOp::Aggregate { group_by, aggs } => {
                let out = match children[0].parts() {
                    (base, Some(sel)) => {
                        ops::agg::aggregate_sel_fast(base, Some(sel), group_by, aggs)?
                    }
                    (base, None) => parallel::aggregate(base, group_by, aggs, ctx)?,
                };
                Ok(LazyChunk::Materialized(out))
            }
            TaskOp::Sort { keys, limit } => {
                // Sort is a pipeline breaker; materialize its input.
                let out = ops::sort::sort(&children[0].chunk(), keys, *limit)?;
                Ok(LazyChunk::Materialized(out))
            }
            TaskOp::ScanShard { table, shard, .. } => {
                // Never materializes: the shard's qualifying positions ride
                // as a selection vector over the full base chunk so the
                // merge can gather once, exactly like the unsharded path.
                let t = db.table(table).ok_or_else(|| format!("no table {table}"))?;
                let (_, read_cols) = self.scan_access().expect("scan op");
                let chunk = Chunk::from_table(t, &read_cols)?;
                let sel = shard_positions(&chunk, self.shard_predicate(), *shard)?;
                Ok(LazyChunk::Filtered { base: Arc::new(chunk), sel })
            }
            TaskOp::MergeShards { columns } => {
                // Children are ScanShard outputs in shard order: disjoint,
                // ordered selections over identical base chunks. Their
                // concatenation is strictly increasing, so one gather from
                // the first child's base reproduces the unsharded
                // Scan output bit for bit (shared dictionaries included).
                let mut positions: Vec<u32> = Vec::with_capacity(
                    children.iter().map(LazyChunk::num_rows).sum(),
                );
                let mut base: Option<&Chunk> = None;
                for child in children {
                    match child.parts() {
                        (b, Some(sel)) => {
                            debug_assert!(base.is_none_or(|f| f.num_rows() == b.num_rows()));
                            base.get_or_insert(b);
                            positions.extend_from_slice(sel.positions());
                        }
                        (_, None) => {
                            return Err("merge expects shard selection vectors".into())
                        }
                    }
                }
                let base = base.ok_or("merge of zero shards")?;
                let merged = base.gather(&positions);
                Ok(LazyChunk::Materialized(ops::project::keep_columns(
                    &merged, columns,
                )?))
            }
        }
    }

    /// [`TaskOp::execute_lazy`] restricted to a standing-query window:
    /// when `window` names this op's scan table, base chunks are built
    /// from the row range `[lo, hi)` instead of the full table. Every
    /// other operator (and scans of non-windowed tables, e.g. static
    /// dimension tables) delegates to the unwindowed path, so a window
    /// covering the whole table is bit-identical to a plain run.
    pub fn execute_windowed(
        &self,
        children: &[LazyChunk],
        db: &Database,
        ctx: ParallelCtx,
        window: Option<(&str, usize, usize)>,
    ) -> Result<LazyChunk, String> {
        let bounds = match (self, window) {
            (
                TaskOp::Scan { table, .. } | TaskOp::ScanShard { table, .. },
                Some((w_table, lo, hi)),
            ) if table == w_table => (lo, hi),
            _ => return self.execute_lazy(children, db, ctx),
        };
        let (lo, hi) = bounds;
        match self {
            TaskOp::Scan { table, columns, predicate } => {
                let t = db.table(table).ok_or_else(|| format!("no table {table}"))?;
                let (_, read_cols) = self.scan_access().expect("scan op");
                let chunk = Chunk::from_table_range(t, &read_cols, lo, hi)?;
                let filtered = match predicate {
                    Some(p) => parallel::select(&chunk, p, ctx)?,
                    None => chunk,
                };
                Ok(LazyChunk::Materialized(ops::project::keep_columns(
                    &filtered, columns,
                )?))
            }
            TaskOp::ScanShard { table, shard, .. } => {
                let t = db.table(table).ok_or_else(|| format!("no table {table}"))?;
                let (_, read_cols) = self.scan_access().expect("scan op");
                let chunk = Chunk::from_table_range(t, &read_cols, lo, hi)?;
                let sel = shard_positions(&chunk, self.shard_predicate(), *shard)?;
                Ok(LazyChunk::Filtered { base: Arc::new(chunk), sel })
            }
            _ => unreachable!("bounds only match scan ops"),
        }
    }

    /// Short label for diagnostics.
    pub fn label(&self) -> &'static str {
        match self {
            TaskOp::Scan { .. } => "scan",
            TaskOp::Select { .. } => "select",
            TaskOp::HashJoin { .. } => "join",
            TaskOp::Project { .. } => "project",
            TaskOp::Aggregate { .. } => "aggregate",
            TaskOp::Sort { .. } => "sort",
            TaskOp::ScanShard { .. } => "scan-shard",
            TaskOp::MergeShards { .. } => "merge",
        }
    }

    /// The pushed-down predicate of a (sharded) scan, if any.
    fn shard_predicate(&self) -> Option<&Predicate> {
        match self {
            TaskOp::Scan { predicate, .. }
            | TaskOp::ScanShard { predicate, .. } => predicate.as_ref(),
            _ => None,
        }
    }
}

/// Qualifying positions of `shard`'s row range of `chunk`: the range
/// identity when there is no predicate, otherwise the predicate refined
/// over exactly that range. Concatenating consecutive shards' outputs
/// equals the unsharded full-chunk selection vector.
fn shard_positions(
    chunk: &Chunk,
    predicate: Option<&Predicate>,
    shard: ShardSpec,
) -> Result<SelVec, String> {
    let range = shard.row_range(chunk.num_rows());
    let identity = SelVec::new(range.map(|i| i as u32).collect());
    match predicate {
        Some(p) => p.evaluate_selvec(chunk, Some(&identity)),
        None => Ok(identity),
    }
}

/// One node of a flattened plan.
#[derive(Debug, Clone)]
pub struct TaskNode {
    /// The operator payload.
    pub op: TaskOp,
    /// Indices (within the same flattened plan) of the children, build
    /// side first for joins.
    pub children: Vec<usize>,
    /// Index of the parent; `None` for the root.
    pub parent: Option<usize>,
}

/// Flatten a plan tree into postorder task nodes; the root is the last
/// entry.
pub fn flatten(plan: &PlanNode) -> Vec<TaskNode> {
    fn rec(node: &PlanNode, out: &mut Vec<TaskNode>) -> usize {
        let children: Vec<usize> =
            node.children().iter().map(|c| rec(c, out)).collect();
        let op = match node {
            PlanNode::Scan { table, columns, predicate } => TaskOp::Scan {
                table: table.clone(),
                columns: columns.clone(),
                predicate: predicate.clone(),
            },
            PlanNode::Select { predicate, .. } => {
                TaskOp::Select { predicate: predicate.clone() }
            }
            PlanNode::HashJoin { build_key, probe_key, kind, .. } => TaskOp::HashJoin {
                build_key: build_key.clone(),
                probe_key: probe_key.clone(),
                kind: *kind,
            },
            PlanNode::Project { exprs, .. } => TaskOp::Project { exprs: exprs.clone() },
            PlanNode::Aggregate { group_by, aggs, .. } => TaskOp::Aggregate {
                group_by: group_by.clone(),
                aggs: aggs.clone(),
            },
            PlanNode::Sort { keys, limit, .. } => {
                TaskOp::Sort { keys: keys.clone(), limit: *limit }
            }
        };
        let idx = out.len();
        out.push(TaskNode { op, children: children.clone(), parent: None });
        for c in children {
            out[c].parent = Some(idx);
        }
        idx
    }
    let mut out = Vec::with_capacity(plan.num_operators());
    rec(plan, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::AggSpec;

    fn plan() -> PlanNode {
        PlanNode::scan("lineorder", ["lo_orderdate", "lo_revenue"])
            .filter(Predicate::between("lo_discount", 1, 3))
            .join(
                PlanNode::scan("date", ["d_datekey", "d_year"]),
                "lo_orderdate",
                "d_datekey",
            )
            .aggregate(["d_year"], vec![AggSpec::sum(Expr::col("lo_revenue"), "r")])
    }

    #[test]
    fn flatten_is_postorder_with_root_last() {
        let tasks = flatten(&plan());
        assert_eq!(tasks.len(), 4);
        let root = tasks.last().unwrap();
        assert!(matches!(root.op, TaskOp::Aggregate { .. }));
        assert!(root.parent.is_none());
        // Every child index precedes its parent.
        for (i, t) in tasks.iter().enumerate() {
            for &c in &t.children {
                assert!(c < i);
                assert_eq!(tasks[c].parent, Some(i));
            }
        }
    }

    #[test]
    fn join_children_are_build_then_probe() {
        let tasks = flatten(&plan());
        let join = tasks
            .iter()
            .find(|t| matches!(t.op, TaskOp::HashJoin { .. }))
            .unwrap();
        assert_eq!(join.children.len(), 2);
        let build = &tasks[join.children[0]];
        match &build.op {
            TaskOp::Scan { table, .. } => assert_eq!(table, "date"),
            other => panic!("expected date scan on build side, got {other:?}"),
        }
    }

    #[test]
    fn leaves_have_no_children() {
        let tasks = flatten(&plan());
        let leaves: Vec<_> = tasks.iter().filter(|t| t.children.is_empty()).collect();
        assert_eq!(leaves.len(), 2);
        assert!(leaves.iter().all(|t| matches!(t.op, TaskOp::Scan { .. })));
    }

    #[test]
    fn task_execution_matches_plan_execution() {
        use robustq_storage::gen::ssb::SsbGenerator;
        let db = SsbGenerator::new(1).with_rows_per_sf(500).generate();
        let p = plan();
        let direct = crate::ops::execute_plan(&p, &db).unwrap();

        let tasks = flatten(&p);
        let mut outputs: Vec<Option<Chunk>> = vec![None; tasks.len()];
        for (i, t) in tasks.iter().enumerate() {
            let children: Vec<Chunk> = t
                .children
                .iter()
                .map(|&c| outputs[c].clone().expect("postorder guarantees children done"))
                .collect();
            outputs[i] = Some(t.op.execute(&children, &db).unwrap());
        }
        let via_tasks = outputs.last().unwrap().clone().unwrap();
        assert_eq!(direct.checksum(), via_tasks.checksum());
        assert_eq!(direct.num_rows(), via_tasks.num_rows());
    }

    #[test]
    fn sharded_scan_merges_byte_identical_to_unsharded() {
        use robustq_storage::gen::ssb::SsbGenerator;
        let db = SsbGenerator::new(1).with_rows_per_sf(500).generate();
        let cols = vec!["lo_orderdate".to_string(), "lo_revenue".into()];
        let ctx = ParallelCtx::serial();
        for predicate in [None, Some(Predicate::between("lo_discount", 1, 3))] {
            let scan = TaskOp::Scan {
                table: "lineorder".into(),
                columns: cols.clone(),
                predicate: predicate.clone(),
            };
            let whole = scan.execute_lazy(&[], &db, ctx).unwrap().materialize();
            for of in [1u32, 2, 3, 5] {
                let shards: Vec<LazyChunk> = (0..of)
                    .map(|index| {
                        TaskOp::ScanShard {
                            table: "lineorder".into(),
                            columns: cols.clone(),
                            predicate: predicate.clone(),
                            shard: ShardSpec { index, of },
                        }
                        .execute_lazy(&[], &db, ctx)
                        .unwrap()
                    })
                    .collect();
                let merged = TaskOp::MergeShards { columns: cols.clone() }
                    .execute_lazy(&shards, &db, ctx)
                    .unwrap()
                    .materialize();
                assert_eq!(merged, whole, "of={of} predicate={predicate:?}");
            }
        }
    }

    #[test]
    fn shard_ranges_partition_the_rows() {
        for rows in [0usize, 1, 7, 100] {
            for of in [1u32, 2, 3, 4, 7] {
                let mut covered = 0;
                for index in 0..of {
                    let r = ShardSpec { index, of }.row_range(rows);
                    assert_eq!(r.start, covered);
                    covered = r.end;
                }
                assert_eq!(covered, rows, "rows={rows} of={of}");
            }
        }
    }

    #[test]
    fn scan_access_merges_predicate_columns() {
        let op = TaskOp::Scan {
            table: "t".into(),
            columns: vec!["a".into()],
            predicate: Some(Predicate::eq("b", 1)),
        };
        let (_, cols) = op.scan_access().unwrap();
        assert_eq!(cols, vec!["a".to_string(), "b".into()]);
    }
}
