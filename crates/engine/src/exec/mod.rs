//! The discrete-event executor.
//!
//! * [`task`] — flattened task graphs built from physical plans,
//! * [`policy`] — the [`policy::PlacementPolicy`] trait the placement
//!   strategies implement,
//! * [`costmodel`] — the unified [`costmodel::CostModel`] estimation
//!   surface (static vs online-adaptive, selected per run),
//! * [`metrics`] — run metrics (makespan, transfer times, aborts, wasted
//!   time),
//! * [`pipeline`] — the pipeline-fusion pass: filter→aggregate and
//!   filter→probe chains in the flattened task list run as one fused
//!   morsel loop, materializing only at pipeline breakers,
//! * [`executor`] — the thin public facade ([`executor::Executor`],
//!   [`executor::ExecOptions`]) over the layered runtime:
//!   * [`event_loop`] — the discrete-event core driving virtual time,
//!   * [`device_rt`] — per-device worker slots and FIFO ready queues,
//!   * [`transfer`] — interconnect staging and column-cache consults,
//!   * [`memory`] — staged heap allocation, operator aborts, restarts,
//!   * [`admission`] — session lifecycle and query admission control.

pub mod admission;
pub mod costmodel;
pub mod device_rt;
pub mod feed;
#[path = "loop.rs"]
pub mod event_loop;
pub mod executor;
pub mod memory;
pub mod metrics;
pub mod pipeline;
pub mod policy;
pub mod task;
pub mod transfer;
