//! The discrete-event executor.
//!
//! * [`task`] — flattened task graphs built from physical plans,
//! * [`policy`] — the [`policy::PlacementPolicy`] trait the placement
//!   strategies implement,
//! * [`metrics`] — run metrics (makespan, transfer times, aborts, wasted
//!   time),
//! * [`pipeline`] — the pipeline-fusion pass: filter→aggregate and
//!   filter→probe chains in the flattened task list run as one fused
//!   morsel loop, materializing only at pipeline breakers,
//! * [`executor`] — the event loop: per-device ready queues and worker
//!   slots, input transfers over the simulated link, staged heap
//!   allocation with operator aborts and CPU fallback, closed-loop
//!   multi-session workloads, and optional query admission control.

pub mod executor;
pub mod metrics;
pub mod pipeline;
pub mod policy;
pub mod task;
