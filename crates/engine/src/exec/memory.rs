//! Device memory: per-co-processor heaps, staged allocation, and the
//! operator abort/restart and completion paths.
//!
//! Every co-processor owns a byte-accurate [`HeapAllocator`]; operators
//! allocate working memory in stages (Section 2.5.1), so a mid-flight
//! allocation failure aborts the operator to the CPU — the paper's
//! heap-contention failure mode. Completion retains the result on the
//! producing device's heap until a consumer (or the host) pulls it.

use crate::error::EngineError;
use crate::exec::event_loop::{Sim, Status};
use robustq_sim::{DeviceId, Direction, HeapAllocator, Topology};
use robustq_trace::{
    EstVec, FaultKind, OpOutcome, PlacePhase, PlaceReason, TraceEvent, TransferKind,
};

/// One operator heap per co-processor of the topology.
#[derive(Debug)]
pub(crate) struct HeapSet {
    /// `heaps[k]` serves co-processor `k + 1`.
    heaps: Vec<HeapAllocator>,
}

impl HeapSet {
    pub(crate) fn for_topology(topology: &Topology) -> Self {
        HeapSet {
            heaps: topology
                .coprocessors()
                .map(|d| HeapAllocator::new(topology.spec(d).heap_bytes()))
                .collect(),
        }
    }

    pub(crate) fn device(&self, device: DeviceId) -> &HeapAllocator {
        assert!(device.is_coprocessor(), "the CPU has no device heap");
        &self.heaps[device.index() - 1]
    }

    pub(crate) fn device_mut(&mut self, device: DeviceId) -> &mut HeapAllocator {
        assert!(device.is_coprocessor(), "the CPU has no device heap");
        &mut self.heaps[device.index() - 1]
    }

    /// `(device, heap)` pairs in co-processor order (the debug-build
    /// per-event audit walks the fleet).
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    pub(crate) fn iter(&self) -> impl Iterator<Item = (DeviceId, &HeapAllocator)> {
        self.heaps
            .iter()
            .enumerate()
            .map(|(i, h)| (DeviceId::from_index(i + 1), h))
    }

    /// The largest single-device high-water mark (the reported heap peak
    /// keeps its one-heap meaning: how close *a* device came to capacity).
    pub(crate) fn peak_max(&self) -> u64 {
        self.heaps.iter().map(HeapAllocator::peak).max().unwrap_or(0)
    }

    /// Bytes still allocated, summed over the fleet (leak accounting).
    pub(crate) fn used_total(&self) -> u64 {
        self.heaps.iter().map(HeapAllocator::used).sum()
    }
}

impl Sim<'_, '_> {
    /// Heap tag for an operator's working allocations.
    pub(crate) fn working_tag(task: usize) -> u64 {
        (task as u64) * 2
    }

    /// Heap tag for an operator's retained result.
    pub(crate) fn result_tag(task: usize) -> u64 {
        (task as u64) * 2 + 1
    }

    /// A traced heap allocation attempt on `device`.
    pub(crate) fn heap_alloc(&mut self, device: DeviceId, tag: u64, bytes: u64) -> bool {
        let heap = self.heaps.device_mut(device);
        let ok = heap.try_alloc(tag, bytes);
        let used = heap.used();
        self.tracer.emit(TraceEvent::HeapAlloc { device, tag, bytes, used, ok, at: self.now });
        ok
    }

    /// A traced heap release on `device` (no event for empty tags).
    pub(crate) fn heap_free(&mut self, device: DeviceId, tag: u64) {
        let heap = self.heaps.device_mut(device);
        let bytes = heap.free_tag(tag);
        let used = heap.used();
        if bytes > 0 {
            self.tracer.emit(TraceEvent::HeapFree { device, tag, bytes, used, at: self.now });
        }
    }

    /// A heap allocation attempt on `device` that the fault layer may
    /// fail. `stage` is the staged-allocation step (0 = upfront slice,
    /// 1..=3 = mid-execution growth); on an injected failure `injected`
    /// is set so the abort's waste can be attributed to the injection.
    pub(crate) fn alloc_or_inject(
        &mut self,
        device: DeviceId,
        tag: u64,
        bytes: u64,
        stage: u32,
        query: usize,
        injected: &mut bool,
    ) -> bool {
        if self.fault.fail_alloc(stage) {
            self.note_injected(Some(query), FaultKind::AllocFail { stage }, self.now);
            *injected = true;
            return false;
        }
        self.heap_alloc(device, tag, bytes)
    }

    /// Abort a co-processor operator and restart it on the CPU. The
    /// caller removes the task from the device's compute set when it was
    /// already computing. `injected` marks aborts forced by the fault
    /// plan: the recovery path is identical (injected faults must be
    /// indistinguishable downstream), only the accounting differs.
    pub(crate) fn abort_task(&mut self, task: usize, injected: bool) -> Result<(), EngineError> {
        let device = self.tasks[task].device.expect("aborting a placed task");
        debug_assert!(device.is_coprocessor(), "only co-processor operators abort");
        self.metrics.aborts += 1;
        let wasted = self.now - self.tasks[task].start_time;
        self.metrics.wasted_time += wasted;
        let query = self.tasks[task].query;
        self.metrics.faults.fallbacks += 1;
        self.query_faults[query].fallbacks += 1;
        if injected {
            self.note_injected_wasted(Some(query), wasted);
        }
        {
            let t = &self.tasks[task];
            self.tracer.emit(TraceEvent::OpSpan {
                query: query as u32,
                task: task as u32,
                op: t.node.op.op_class(),
                device,
                queued_at: t.queued_at,
                start: t.start_time,
                end: self.now,
                bytes_in: t.bytes_in,
                bytes_out: t.output_bytes,
                rows_out: t.output_rows,
                outcome: OpOutcome::Aborted { injected },
            });
            // The forced CPU restart is itself a placement decision.
            self.tracer.emit(TraceEvent::Placement {
                query: query as u32,
                task: task as u32,
                op: t.node.op.op_class(),
                phase: PlacePhase::Fallback,
                est: EstVec::EMPTY,
                chosen: DeviceId::Cpu,
                reason: PlaceReason::AbortFallback,
                at: self.now,
            });
        }
        self.heap_free(device, Self::working_tag(task));
        self.devices.rt_mut(device).running -= 1;
        let t = &mut self.tasks[task];
        t.epoch += 1;
        t.forced_cpu = true;
        // A staged operator that still aborted (injected kernel fault,
        // failed chunk transfer) restarts whole on the CPU.
        t.staged_chunks = 0;
        // Restart on the CPU (CoGaDB's per-operator fallback, Section 2.5.1).
        self.enqueue(task, DeviceId::Cpu);
        self.dispatch(DeviceId::Cpu)?;
        self.dispatch(device)?;
        Ok(())
    }

    /// Bookkeeping for a completed operator (called from `settle` once the
    /// task's remaining work reached zero and it left the compute set).
    pub(crate) fn complete_task(&mut self, task: usize) -> Result<(), EngineError> {
        let device = self.tasks[task].device.expect("finishing a placed task");
        self.devices.rt_mut(device).running -= 1;

        let staged_chunks = self.tasks[task].staged_chunks;
        if device.is_coprocessor() {
            // Release working memory; retain the result on the heap —
            // except for staged operators, whose output streams back to
            // the host chunk by chunk (the evict phase below).
            self.heap_free(device, Self::working_tag(task));
            if staged_chunks == 0 {
                let out_bytes = self.tasks[task].output_bytes;
                let ok = self.heap_alloc(device, Self::result_tag(task), out_bytes);
                debug_assert!(ok, "result reservation was covered by the working footprint");
            }
            // Inputs held on *this* device are consumed now (siblings'
            // outputs were already pulled to the host at start).
            for &c in &self.tasks[task].children.clone() {
                if self.tasks[c].output_device == Some(device) {
                    self.heap_free(device, Self::result_tag(c));
                }
            }
        }
        // Drop children chunks — they are fully consumed.
        for &c in &self.tasks[task].children.clone() {
            self.tasks[c].output = None;
        }

        let busy = self.now - self.tasks[task].start_time;
        self.metrics.record_op(device, busy);
        {
            let t = &self.tasks[task];
            self.tracer.emit(TraceEvent::OpSpan {
                query: t.query as u32,
                task: task as u32,
                op: t.node.op.op_class(),
                device,
                queued_at: t.queued_at,
                start: t.start_time,
                end: self.now,
                bytes_in: t.bytes_in,
                bytes_out: t.output_bytes,
                rows_out: t.output_rows,
                outcome: OpOutcome::Completed,
            });
            // A completed shard merge closes its fan-out's trace window
            // (the lint pairs this with the admission-time ShardFanout).
            if matches!(t.node.op, crate::exec::task::TaskOp::MergeShards { .. }) {
                self.tracer.emit(TraceEvent::ShardMerge {
                    query: t.query as u32,
                    task: task as u32,
                    shards: t.children.len() as u32,
                    rows: t.output_rows,
                    bytes: t.output_bytes,
                    start: t.start_time,
                    end: self.now,
                });
            }
        }
        let t = &self.tasks[task];
        let query_id = t.query as u32;
        let task_id = task as u32;
        if let Some(update) = self.policy.observe(
            t.node.op.op_class(),
            device,
            t.bytes_in,
            t.output_bytes,
            t.kernel_duration,
            busy,
        ) {
            // Adaptive refinements enter the trace stream so est-vs-actual
            // error is auditable per run; static samples are collected on
            // the side only (default traced runs stay byte-identical).
            if update.refined {
                self.tracer.emit(TraceEvent::ModelUpdate {
                    query: query_id,
                    task: task_id,
                    op: update.class,
                    device: update.device,
                    predicted: update.predicted,
                    actual: update.actual,
                    at: self.now,
                });
            }
            self.model_samples.push(update);
        }

        self.tasks[task].status = Status::Done;
        let mut staged_arrival = self.now;
        if staged_chunks > 0 {
            // Evict phase of the staged pipeline: each chunk's result
            // returns to the host over the device link, costed per chunk
            // (durable, like any result transfer). Nothing stays
            // device-resident.
            let query = self.tasks[task].query;
            let bytes = self.d2h_consume_bytes(task);
            for i in 0..staged_chunks {
                let chunk = robustq_sim::partition_bytes(bytes, i, staged_chunks);
                if chunk == 0 {
                    continue;
                }
                let end = self
                    .xfer(
                        self.now,
                        device,
                        Direction::DeviceToHost,
                        TransferKind::Result,
                        chunk,
                        Some(query),
                        false,
                    )
                    .expect("non-abortable transfers always complete");
                staged_arrival = staged_arrival.max(end);
            }
            self.tasks[task].output_device = Some(DeviceId::Cpu);
            self.staging.staged_ops += 1;
            self.staging.staged_chunks += staged_chunks as u64;
        } else {
            self.tasks[task].output_device = Some(device);
        }

        match self.tasks[task].parent {
            Some(p) => {
                self.tasks[p].pending_children -= 1;
                if self.tasks[p].pending_children == 0 {
                    self.make_ready(p)?;
                }
            }
            None => {
                // Root: return the result to the host.
                let query = self.tasks[task].query;
                let mut done_at = staged_arrival;
                if self.tasks[task].output_device.is_some_and(DeviceId::is_coprocessor) {
                    let bytes = self.d2h_consume_bytes(task);
                    // Result transfers are durable: the fault layer only
                    // delays them, never loses them.
                    let end = self
                        .xfer(
                            self.now,
                            device,
                            Direction::DeviceToHost,
                            TransferKind::Result,
                            bytes,
                            Some(query),
                            false,
                        )
                        .expect("non-abortable transfers always complete");
                    self.heap_free(device, Self::result_tag(task));
                    self.tasks[task].output_device = Some(DeviceId::Cpu);
                    done_at = end;
                }
                self.events.push(done_at, crate::exec::event_loop::Ev::QueryDone { query });
            }
        }
        // A freed worker slot may unblock the queue.
        self.dispatch(device)?;
        Ok(())
    }
}
