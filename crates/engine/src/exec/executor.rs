//! The discrete-event workload executor.
//!
//! Executes closed-loop multi-session workloads against the simulated
//! machine. Operators run for real on the host (results are correct); all
//! timing, transfer, contention and memory behaviour is simulated:
//!
//! * per-device FIFO ready queues with worker slots (bounded only when
//!   the policy chops — Section 5),
//! * input transfers over the FIFO interconnect, with the column cache
//!   consulted for base columns,
//! * staged co-processor heap allocation (Section 2.5.1: operators cannot
//!   pre-declare their footprint and allocate in several steps), so an
//!   operator can abort mid-flight, wasting the time it already spent
//!   (Figure 20's metric),
//! * abort handling: the failed operator restarts on the CPU; whether its
//!   successors follow depends on the placement strategy (Figure 8).

use crate::batch::LazyChunk;
use crate::error::EngineError;
use crate::estimate;
use crate::exec::metrics::{FaultCounters, QueryOutcome, RunMetrics};
use crate::exec::policy::{PlacementPolicy, PolicyCtx, TaskInfo};
use crate::exec::task::{flatten, TaskNode};
use crate::parallel::ParallelCtx;
use crate::plan::PlanNode;
use robustq_sim::{
    CacheKey, CostModel, DataCache, DeviceId, DeviceKind, Direction, EventQueue, FaultPlan,
    HeapAllocator, Interconnect, PerDevice, RetryPolicy, SimConfig, TransferFault, VirtualTime,
};
use robustq_storage::{ColumnId, Database};
use robustq_trace::{
    FaultKind, OpOutcome, PlacePhase, PlaceReason, TraceEvent, Tracer, TransferKind,
};
use std::collections::VecDeque;

/// Options controlling one workload run.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Keep full query results in the outcomes (tests); otherwise only
    /// row counts and checksums are retained.
    pub capture_results: bool,
    /// Run the policy's data-placement background job every N completed
    /// queries (0 = never). Mirrors the periodic job of Section 3.2.
    pub placement_update_period: usize,
    /// Maximum queries admitted concurrently (admission control — the
    /// reference mechanism of Section 6.2.2). `usize::MAX` = unbounded.
    pub max_concurrent_queries: usize,
    /// Columns pinned into the co-processor cache before the run starts,
    /// free of charge (the paper pre-loads access structures before
    /// benchmarks — Section 6.1).
    pub preload: Vec<ColumnId>,
    /// Real-CPU parallelism for the hot kernels (selection, join probe,
    /// aggregation). Affects wall-clock only: parallel results are
    /// bit-identical to serial, and *virtual* time comes from the cost
    /// model either way. Defaults to serial.
    pub parallel: ParallelCtx,
    /// Deterministic fault injection (chaos testing, DESIGN.md §8). The
    /// executor clones the plan at run start; with the default
    /// [`FaultPlan::disabled`] the fault layer is provably zero-cost —
    /// no generator draws, bit-identical runs.
    pub fault: FaultPlan,
    /// Recovery policy for transient transfer faults: bounded
    /// retry-with-backoff in virtual time.
    pub retry: RetryPolicy,
    /// Structured tracing (DESIGN.md §10). The default disabled tracer is
    /// a single-branch no-op: no allocations, byte-identical runs. Enable
    /// with [`Tracer::new`] and keep a clone to read the events back.
    pub tracer: Tracer,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            capture_results: false,
            placement_update_period: 1,
            max_concurrent_queries: usize::MAX,
            preload: Vec::new(),
            parallel: ParallelCtx::serial(),
            fault: FaultPlan::disabled(),
            retry: RetryPolicy::default(),
            tracer: Tracer::disabled(),
        }
    }
}

/// Result of a workload run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Aggregated run metrics.
    pub metrics: RunMetrics,
    /// One entry per executed query, in completion order.
    pub outcomes: Vec<QueryOutcome>,
}

/// The workload executor: a database plus a machine configuration.
pub struct Executor<'a> {
    db: &'a Database,
    config: SimConfig,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Pending,
    Queued,
    Running,
    Done,
}

struct TaskState {
    node: TaskNode,
    query: usize,
    /// Children / parent as *global* task indices.
    children: Vec<usize>,
    parent: Option<usize>,
    pending_children: usize,
    annotation: Option<DeviceId>,
    forced_cpu: bool,
    epoch: u32,
    status: Status,
    device: Option<DeviceId>,
    /// When the task last entered a ready queue (trace queue-wait).
    queued_at: VirtualTime,
    start_time: VirtualTime,
    kernel_duration: VirtualTime,
    bytes_in: u64,
    est_bytes_in: u64,
    est_bytes_out: u64,
    /// Remaining solo-execution nanoseconds (processor sharing).
    remaining_ns: f64,
    /// Pending allocation-stage thresholds, ascending: a stage fires when
    /// `remaining_ns` drops to the popped (largest) threshold.
    milestones: Vec<f64>,
    /// Bytes allocated per remaining stage.
    stage_bytes: u64,
    base_columns: Vec<ColumnId>,
    /// The kernel result, kept lazy (base + selection vector) until a
    /// pipeline breaker or the query root forces materialization. Logical
    /// `num_rows`/`byte_size` are identical either way, so all simulated
    /// timing below is unaffected.
    output: Option<LazyChunk>,
    output_bytes: u64,
    output_rows: u64,
    output_device: Option<DeviceId>,
    load_contribution: VirtualTime,
}

struct QueryState {
    session: usize,
    seq: usize,
    root: usize,
    /// When the session issued the query (queueing for admission counts
    /// toward latency — the paper's admission-control comparison measures
    /// response time from submission).
    submit_time: VirtualTime,
}

enum Ev {
    /// Transfers finished; the operator joins its device's compute set.
    ComputeStart { task: usize, epoch: u32 },
    /// Re-evaluate a device's compute set (next completion or
    /// allocation-stage crossing under processor sharing).
    DeviceTick { device: DeviceId, version: u64 },
    QueryDone { query: usize },
}

struct Sim<'a, 'p> {
    db: &'a Database,
    config: &'a SimConfig,
    policy: &'p mut dyn PlacementPolicy,
    opts: &'a ExecOptions,
    cost: CostModel,
    cache: &'a mut DataCache,
    gpu_heap: HeapAllocator,
    link: Interconnect,
    fault: FaultPlan,
    /// Per-query fault counters, indexed by query id.
    query_faults: Vec<FaultCounters>,
    events: EventQueue<Ev>,
    tasks: Vec<TaskState>,
    queries: Vec<QueryState>,
    queues: [VecDeque<usize>; 2],
    running: PerDevice<usize>,
    load: PerDevice<VirtualTime>,
    /// Tasks currently *computing* per device (slot holders doing
    /// transfers are not in here yet). Concurrent tasks share the device:
    /// each progresses at rate 1/n.
    compute: [Vec<usize>; 2],
    last_update: [VirtualTime; 2],
    tick_version: [u64; 2],
    sessions: Vec<VecDeque<PlanNode>>,
    admission_queue: VecDeque<(usize, PlanNode, VirtualTime)>,
    active_queries: usize,
    completed_since_update: usize,
    metrics: RunMetrics,
    outcomes: Vec<QueryOutcome>,
    now: VirtualTime,
    tracer: Tracer,
}

impl<'a> Executor<'a> {
    /// An executor over `db` and the given machine.
    pub fn new(db: &'a Database, config: SimConfig) -> Self {
        Executor { db, config }
    }

    /// The database queries run against.
    pub fn database(&self) -> &Database {
        self.db
    }

    /// The simulated machine configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Execute `sessions` (each a queue of queries, run closed-loop) under
    /// `policy`, starting from a cold co-processor cache.
    pub fn run(
        &self,
        sessions: Vec<Vec<PlanNode>>,
        policy: &mut dyn PlacementPolicy,
        opts: &ExecOptions,
    ) -> Result<RunOutcome, EngineError> {
        let mut cache =
            DataCache::new(self.config.gpu.cache_bytes, self.config.cache_policy);
        self.run_with_cache(sessions, policy, opts, &mut cache)
    }

    /// Like [`Executor::run`] but continuing from (and updating) an
    /// existing cache — this is how warm-up runs leave the column cache
    /// warm for the measured run, matching the paper's procedure of
    /// running each workload twice before measuring (Section 6.1).
    pub fn run_with_cache(
        &self,
        sessions: Vec<Vec<PlanNode>>,
        policy: &mut dyn PlacementPolicy,
        opts: &ExecOptions,
        cache: &mut DataCache,
    ) -> Result<RunOutcome, EngineError> {
        if !opts.preload.is_empty() {
            let mut budget = cache.capacity();
            let mut pins = Vec::new();
            for &col in &opts.preload {
                let bytes = self.db.column_size(col);
                if bytes <= budget {
                    budget -= bytes;
                    pins.push((CacheKey(col.0 as u64), bytes));
                }
            }
            cache.set_pinned(&pins);
        }
        let total_queries: usize = sessions.iter().map(Vec::len).sum();
        let mut sim = Sim {
            db: self.db,
            config: &self.config,
            policy,
            opts,
            cost: CostModel::new(self.config.cost.clone()),
            cache,
            gpu_heap: HeapAllocator::new(self.config.gpu.heap_bytes()),
            link: Interconnect::new(self.config.link),
            fault: opts.fault.clone(),
            query_faults: Vec::new(),
            events: EventQueue::new(),
            tasks: Vec::new(),
            queries: Vec::new(),
            queues: [VecDeque::new(), VecDeque::new()],
            running: PerDevice::splat(0),
            load: PerDevice::splat(VirtualTime::ZERO),
            compute: [Vec::new(), Vec::new()],
            last_update: [VirtualTime::ZERO, VirtualTime::ZERO],
            tick_version: [0, 0],
            sessions: sessions.into_iter().map(VecDeque::from).collect(),
            admission_queue: VecDeque::new(),
            active_queries: 0,
            completed_since_update: 0,
            metrics: RunMetrics::default(),
            outcomes: Vec::new(),
            now: VirtualTime::ZERO,
            tracer: opts.tracer.clone(),
        };
        sim.run(total_queries)
    }
}

impl Sim<'_, '_> {
    fn run(&mut self, total_queries: usize) -> Result<RunOutcome, EngineError> {
        // The cache may be warm from a previous run on the same handle;
        // metrics report this run's probes only (matching the trace).
        let (base_hits, base_misses) = self.cache.hit_miss();
        let trace_mark = self.tracer.mark();
        // Initial data placement from whatever statistics already exist
        // (the paper pre-loads access structures before each benchmark,
        // Section 6.1) — free of charge, like `ExecOptions::preload`.
        let _ = self.policy.update_data_placement(self.db, self.cache);

        // Kick off: the first query of every session is a candidate.
        for s in 0..self.sessions.len() {
            if let Some(plan) = self.sessions[s].pop_front() {
                self.admission_queue.push_back((s, plan, self.now));
            }
        }
        self.process_admissions()?;

        while let Some((t, ev)) = self.events.pop() {
            self.now = t;
            match ev {
                Ev::ComputeStart { task, epoch } => self.on_compute_start(task, epoch)?,
                Ev::DeviceTick { device, version } => {
                    self.on_device_tick(device, version)?
                }
                Ev::QueryDone { query } => self.on_query_done(query)?,
            }
            #[cfg(debug_assertions)]
            self.audit();
        }

        if self.outcomes.len() != total_queries {
            return Err(EngineError::Stalled {
                completed: self.outcomes.len(),
                total: total_queries,
            });
        }
        self.metrics.queries = total_queries;
        let (hits, misses) = self.cache.hit_miss();
        self.metrics.cache_hits = hits - base_hits;
        self.metrics.cache_misses = misses - base_misses;
        self.metrics.gpu_heap_peak = self.gpu_heap.peak();
        self.metrics.gpu_heap_leaked = self.gpu_heap.used();
        self.metrics.fault_stats = *self.fault.stats();
        self.metrics.link_h2d = self.link.stats(Direction::HostToDevice);
        self.metrics.link_d2h = self.link.stats(Direction::DeviceToHost);
        debug_assert_eq!(
            self.gpu_heap.used(),
            0,
            "device heap must drain once every query completed"
        );
        // Cross-check: the metrics re-derived from this run's event
        // stream must match the incrementally maintained counters. Only
        // possible with tracing enabled and no dropped events.
        #[cfg(debug_assertions)]
        if let Some(events) = self.tracer.events_since(trace_mark) {
            debug_assert_eq!(
                RunMetrics::from_events(&events),
                self.metrics,
                "trace-derived metrics diverge from legacy counters"
            );
        }
        #[cfg(not(debug_assertions))]
        let _ = trace_mark;
        Ok(RunOutcome {
            metrics: self.metrics.clone(),
            outcomes: std::mem::take(&mut self.outcomes),
        })
    }

    fn task_info(&self, task: usize, compile_time: bool) -> TaskInfo {
        let t = &self.tasks[task];
        let children_devices = if compile_time {
            Vec::new()
        } else {
            t.children
                .iter()
                .filter_map(|&c| self.tasks[c].output_device)
                .collect()
        };
        let children_bytes = t
            .children
            .iter()
            .map(|&c| {
                if compile_time {
                    self.tasks[c].est_bytes_out
                } else {
                    self.tasks[c].output_bytes
                }
            })
            .collect();
        TaskInfo {
            query: t.query,
            task,
            op_class: t.node.op.op_class(),
            base_columns: t.base_columns.clone(),
            bytes_in: if compile_time { t.est_bytes_in } else { t.bytes_in },
            bytes_out_estimate: t.est_bytes_out,
            children_devices,
            children_bytes,
            children_tasks: t.children.clone(),
            was_aborted: t.forced_cpu,
        }
    }

    fn process_admissions(&mut self) -> Result<(), EngineError> {
        while self.active_queries < self.opts.max_concurrent_queries {
            let Some((session, plan, submit_time)) = self.admission_queue.pop_front()
            else {
                break;
            };
            self.admit_query(session, plan, submit_time)?;
        }
        Ok(())
    }

    fn admit_query(
        &mut self,
        session: usize,
        plan: PlanNode,
        submit_time: VirtualTime,
    ) -> Result<(), EngineError> {
        let query = self.queries.len();
        let seq = self.queries.iter().filter(|q| q.session == session).count();
        let base = self.tasks.len();
        let nodes = flatten(&plan);
        let estimates = postorder_estimates(&plan, self.db);
        debug_assert_eq!(nodes.len(), estimates.len());

        for (node, est) in nodes.into_iter().zip(estimates) {
            let base_columns = match node.op.scan_access() {
                Some((table, cols)) => cols
                    .iter()
                    .map(|c| {
                        self.db
                            .require_column_id(table, c)
                            .map_err(|e| EngineError::Storage(e.to_string()))
                    })
                    .collect::<Result<Vec<_>, _>>()?,
                None => Vec::new(),
            };
            let children: Vec<usize> = node.children.iter().map(|&c| base + c).collect();
            let parent = node.parent.map(|p| base + p);
            let pending = children.len();
            self.tasks.push(TaskState {
                node,
                query,
                children,
                parent,
                pending_children: pending,
                annotation: None,
                forced_cpu: false,
                epoch: 0,
                status: Status::Pending,
                device: None,
                queued_at: VirtualTime::ZERO,
                start_time: VirtualTime::ZERO,
                kernel_duration: VirtualTime::ZERO,
                bytes_in: 0,
                est_bytes_in: est.0 as u64,
                est_bytes_out: est.1 as u64,
                remaining_ns: 0.0,
                milestones: Vec::new(),
                stage_bytes: 0,
                base_columns,
                output: None,
                output_bytes: 0,
                output_rows: 0,
                output_device: None,
                load_contribution: VirtualTime::ZERO,
            });
        }
        let root = self.tasks.len() - 1;
        self.queries.push(QueryState { session, seq, root, submit_time });
        self.query_faults.push(FaultCounters::default());
        self.active_queries += 1;
        self.tracer.emit(TraceEvent::QuerySubmit {
            query: query as u32,
            session: session as u32,
            seq: seq as u32,
            at: submit_time,
        });

        // Compile-time placement pass.
        let infos: Vec<TaskInfo> =
            (base..=root).map(|t| self.task_info(t, true)).collect();
        let ctx = PolicyCtx {
            db: self.db,
            cache: &*self.cache,
            queued_work: self.load,
            running: self.running,
            gpu_heap_free: self.gpu_heap.free_bytes(),
            now: self.now,
        };
        let annotations = self.policy.plan_query(&infos, &ctx);
        debug_assert_eq!(annotations.len(), infos.len());
        for (t, a) in (base..=root).zip(annotations) {
            if let Some(p) = a {
                self.tracer.emit(TraceEvent::Placement {
                    query: query as u32,
                    task: t as u32,
                    op: self.tasks[t].node.op.op_class(),
                    phase: PlacePhase::Compile,
                    est: p.est,
                    chosen: p.device,
                    reason: p.reason,
                    at: self.now,
                });
                self.tasks[t].annotation = Some(p.device);
            }
        }

        // Leaves enter the operator stream immediately.
        for t in base..=root {
            if self.tasks[t].children.is_empty() {
                self.make_ready(t)?;
            }
        }
        Ok(())
    }

    fn exact_bytes_in(&self, task: usize) -> u64 {
        let t = &self.tasks[task];
        if t.children.is_empty() {
            t.base_columns.iter().map(|&c| self.db.column_size(c)).sum()
        } else {
            t.children.iter().map(|&c| self.tasks[c].output_bytes).sum()
        }
    }

    fn make_ready(&mut self, task: usize) -> Result<(), EngineError> {
        self.tasks[task].bytes_in = self.exact_bytes_in(task);
        let device = if self.tasks[task].forced_cpu {
            DeviceId::Cpu
        } else if let Some(d) = self.tasks[task].annotation {
            d
        } else {
            let info = self.task_info(task, false);
            let ctx = PolicyCtx {
                db: self.db,
                cache: &*self.cache,
                queued_work: self.load,
                running: self.running,
                gpu_heap_free: self.gpu_heap.free_bytes(),
                now: self.now,
            };
            let placed = self.policy.place_ready(&info, &ctx);
            self.tracer.emit(TraceEvent::Placement {
                query: self.tasks[task].query as u32,
                task: task as u32,
                op: self.tasks[task].node.op.op_class(),
                phase: PlacePhase::Ready,
                est: placed.est,
                chosen: placed.device,
                reason: placed.reason,
                at: self.now,
            });
            placed.device
        };
        self.enqueue(task, device);
        self.dispatch(device)?;
        Ok(())
    }

    fn enqueue(&mut self, task: usize, device: DeviceId) {
        let now = self.now;
        let t = &mut self.tasks[task];
        t.device = Some(device);
        t.status = Status::Queued;
        t.queued_at = now;
        let est = self.cost.duration(
            t.node.op.op_class(),
            device.kind(),
            t.bytes_in,
            t.est_bytes_out,
        );
        t.load_contribution = est;
        self.load[device] += est;
        self.queues[device.index()].push_back(task);
    }

    fn slots(&self, device: DeviceId) -> usize {
        let spec = match device {
            DeviceId::Cpu => &self.config.cpu,
            DeviceId::Gpu => &self.config.gpu,
        };
        self.policy.worker_slots(device, spec.worker_slots)
    }

    fn dispatch(&mut self, device: DeviceId) -> Result<(), EngineError> {
        let di = device.index();
        while self.running[device] < self.slots(device) {
            let Some(task) = self.queues[di].pop_front() else {
                break;
            };
            self.load[device] =
                self.load[device].saturating_sub(self.tasks[task].load_contribution);
            self.start_task(task, device)?;
        }
        Ok(())
    }

    /// Bytes that cross the bus when the host consumes a device-resident
    /// output. Scan outputs travel as *position lists* (4 bytes/row): the
    /// host already holds every base column, so only the qualifying
    /// positions matter — CoGaDB's positional processing model. All other
    /// operators materialize payloads that must move in full.
    fn d2h_consume_bytes(&self, task: usize) -> u64 {
        let t = &self.tasks[task];
        match t.node.op {
            crate::exec::task::TaskOp::Scan { .. } => {
                (t.output_rows * 4).min(t.output_bytes)
            }
            _ => t.output_bytes,
        }
    }

    /// Heap tag for an operator's working allocations.
    fn working_tag(task: usize) -> u64 {
        (task as u64) * 2
    }

    /// Heap tag for an operator's retained result.
    fn result_tag(task: usize) -> u64 {
        (task as u64) * 2 + 1
    }

    /// The trace id of an optionally attributable query.
    fn qid(query: Option<usize>) -> u32 {
        query.map_or(TraceEvent::NO_QUERY, |q| q as u32)
    }

    /// Record one fired injection, attributed to `query` when known.
    /// Emitted fault kinds mirror the plan's own `FaultStats` accounting
    /// one-to-one, so trace-derived stats reconcile exactly.
    fn note_injected(&mut self, query: Option<usize>, kind: FaultKind, at: VirtualTime) {
        self.metrics.faults.injected += 1;
        if let Some(q) = query {
            self.query_faults[q].injected += 1;
        }
        self.tracer.emit(TraceEvent::Fault { kind, query: Self::qid(query), at });
    }

    /// Record one scheduled transfer retry.
    fn note_retry(&mut self, query: Option<usize>, backoff: VirtualTime, at: VirtualTime) {
        self.metrics.faults.retries += 1;
        if let Some(q) = query {
            self.query_faults[q].retries += 1;
        }
        self.tracer.emit(TraceEvent::Retry { query: Self::qid(query), backoff, at });
    }

    /// Record virtual time lost to injections.
    fn note_injected_wasted(&mut self, query: Option<usize>, t: VirtualTime) {
        self.metrics.faults.injected_wasted += t;
        if let Some(q) = query {
            self.query_faults[q].injected_wasted += t;
        }
    }

    /// Charge one transfer attempt to the run metrics.
    fn charge_transfer(&mut self, dir: Direction, service: VirtualTime, bytes: u64) {
        match dir {
            Direction::HostToDevice => {
                self.metrics.h2d_time += service;
                self.metrics.h2d_bytes += bytes;
            }
            Direction::DeviceToHost => {
                self.metrics.d2h_time += service;
                self.metrics.d2h_bytes += bytes;
            }
        }
    }

    /// A traced co-processor heap allocation attempt.
    fn heap_alloc(&mut self, tag: u64, bytes: u64) -> bool {
        let ok = self.gpu_heap.try_alloc(tag, bytes);
        self.tracer.emit(TraceEvent::HeapAlloc {
            tag,
            bytes,
            used: self.gpu_heap.used(),
            ok,
            at: self.now,
        });
        ok
    }

    /// A traced co-processor heap release (no event for empty tags).
    fn heap_free(&mut self, tag: u64) {
        let bytes = self.gpu_heap.free_tag(tag);
        if bytes > 0 {
            self.tracer.emit(TraceEvent::HeapFree {
                tag,
                bytes,
                used: self.gpu_heap.used(),
                at: self.now,
            });
        }
    }

    /// A co-processor heap allocation attempt that the fault layer may
    /// fail. `stage` is the staged-allocation step (0 = upfront slice,
    /// 1..=3 = mid-execution growth); on an injected failure `injected`
    /// is set so the abort's waste can be attributed to the injection.
    fn alloc_or_inject(
        &mut self,
        tag: u64,
        bytes: u64,
        stage: u32,
        query: usize,
        injected: &mut bool,
    ) -> bool {
        if self.fault.fail_alloc(stage) {
            self.note_injected(Some(query), FaultKind::AllocFail { stage }, self.now);
            *injected = true;
            return false;
        }
        self.heap_alloc(tag, bytes)
    }

    /// One logical transfer over the link, with fault injection and
    /// bounded retry-with-backoff in *virtual* time (every failed
    /// attempt occupies the FIFO for its full service window, then the
    /// retry waits out an exponential backoff).
    ///
    /// Returns `Some(end)` when the payload arrived. Returns `None` —
    /// only possible when `abortable` — for a permanent fault or for
    /// transient faults exhausting the retry budget; the caller then
    /// aborts the operator to the CPU. Non-abortable transfers (results
    /// returning to the host, background placement traffic) always
    /// complete: permanent faults degrade to transient and the fault
    /// layer stops injecting once the budget is spent.
    fn xfer(
        &mut self,
        now: VirtualTime,
        dir: Direction,
        kind: TransferKind,
        bytes: u64,
        query: Option<usize>,
        abortable: bool,
    ) -> Option<VirtualTime> {
        let qid = Self::qid(query);
        let mut at = now;
        let mut failures: u32 = 0;
        loop {
            // Capture the raw draw before the degradation below: the plan
            // already counted a permanent in its stats, and the trace
            // reports the same kind so the two always reconcile.
            let (decision, raw_kind) = if failures > self.opts.retry.max_retries {
                (None, None) // budget spent: durable transfers complete clean
            } else {
                let raw = self.fault.transfer_fault(dir);
                let raw_kind = raw.map(|f| match f {
                    TransferFault::Transient => FaultKind::TransferTransient,
                    TransferFault::Permanent => FaultKind::TransferPermanent,
                    TransferFault::Spike(_) => FaultKind::TransferSpike,
                });
                let d = match raw {
                    Some(TransferFault::Permanent) if !abortable => {
                        Some(TransferFault::Transient)
                    }
                    d => d,
                };
                (d, raw_kind)
            };
            match decision {
                None => {
                    let tr = self.link.transfer(at, dir, bytes);
                    self.charge_transfer(dir, tr.service, bytes);
                    self.tracer.emit(TraceEvent::Transfer {
                        dir,
                        kind,
                        query: qid,
                        bytes,
                        start: tr.start,
                        end: tr.end,
                        service: tr.service,
                        faulted: false,
                        waste: VirtualTime::ZERO,
                    });
                    return Some(tr.end);
                }
                Some(TransferFault::Spike(f)) => {
                    let tr = self.link.transfer_scaled(at, dir, bytes, f);
                    self.charge_transfer(dir, tr.service, bytes);
                    let clean = self.link.params().service_time(bytes);
                    let waste = tr.service.saturating_sub(clean);
                    self.note_injected(query, FaultKind::TransferSpike, at);
                    self.note_injected_wasted(query, waste);
                    self.tracer.emit(TraceEvent::Transfer {
                        dir,
                        kind,
                        query: qid,
                        bytes,
                        start: tr.start,
                        end: tr.end,
                        service: tr.service,
                        faulted: true,
                        waste,
                    });
                    return Some(tr.end);
                }
                Some(TransferFault::Permanent) => {
                    // The link errors out before the payload moves.
                    self.note_injected(query, FaultKind::TransferPermanent, at);
                    return None;
                }
                Some(TransferFault::Transient) => {
                    // The failed attempt still occupied the bus.
                    let tr = self.link.transfer(at, dir, bytes);
                    self.charge_transfer(dir, tr.service, bytes);
                    let fault_kind =
                        raw_kind.expect("a transient decision implies a fault draw");
                    self.note_injected(query, fault_kind, at);
                    failures += 1;
                    if abortable && failures > self.opts.retry.max_retries {
                        self.note_injected_wasted(query, tr.service);
                        self.tracer.emit(TraceEvent::Transfer {
                            dir,
                            kind,
                            query: qid,
                            bytes,
                            start: tr.start,
                            end: tr.end,
                            service: tr.service,
                            faulted: true,
                            waste: tr.service,
                        });
                        return None;
                    }
                    let backoff = self.opts.retry.backoff(failures);
                    self.note_retry(query, backoff, tr.end);
                    self.note_injected_wasted(query, tr.service + backoff);
                    self.tracer.emit(TraceEvent::Transfer {
                        dir,
                        kind,
                        query: qid,
                        bytes,
                        start: tr.start,
                        end: tr.end,
                        service: tr.service,
                        faulted: true,
                        waste: tr.service + backoff,
                    });
                    at = tr.end + backoff;
                }
            }
        }
    }

    /// Heap, cache and link accounting invariants, re-checked after
    /// every simulation event in debug builds (tests and chaos runs).
    #[cfg(debug_assertions)]
    fn audit(&self) {
        assert_eq!(
            self.gpu_heap.used(),
            self.gpu_heap.accounted_bytes(),
            "heap conservation: used must equal the sum of live tags"
        );
        assert!(
            self.gpu_heap.used() <= self.gpu_heap.capacity(),
            "heap overcommitted"
        );
        assert_eq!(
            self.cache.used(),
            self.cache.accounted_bytes(),
            "cache accounting: used must equal the sum of resident entries"
        );
        assert!(self.cache.used() <= self.cache.capacity(), "cache overcommitted");
        for dir in [Direction::HostToDevice, Direction::DeviceToHost] {
            let s = self.link.stats(dir);
            assert!(
                s.transfers > 0 || (s.bytes == 0 && s.busy_time == VirtualTime::ZERO),
                "link stats: traffic without transfers"
            );
            // Each transfer advances busy_until by at least its service
            // time, so the FIFO horizon dominates accumulated service.
            assert!(
                self.link.busy_until(dir) >= s.busy_time,
                "link busy_until fell behind accumulated service time"
            );
        }
    }

    fn start_task(&mut self, task: usize, device: DeviceId) -> Result<(), EngineError> {
        let now = self.now;
        self.running[device] += 1;
        {
            let t = &mut self.tasks[task];
            t.status = Status::Running;
            t.start_time = now;
            t.device = Some(device);
        }

        // Compute the kernel result eagerly (host side); reuse a result
        // computed before an abort.
        if self.tasks[task].output.is_none() {
            let children_chunks: Vec<LazyChunk> = self.tasks[task]
                .children
                .iter()
                .map(|&c| {
                    self.tasks[c].output.clone().ok_or_else(|| {
                        EngineError::Internal("child output missing".to_string())
                    })
                })
                .collect::<Result<_, _>>()?;
            let out = self
                .tasks[task]
                .node
                .op
                .execute_lazy(&children_chunks, self.db, self.opts.parallel)
                .map_err(EngineError::Kernel)?;
            self.tasks[task].output_bytes = out.byte_size();
            self.tasks[task].output_rows = out.num_rows() as u64;
            self.tasks[task].output = Some(out);
        }
        let bytes_in = self.tasks[task].bytes_in;
        let bytes_out = self.tasks[task].output_bytes;
        let class = self.tasks[task].node.op.op_class();

        // Record base-column accesses (the counters driving LFU placement).
        for &col in &self.tasks[task].base_columns.clone() {
            self.db.stats().record_access(col.index());
        }

        let mut ready_at = now;
        if device == DeviceId::Gpu {
            // Working memory: staged allocation of footprint + retained
            // result, plus any host-resident inputs copied in.
            let mut input_transfer_bytes = 0u64;
            for &c in &self.tasks[task].children.clone() {
                if self.tasks[c].output_device == Some(DeviceId::Cpu) {
                    input_transfer_bytes += self.tasks[c].output_bytes;
                }
            }
            let footprint = self.cost.gpu_working_footprint(class, bytes_in, bytes_out)
                + bytes_out;
            // Operators allocate incrementally (Section 2.5.1): a small
            // upfront slice (input buffers), then three growth stages
            // mid-execution — which is what makes mid-flight aborts, and
            // the wasted time of Figure 20, possible.
            let stage = footprint * 3 / 10;
            let tag = Self::working_tag(task);
            let query = self.tasks[task].query;
            let mut injected = false;
            let ok = self.alloc_or_inject(tag, input_transfer_bytes, 0, query, &mut injected)
                && self.alloc_or_inject(tag, footprint - 3 * stage, 0, query, &mut injected);
            if !ok {
                self.abort_task(task, injected)?;
                return Ok(());
            }

            // Base columns: probe the cache, transfer on miss. A
            // permanent transfer fault aborts the operator to the CPU,
            // exactly like a failed allocation.
            let caches_on_miss = self.policy.caches_on_miss();
            for &col in &self.tasks[task].base_columns.clone() {
                let key = CacheKey(col.0 as u64);
                let bytes = self.db.column_size(col);
                let hit = self.cache.probe(key);
                self.tracer.emit(TraceEvent::CacheProbe { key, bytes, hit, at: now });
                if !hit {
                    match self.xfer(
                        now,
                        Direction::HostToDevice,
                        TransferKind::Input,
                        bytes,
                        Some(query),
                        true,
                    ) {
                        Some(end) => ready_at = ready_at.max(end),
                        None => {
                            self.abort_task(task, true)?;
                            return Ok(());
                        }
                    }
                    if caches_on_miss {
                        let outcome = self.cache.insert(key, bytes);
                        for &(k, b) in &outcome.evicted {
                            self.tracer.emit(TraceEvent::CacheEvict {
                                key: k,
                                bytes: b,
                                at: now,
                            });
                        }
                        if outcome.inserted {
                            self.tracer.emit(TraceEvent::CacheInsert {
                                key,
                                bytes,
                                at: now,
                            });
                        }
                    }
                }
            }
            // Host-resident intermediate inputs cross the bus.
            if input_transfer_bytes > 0 {
                match self.xfer(
                    now,
                    Direction::HostToDevice,
                    TransferKind::Input,
                    input_transfer_bytes,
                    Some(query),
                    true,
                ) {
                    Some(end) => ready_at = ready_at.max(end),
                    None => {
                        self.abort_task(task, true)?;
                        return Ok(());
                    }
                }
            }

            let duration =
                self.cost.duration(class, DeviceKind::CoProcessor, bytes_in, bytes_out);
            let solo = duration.as_nanos() as f64;
            let t = &mut self.tasks[task];
            t.kernel_duration = duration;
            t.remaining_ns = solo;
            // Remaining-time thresholds for the three later allocation
            // stages, ascending so the largest is popped first.
            t.milestones = vec![0.25 * solo, 0.5 * solo, 0.75 * solo];
            t.stage_bytes = stage;
            let epoch = t.epoch;
            self.events.push(ready_at, Ev::ComputeStart { task, epoch });
        } else {
            // CPU: pull any co-processor-resident inputs back to the
            // host. These transfers are durable — the CPU is the fallback
            // device, so its inputs must always arrive.
            let query = self.tasks[task].query;
            for &c in &self.tasks[task].children.clone() {
                if self.tasks[c].output_device == Some(DeviceId::Gpu) {
                    let bytes = self.d2h_consume_bytes(c);
                    let end = self
                        .xfer(
                            now,
                            Direction::DeviceToHost,
                            TransferKind::Input,
                            bytes,
                            Some(query),
                            false,
                        )
                        .expect("non-abortable transfers always complete");
                    ready_at = ready_at.max(end);
                    self.heap_free(Self::result_tag(c));
                    self.tasks[c].output_device = Some(DeviceId::Cpu);
                }
            }
            let duration = self.cost.duration(class, DeviceKind::Cpu, bytes_in, bytes_out);
            let t = &mut self.tasks[task];
            t.kernel_duration = duration;
            t.remaining_ns = duration.as_nanos() as f64;
            t.milestones = Vec::new();
            t.stage_bytes = 0;
            let epoch = t.epoch;
            self.events.push(ready_at, Ev::ComputeStart { task, epoch });
        }
        Ok(())
    }

    /// Tolerance for floating-point progress comparisons (nanoseconds).
    const EPS_NS: f64 = 1.0;

    fn on_compute_start(&mut self, task: usize, epoch: u32) -> Result<(), EngineError> {
        if self.tasks[task].epoch != epoch || self.tasks[task].status != Status::Running {
            return Ok(());
        }
        let device = self.tasks[task].device.expect("computing task is placed");
        let query = self.tasks[task].query;
        let class = self.tasks[task].node.op.op_class();
        if self.fault.abort_kernel(class, device) {
            // Injected kernel fault: surfaces as an ordinary abort.
            self.note_injected(Some(query), FaultKind::KernelAbort, self.now);
            self.abort_task(task, true)?;
            return Ok(());
        }
        if let Some(until) = self.fault.stall_until(device, self.now) {
            // The worker slot is stalled: the kernel launch is deferred
            // to the end of the window, in virtual time.
            let wait = until - self.now;
            self.note_injected(Some(query), FaultKind::Stall { wait }, self.now);
            self.note_injected_wasted(Some(query), wait);
            self.events.push(until, Ev::ComputeStart { task, epoch });
            return Ok(());
        }
        self.advance(device);
        self.compute[device.index()].push(task);
        self.reschedule(device);
        Ok(())
    }

    fn on_device_tick(&mut self, device: DeviceId, version: u64) -> Result<(), EngineError> {
        if self.tick_version[device.index()] != version {
            return Ok(());
        }
        self.advance(device);
        self.settle(device)?;
        self.reschedule(device);
        Ok(())
    }

    /// Progress every computing task on `device` up to `self.now`:
    /// `n` concurrent tasks each run at rate `1/n` (processor sharing).
    fn advance(&mut self, device: DeviceId) {
        let di = device.index();
        let dt = self.now.saturating_sub(self.last_update[di]);
        self.last_update[di] = self.now;
        let n = self.compute[di].len();
        if n == 0 || dt == VirtualTime::ZERO {
            return;
        }
        let dec = dt.as_nanos() as f64 / n as f64;
        for &t in &self.compute[di] {
            self.tasks[t].remaining_ns -= dec;
        }
    }

    /// Process every due allocation stage and completion on `device`.
    fn settle(&mut self, device: DeviceId) -> Result<(), EngineError> {
        let di = device.index();
        loop {
            // Next due action in deterministic compute-set order.
            let mut action: Option<(usize, bool)> = None; // (task, is_completion)
            for &t in &self.compute[di] {
                let rem = self.tasks[t].remaining_ns;
                if rem <= Self::EPS_NS {
                    action = Some((t, true));
                    break;
                }
                if let Some(&thr) = self.tasks[t].milestones.last() {
                    if rem <= thr + Self::EPS_NS {
                        action = Some((t, false));
                        break;
                    }
                }
            }
            let Some((t, done)) = action else {
                return Ok(());
            };
            if done {
                self.compute[di].retain(|&x| x != t);
                self.complete_task(t)?;
            } else {
                self.tasks[t].milestones.pop();
                let bytes = self.tasks[t].stage_bytes;
                // Growth stages are numbered 1..=3 after the pop.
                let stage = (3 - self.tasks[t].milestones.len()) as u32;
                let query = self.tasks[t].query;
                let mut injected = false;
                if !self.alloc_or_inject(
                    Self::working_tag(t),
                    bytes,
                    stage,
                    query,
                    &mut injected,
                ) {
                    // Mid-flight out-of-memory: the heap-contention abort.
                    self.compute[di].retain(|&x| x != t);
                    self.abort_task(t, injected)?;
                }
            }
        }
    }

    /// Re-arm the device's next tick: the earliest completion or
    /// allocation-stage crossing under the current sharing factor.
    fn reschedule(&mut self, device: DeviceId) {
        let di = device.index();
        self.tick_version[di] += 1;
        let n = self.compute[di].len();
        if n == 0 {
            return;
        }
        let mut min_dt = f64::INFINITY;
        for &t in &self.compute[di] {
            let rem = self.tasks[t].remaining_ns;
            let target = self.tasks[t].milestones.last().copied().unwrap_or(0.0);
            min_dt = min_dt.min((rem - target).max(0.0));
        }
        let dt = (min_dt * n as f64).ceil().max(1.0) as u64;
        self.events.push(
            self.now + VirtualTime::from_nanos(dt),
            Ev::DeviceTick { device, version: self.tick_version[di] },
        );
    }

    /// Abort a co-processor operator and restart it on the CPU. The
    /// caller removes the task from the device's compute set when it was
    /// already computing. `injected` marks aborts forced by the fault
    /// plan: the recovery path is identical (injected faults must be
    /// indistinguishable downstream), only the accounting differs.
    fn abort_task(&mut self, task: usize, injected: bool) -> Result<(), EngineError> {
        let device = self.tasks[task].device.expect("aborting a placed task");
        debug_assert_eq!(device, DeviceId::Gpu, "only co-processor operators abort");
        self.metrics.aborts += 1;
        let wasted = self.now - self.tasks[task].start_time;
        self.metrics.wasted_time += wasted;
        let query = self.tasks[task].query;
        self.metrics.faults.fallbacks += 1;
        self.query_faults[query].fallbacks += 1;
        if injected {
            self.note_injected_wasted(Some(query), wasted);
        }
        {
            let t = &self.tasks[task];
            self.tracer.emit(TraceEvent::OpSpan {
                query: query as u32,
                task: task as u32,
                op: t.node.op.op_class(),
                device,
                queued_at: t.queued_at,
                start: t.start_time,
                end: self.now,
                bytes_in: t.bytes_in,
                bytes_out: t.output_bytes,
                rows_out: t.output_rows,
                outcome: OpOutcome::Aborted { injected },
            });
            // The forced CPU restart is itself a placement decision.
            self.tracer.emit(TraceEvent::Placement {
                query: query as u32,
                task: task as u32,
                op: t.node.op.op_class(),
                phase: PlacePhase::Fallback,
                est: PerDevice::splat(VirtualTime::ZERO),
                chosen: DeviceId::Cpu,
                reason: PlaceReason::AbortFallback,
                at: self.now,
            });
        }
        self.heap_free(Self::working_tag(task));
        self.running[device] -= 1;
        let t = &mut self.tasks[task];
        t.epoch += 1;
        t.forced_cpu = true;
        // Restart on the CPU (CoGaDB's per-operator fallback, Section 2.5.1).
        self.enqueue(task, DeviceId::Cpu);
        self.dispatch(DeviceId::Cpu)?;
        self.dispatch(DeviceId::Gpu)?;
        Ok(())
    }

    /// Bookkeeping for a completed operator (called from `settle` once the
    /// task's remaining work reached zero and it left the compute set).
    fn complete_task(&mut self, task: usize) -> Result<(), EngineError> {
        let device = self.tasks[task].device.expect("finishing a placed task");
        self.running[device] -= 1;

        if device == DeviceId::Gpu {
            // Release working memory, retain the result on the heap.
            self.heap_free(Self::working_tag(task));
            let out_bytes = self.tasks[task].output_bytes;
            let ok = self.heap_alloc(Self::result_tag(task), out_bytes);
            debug_assert!(ok, "result reservation was covered by the working footprint");
            // Inputs held on the device are consumed now.
            for &c in &self.tasks[task].children.clone() {
                if self.tasks[c].output_device == Some(DeviceId::Gpu) {
                    self.heap_free(Self::result_tag(c));
                }
            }
        }
        // Drop children chunks — they are fully consumed.
        for &c in &self.tasks[task].children.clone() {
            self.tasks[c].output = None;
        }

        let busy = self.now - self.tasks[task].start_time;
        self.metrics.record_op(device, busy);
        {
            let t = &self.tasks[task];
            self.tracer.emit(TraceEvent::OpSpan {
                query: t.query as u32,
                task: task as u32,
                op: t.node.op.op_class(),
                device,
                queued_at: t.queued_at,
                start: t.start_time,
                end: self.now,
                bytes_in: t.bytes_in,
                bytes_out: t.output_bytes,
                rows_out: t.output_rows,
                outcome: OpOutcome::Completed,
            });
        }
        let t = &self.tasks[task];
        self.policy.observe(
            t.node.op.op_class(),
            device,
            t.bytes_in,
            t.output_bytes,
            t.kernel_duration,
        );

        self.tasks[task].status = Status::Done;
        self.tasks[task].output_device = Some(device);

        match self.tasks[task].parent {
            Some(p) => {
                self.tasks[p].pending_children -= 1;
                if self.tasks[p].pending_children == 0 {
                    self.make_ready(p)?;
                }
            }
            None => {
                // Root: return the result to the host.
                let query = self.tasks[task].query;
                let mut done_at = self.now;
                if device == DeviceId::Gpu {
                    let bytes = self.d2h_consume_bytes(task);
                    // Result transfers are durable: the fault layer only
                    // delays them, never loses them.
                    let end = self
                        .xfer(
                            self.now,
                            Direction::DeviceToHost,
                            TransferKind::Result,
                            bytes,
                            Some(query),
                            false,
                        )
                        .expect("non-abortable transfers always complete");
                    self.heap_free(Self::result_tag(task));
                    self.tasks[task].output_device = Some(DeviceId::Cpu);
                    done_at = end;
                }
                self.events.push(done_at, Ev::QueryDone { query });
            }
        }
        // A freed worker slot may unblock the queue.
        self.dispatch(device)?;
        Ok(())
    }

    fn on_query_done(&mut self, query: usize) -> Result<(), EngineError> {
        let q = &self.queries[query];
        let root = q.root;
        let session = q.session;
        let seq = q.seq;
        let submit_time = q.submit_time;
        let latency = self.now - submit_time;
        self.metrics.makespan = self.metrics.makespan.max(self.now);
        let output =
            self.tasks[root].output.take().expect("root output present").materialize();
        self.tracer.emit(TraceEvent::QueryDone {
            query: query as u32,
            session: session as u32,
            seq: seq as u32,
            submit: submit_time,
            end: self.now,
            rows: output.num_rows() as u64,
        });
        self.outcomes.push(QueryOutcome {
            session,
            seq,
            latency,
            rows: output.num_rows(),
            checksum: output.checksum(),
            faults: self.query_faults[query],
            result: self.opts.capture_results.then_some(output),
        });
        self.active_queries -= 1;

        // Periodic data-placement background job (Section 3.2).
        self.completed_since_update += 1;
        if self.opts.placement_update_period > 0
            && self.completed_since_update >= self.opts.placement_update_period
        {
            self.completed_since_update = 0;
            let new_keys = self.policy.update_data_placement(self.db, self.cache);
            for key in new_keys {
                let bytes = self.db.column_size(ColumnId(key.0 as u32));
                // Background placement transfers are durable and not
                // attributed to any one query.
                self.xfer(
                    self.now,
                    Direction::HostToDevice,
                    TransferKind::Placement,
                    bytes,
                    None,
                    false,
                );
                self.tracer.emit(TraceEvent::CacheInsert { key, bytes, at: self.now });
            }
        }

        // Closed loop: the session submits its next query.
        if let Some(plan) = self.sessions[session].pop_front() {
            self.admission_queue.push_back((session, plan, self.now));
        }
        self.process_admissions()?;
        Ok(())
    }
}

/// Postorder `(input_bytes, output_bytes)` estimates aligned with
/// [`flatten`]'s task order.
fn postorder_estimates(plan: &PlanNode, db: &Database) -> Vec<(f64, f64)> {
    fn rec(node: &PlanNode, db: &Database, out: &mut Vec<(f64, f64)>) {
        for c in node.children() {
            rec(c, db, out);
        }
        let e = estimate::estimate(node, db);
        out.push((estimate::estimate_input_bytes(node, db), e.bytes));
    }
    let mut out = Vec::new();
    rec(plan, db, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::policy::{CpuOnlyPolicy, Placement};
    use crate::expr::Expr;
    use crate::ops;
    use crate::plan::AggSpec;
    use crate::predicate::Predicate;
    use robustq_storage::gen::ssb::SsbGenerator;

    fn db() -> Database {
        SsbGenerator::new(1).with_rows_per_sf(2_000).generate()
    }

    fn q11_like() -> PlanNode {
        PlanNode::scan("lineorder", ["lo_orderdate", "lo_extendedprice", "lo_discount"])
            .filter(Predicate::and([
                Predicate::between("lo_discount", 1, 3),
                Predicate::cmp("lo_quantity", crate::predicate::CmpOp::Lt, 25),
            ]))
            .join(
                PlanNode::scan("date", ["d_datekey"])
                    .filter(Predicate::eq("d_year", 1993)),
                "lo_orderdate",
                "d_datekey",
            )
            .aggregate(
                [] as [&str; 0],
                vec![AggSpec::sum(
                    Expr::col("lo_extendedprice") * Expr::col("lo_discount"),
                    "revenue",
                )],
            )
    }

    /// A policy that pins everything to the GPU (compile time), like the
    /// paper's GPU-Only reference heuristic.
    struct GpuAll;
    impl PlacementPolicy for GpuAll {
        fn name(&self) -> &'static str {
            "gpu-all"
        }
        fn plan_query(
            &mut self,
            tasks: &[TaskInfo],
            _ctx: &PolicyCtx,
        ) -> Vec<Option<Placement>> {
            vec![Some(Placement::fixed(DeviceId::Gpu)); tasks.len()]
        }
    }

    #[test]
    fn cpu_only_run_produces_correct_result() {
        let db = db();
        let plan = q11_like();
        let expected = ops::execute_plan(&plan, &db).unwrap();

        let exec = Executor::new(&db, SimConfig::default());
        let mut policy = CpuOnlyPolicy;
        let opts = ExecOptions { capture_results: true, ..Default::default() };
        let out = exec.run(vec![vec![plan]], &mut policy, &opts).unwrap();
        assert_eq!(out.outcomes.len(), 1);
        let res = out.outcomes[0].result.as_ref().unwrap();
        assert_eq!(res.checksum(), expected.checksum());
        assert!(out.metrics.makespan > VirtualTime::ZERO);
        assert_eq!(out.metrics.h2d_bytes, 0, "CPU-only must not touch the bus");
        assert_eq!(out.metrics.aborts, 0);
        assert_eq!(out.metrics.ops_completed[DeviceId::Gpu], 0);
    }

    #[test]
    fn gpu_run_same_result_and_pays_transfers() {
        let db = db();
        let plan = q11_like();
        let expected = ops::execute_plan(&plan, &db).unwrap();

        let exec = Executor::new(&db, SimConfig::default());
        let mut policy = GpuAll;
        let opts = ExecOptions { capture_results: true, ..Default::default() };
        let out = exec.run(vec![vec![plan]], &mut policy, &opts).unwrap();
        let res = out.outcomes[0].result.as_ref().unwrap();
        assert_eq!(res.checksum(), expected.checksum());
        assert!(out.metrics.h2d_bytes > 0, "cold GPU run must transfer inputs");
        assert!(out.metrics.d2h_bytes > 0, "result must return to host");
        assert!(out.metrics.ops_completed[DeviceId::Gpu] > 0);
    }

    #[test]
    fn hot_cache_is_faster_than_cold() {
        let db = db();
        let plan = q11_like();
        let exec = Executor::new(&db, SimConfig::default());

        let cold = exec
            .run(vec![vec![plan.clone()]], &mut GpuAll, &ExecOptions::default())
            .unwrap();

        // Preload every base column the query touches.
        let preload: Vec<ColumnId> = [
            ("lineorder", "lo_orderdate"),
            ("lineorder", "lo_extendedprice"),
            ("lineorder", "lo_discount"),
            ("lineorder", "lo_quantity"),
            ("date", "d_datekey"),
            ("date", "d_year"),
        ]
        .iter()
        .map(|(t, c)| db.column_id(t, c).unwrap())
        .collect();
        let hot = exec
            .run(
                vec![vec![plan]],
                &mut GpuAll,
                &ExecOptions { preload, ..Default::default() },
            )
            .unwrap();
        assert!(
            hot.metrics.makespan < cold.metrics.makespan,
            "hot {} !< cold {}",
            hot.metrics.makespan,
            cold.metrics.makespan
        );
    }

    #[test]
    fn tiny_gpu_heap_forces_cpu_fallback_with_correct_results() {
        let db = db();
        let plan = q11_like();
        let expected = ops::execute_plan(&plan, &db).unwrap();

        // Heap too small for any operator: everything aborts to the CPU.
        let config = SimConfig::default().with_gpu_memory(64 * 1024).with_gpu_cache(0);
        let exec = Executor::new(&db, config);
        let opts = ExecOptions { capture_results: true, ..Default::default() };
        let out = exec.run(vec![vec![plan]], &mut GpuAll, &opts).unwrap();
        assert!(out.metrics.aborts > 0);
        assert!(out.metrics.wasted_time >= VirtualTime::ZERO);
        let res = out.outcomes[0].result.as_ref().unwrap();
        assert_eq!(res.checksum(), expected.checksum());
        // The heavy operators fell back to the CPU (tiny ones may fit).
        assert!(out.metrics.ops_completed[DeviceId::Cpu] >= out.metrics.aborts);
    }

    #[test]
    fn multi_session_closed_loop_runs_all_queries() {
        let db = db();
        let sessions: Vec<Vec<PlanNode>> =
            (0..3).map(|_| vec![q11_like(), q11_like()]).collect();
        let exec = Executor::new(&db, SimConfig::default());
        let out = exec
            .run(sessions, &mut CpuOnlyPolicy, &ExecOptions::default())
            .unwrap();
        assert_eq!(out.outcomes.len(), 6);
        assert_eq!(out.metrics.queries, 6);
        // All six results identical (same query).
        let first = out.outcomes[0].checksum;
        assert!(out.outcomes.iter().all(|o| o.checksum == first));
    }

    #[test]
    fn admission_control_serializes_queries() {
        let db = db();
        let sessions: Vec<Vec<PlanNode>> = (0..4).map(|_| vec![q11_like()]).collect();
        let exec = Executor::new(&db, SimConfig::default());

        let free = exec
            .run(sessions.clone(), &mut GpuAll, &ExecOptions::default())
            .unwrap();
        let gated = exec
            .run(
                sessions,
                &mut GpuAll,
                &ExecOptions { max_concurrent_queries: 1, ..Default::default() },
            )
            .unwrap();
        assert_eq!(gated.outcomes.len(), 4);
        // Serialized execution cannot be faster than concurrent admission
        // when no contention exists at this scale.
        assert!(gated.metrics.makespan >= free.metrics.makespan);
    }

    #[test]
    fn zero_queries_complete_immediately() {
        let db = db();
        let exec = Executor::new(&db, SimConfig::default());
        let out = exec
            .run(vec![], &mut CpuOnlyPolicy, &ExecOptions::default())
            .unwrap();
        assert!(out.outcomes.is_empty());
        assert_eq!(out.metrics.makespan, VirtualTime::ZERO);
        // Sessions that exist but hold no queries behave the same.
        let out = exec
            .run(vec![vec![], vec![]], &mut CpuOnlyPolicy, &ExecOptions::default())
            .unwrap();
        assert!(out.outcomes.is_empty());
    }

    #[test]
    fn single_operator_plan_runs() {
        let db = db();
        let plan = PlanNode::scan("date", ["d_year"]);
        let exec = Executor::new(&db, SimConfig::default());
        let opts = ExecOptions { capture_results: true, ..Default::default() };
        let out = exec.run(vec![vec![plan]], &mut GpuAll, &opts).unwrap();
        assert_eq!(out.outcomes[0].rows, 7 * 365);
        assert!(out.metrics.d2h_bytes > 0, "root result returns to host");
    }

    #[test]
    fn deep_select_chain_executes_in_order() {
        let db = db();
        // Ten stacked range filters that progressively narrow.
        let mut plan = PlanNode::scan("lineorder", ["lo_quantity"]);
        for hi in (25..35).rev() {
            plan = plan.filter(Predicate::cmp(
                "lo_quantity",
                crate::predicate::CmpOp::Lt,
                hi,
            ));
        }
        let expected = ops::execute_plan(&plan, &db).unwrap();
        let exec = Executor::new(&db, SimConfig::default());
        let opts = ExecOptions { capture_results: true, ..Default::default() };
        let out = exec.run(vec![vec![plan]], &mut GpuAll, &opts).unwrap();
        let res = out.outcomes[0].result.as_ref().unwrap();
        assert_eq!(res.checksum(), expected.checksum());
    }

    #[test]
    fn results_not_captured_by_default() {
        let db = db();
        let exec = Executor::new(&db, SimConfig::default());
        let out = exec
            .run(vec![vec![q11_like()]], &mut CpuOnlyPolicy, &ExecOptions::default())
            .unwrap();
        assert!(out.outcomes[0].result.is_none());
        assert!(out.outcomes[0].rows > 0 || out.outcomes[0].checksum == 0);
    }

    #[test]
    fn placement_period_zero_never_updates() {
        // A data-driven-style policy that would pin on update must never
        // be invoked with period 0.
        struct CountingPolicy(u32);
        impl PlacementPolicy for CountingPolicy {
            fn name(&self) -> &'static str {
                "counting"
            }
            fn update_data_placement(
                &mut self,
                _db: &Database,
                _cache: &mut robustq_sim::DataCache,
            ) -> Vec<CacheKey> {
                self.0 += 1;
                Vec::new()
            }
        }
        let db = db();
        let exec = Executor::new(&db, SimConfig::default());
        let mut policy = CountingPolicy(0);
        let opts = ExecOptions { placement_update_period: 0, ..Default::default() };
        exec.run(
            vec![vec![q11_like(), q11_like()]],
            &mut policy,
            &opts,
        )
        .unwrap();
        // Only the free run-start call, no periodic invocations.
        assert_eq!(policy.0, 1);
    }

    #[test]
    fn deterministic_runs() {
        let db = db();
        let exec = Executor::new(&db, SimConfig::default());
        let sessions: Vec<Vec<PlanNode>> = (0..2).map(|_| vec![q11_like()]).collect();
        let a = exec
            .run(sessions.clone(), &mut GpuAll, &ExecOptions::default())
            .unwrap();
        let b = exec.run(sessions, &mut GpuAll, &ExecOptions::default()).unwrap();
        assert_eq!(a.metrics.makespan, b.metrics.makespan);
        assert_eq!(a.metrics.h2d_bytes, b.metrics.h2d_bytes);
        assert_eq!(a.metrics.aborts, b.metrics.aborts);
    }

    #[test]
    fn tracing_does_not_change_metrics_and_reconciles() {
        let db = db();
        let exec = Executor::new(&db, SimConfig::default());
        let sessions: Vec<Vec<PlanNode>> = (0..2).map(|_| vec![q11_like()]).collect();

        let untraced = exec
            .run(sessions.clone(), &mut GpuAll, &ExecOptions::default())
            .unwrap();

        let tracer = Tracer::new();
        let opts = ExecOptions { tracer: tracer.clone(), ..Default::default() };
        let traced = exec.run(sessions, &mut GpuAll, &opts).unwrap();

        // Observing the run must not perturb it.
        assert_eq!(traced.metrics, untraced.metrics);

        let data = tracer.snapshot();
        assert_eq!(data.dropped, 0, "default ring must not overflow here");
        assert!(!data.events.is_empty());
        // The full metrics struct re-derives from the event stream alone.
        assert_eq!(RunMetrics::from_events(&data.events), traced.metrics);
        // Every placed operator produced a placement-decision record.
        let placements = data
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Placement { .. }))
            .count();
        assert!(placements > 0, "compile-time placements must be traced");
    }
}
