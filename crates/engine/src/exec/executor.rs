//! The workload executor facade.
//!
//! Executes closed-loop multi-session workloads against the simulated
//! machine — 1 host CPU plus K co-processors, each with its own column
//! cache, operator heap and host link. Operators run for real on the
//! host (results are correct); all timing, transfer, contention and
//! memory behaviour is simulated:
//!
//! * per-device FIFO ready queues with worker slots (bounded only when
//!   the policy chops — Section 5),
//! * input transfers over the per-device FIFO interconnect, with each
//!   co-processor's column cache consulted for base columns,
//! * staged co-processor heap allocation (Section 2.5.1: operators cannot
//!   pre-declare their footprint and allocate in several steps), so an
//!   operator can abort mid-flight, wasting the time it already spent
//!   (Figure 20's metric),
//! * abort handling: the failed operator restarts on the CPU; whether its
//!   successors follow depends on the placement strategy (Figure 8).
//!
//! This module is the thin public surface; the runtime itself is layered
//! (see `event_loop`, `device_rt`, `transfer`, `memory`, `admission` and
//! DESIGN.md §11 for the module map).

use crate::error::EngineError;
use crate::estimate;
use crate::exec::costmodel::{CostModelKind, ModelUpdate};
use crate::exec::device_rt::DeviceSet;
use crate::exec::event_loop::{Sim, Submission};
use crate::exec::memory::HeapSet;
use crate::exec::metrics::{QueryOutcome, RunMetrics, StagingStats};
use crate::exec::policy::PlacementPolicy;
use crate::parallel::ParallelCtx;
use crate::plan::PlanNode;
use robustq_sim::{
    CacheKey, CacheSet, CostModel as SimCostModel, EventQueue, FaultPlan, Interconnect,
    PerDevice, RetryPolicy, SimConfig, VirtualTime,
};
use robustq_storage::{ColumnId, Database, DbEpoch};
use robustq_trace::Tracer;
use std::collections::VecDeque;

/// Options controlling one workload run.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Keep full query results in the outcomes (tests); otherwise only
    /// row counts and checksums are retained.
    pub capture_results: bool,
    /// Run the policy's data-placement background job every N completed
    /// queries (0 = never). Mirrors the periodic job of Section 3.2.
    pub placement_update_period: usize,
    /// Maximum queries admitted concurrently (admission control — the
    /// reference mechanism of Section 6.2.2). `usize::MAX` = unbounded.
    pub max_concurrent_queries: usize,
    /// Columns pinned into every co-processor cache before the run
    /// starts, free of charge (the paper pre-loads access structures
    /// before benchmarks — Section 6.1).
    pub preload: Vec<ColumnId>,
    /// Real-CPU parallelism for the hot kernels (selection, join probe,
    /// aggregation). Affects wall-clock only: parallel results are
    /// bit-identical to serial, and *virtual* time comes from the cost
    /// model either way. Defaults to serial.
    pub parallel: ParallelCtx,
    /// Deterministic fault injection (chaos testing, DESIGN.md §8). The
    /// executor clones the plan at run start; with the default
    /// [`FaultPlan::disabled`] the fault layer is provably zero-cost —
    /// no generator draws, bit-identical runs.
    pub fault: FaultPlan,
    /// Recovery policy for transient transfer faults: bounded
    /// retry-with-backoff in virtual time.
    pub retry: RetryPolicy,
    /// Structured tracing (DESIGN.md §10). The default disabled tracer is
    /// a single-branch no-op: no allocations, byte-identical runs. Enable
    /// with [`Tracer::new`] and keep a clone to read the events back.
    pub tracer: Tracer,
    /// Intra-operator sharding (DESIGN.md §12): split qualifying leaf
    /// scans into this many device-shards at admission, merged by a
    /// CPU-side barrier task. `0` disables sharding (the default — task
    /// graphs are byte-identical to earlier releases). Values are clamped
    /// to the co-processor count at admission, so `usize::MAX` means
    /// "one shard per co-processor".
    pub shard_ways: usize,
    /// Minimum estimated input bytes before a scan is worth sharding;
    /// smaller scans stay whole (fan-out overhead would dominate).
    pub shard_min_bytes: f64,
    /// Admission-queue depth cap (open-loop overload protection,
    /// DESIGN.md §13): a query arriving while the queue holds this many
    /// waiters is shed immediately. `usize::MAX` (the default) never
    /// sheds.
    pub queue_cap: usize,
    /// Admission timeout: a query that waited in the admission queue at
    /// least this long is shed when it reaches the queue head instead of
    /// executing. [`VirtualTime::ZERO`] (the default) disables the
    /// timeout.
    pub admission_timeout: VirtualTime,
    /// Which learned cost model the placement policy should estimate
    /// with ([`CostModelKind::Static`] by default — bit-identical to
    /// pre-trait behaviour). Forwarded to
    /// [`PlacementPolicy::set_cost_model`] once per run.
    pub cost_model: CostModelKind,
    /// Chunked out-of-core staging: operators whose device footprint
    /// exceeds the heap are partitioned into chunks that transfer,
    /// execute and evict in sequence instead of aborting to the CPU
    /// (DESIGN.md §15). Disabled by default — the staged-allocation
    /// abort path of Section 2.5.1 is part of the golden behaviour.
    pub chunked_staging: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            capture_results: false,
            placement_update_period: 1,
            max_concurrent_queries: usize::MAX,
            preload: Vec::new(),
            parallel: ParallelCtx::serial(),
            fault: FaultPlan::disabled(),
            retry: RetryPolicy::default(),
            tracer: Tracer::disabled(),
            shard_ways: 0,
            shard_min_bytes: 0.0,
            queue_cap: usize::MAX,
            admission_timeout: VirtualTime::ZERO,
            cost_model: CostModelKind::Static,
            chunked_staging: false,
        }
    }
}

/// One scheduled open-loop submission: at virtual-time `at`, virtual
/// session `session` submits `plan` as its `seq`-th query. Build
/// schedules with the `robustq-serve` arrival generators, or by hand.
#[derive(Debug, Clone)]
pub struct Arrival {
    /// Submission instant.
    pub at: VirtualTime,
    /// Issuing virtual session (a label — open-loop sessions hold no
    /// state, so pools of 10⁵⁻⁶ sessions cost nothing).
    pub session: u32,
    /// Position within the session's stream.
    pub seq: u32,
    /// The query plan.
    pub plan: PlanNode,
}

/// How a standing query's window advances per tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowKind {
    /// Consecutive disjoint windows: tick `k` covers the feed rows that
    /// arrived in `(k·period, (k+1)·period]`.
    Tumbling,
    /// Overlapping windows: tick `k` covers the rows that arrived in
    /// `((k+1)·period − length, (k+1)·period]`.
    Sliding {
        /// Window length in virtual time (≥ the period for overlap).
        length: VirtualTime,
    },
}

/// A query registered once and re-executed per window tick against the
/// feed-table rows its window covers (DESIGN.md §16). Every tick goes
/// through ordinary admission control; its results are bit-identical to
/// running the same plan one-shot against a static snapshot of the
/// window's rows.
#[derive(Debug, Clone)]
pub struct StandingQuery {
    /// Virtual session the ticks report under. Use ids above the arrival
    /// sessions' so per-session metrics separate cleanly.
    pub session: u32,
    /// The registered plan.
    pub plan: PlanNode,
    /// Name of the fed table the window ranges over; scans of every
    /// other table read in full (static dimensions).
    pub table: String,
    /// Tumbling or sliding window.
    pub kind: WindowKind,
    /// Tick period in virtual time.
    pub period: VirtualTime,
    /// Number of ticks to fire.
    pub ticks: u32,
}

/// One scheduled feed commit: the append that the database committed
/// under `epoch` becomes visible at virtual instant `at`.
#[derive(Debug, Clone, Copy)]
pub struct FeedEvent {
    /// Commit instant.
    pub at: VirtualTime,
    /// Epoch of the (pre-built) append this event replays.
    pub epoch: DbEpoch,
}

/// The feed arrival process of a streaming run: a time-sorted replay
/// schedule over a database whose appends are already built. Epochs not
/// scheduled (below every scheduled epoch of their table) count as
/// pre-run history.
#[derive(Debug, Clone, Default)]
pub struct FeedSchedule {
    /// Scheduled commits, sorted by `at`.
    pub events: Vec<FeedEvent>,
}

/// Result of a workload run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Aggregated run metrics.
    pub metrics: RunMetrics,
    /// One entry per executed query, in completion order.
    pub outcomes: Vec<QueryOutcome>,
    /// Predicted-vs-actual cost-model samples, one per completed
    /// operator observed by a model-backed policy, in completion order.
    /// Empty for model-free policies.
    pub model_samples: Vec<ModelUpdate>,
    /// Chunked-staging counters (all zero unless
    /// [`ExecOptions::chunked_staging`] engaged).
    pub staging: StagingStats,
}

/// The workload executor: a database plus a machine configuration.
pub struct Executor<'a> {
    db: &'a Database,
    config: SimConfig,
}

impl<'a> Executor<'a> {
    /// An executor over `db` and the given machine.
    pub fn new(db: &'a Database, config: SimConfig) -> Self {
        Executor { db, config }
    }

    /// The database queries run against.
    pub fn database(&self) -> &Database {
        self.db
    }

    /// The simulated machine configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Execute `sessions` (each a queue of queries, run closed-loop) under
    /// `policy`, starting from cold co-processor caches.
    pub fn run(
        &self,
        sessions: Vec<Vec<PlanNode>>,
        policy: &mut dyn PlacementPolicy,
        opts: &ExecOptions,
    ) -> Result<RunOutcome, EngineError> {
        let mut caches =
            CacheSet::for_topology(&self.config.topology, self.config.cache_policy);
        self.run_with_cache(sessions, policy, opts, &mut caches)
    }

    /// Like [`Executor::run`] but continuing from (and updating) existing
    /// caches — this is how warm-up runs leave the column caches warm for
    /// the measured run, matching the paper's procedure of running each
    /// workload twice before measuring (Section 6.1).
    pub fn run_with_cache(
        &self,
        sessions: Vec<Vec<PlanNode>>,
        policy: &mut dyn PlacementPolicy,
        opts: &ExecOptions,
        caches: &mut CacheSet,
    ) -> Result<RunOutcome, EngineError> {
        self.run_inner(
            sessions,
            Vec::new(),
            FeedSchedule::default(),
            Vec::new(),
            policy,
            opts,
            caches,
        )
    }

    /// Execute an open-loop arrival schedule (DESIGN.md §13): each
    /// [`Arrival`] submits its plan at its virtual-time instant,
    /// independent of how earlier queries are progressing. Overload is
    /// handled by [`ExecOptions::queue_cap`] /
    /// [`ExecOptions::admission_timeout`] shedding; the run completes
    /// when every arrival either finished or was shed. Starts from cold
    /// co-processor caches.
    pub fn run_open_loop(
        &self,
        arrivals: Vec<Arrival>,
        policy: &mut dyn PlacementPolicy,
        opts: &ExecOptions,
    ) -> Result<RunOutcome, EngineError> {
        let mut caches =
            CacheSet::for_topology(&self.config.topology, self.config.cache_policy);
        self.run_open_loop_with_cache(arrivals, policy, opts, &mut caches)
    }

    /// Like [`Executor::run_open_loop`] but continuing from (and
    /// updating) existing caches, so warm-up runs carry over — mirroring
    /// [`Executor::run_with_cache`].
    ///
    /// Arrivals must be sorted by `at`; same-instant arrivals submit in
    /// schedule order.
    pub fn run_open_loop_with_cache(
        &self,
        arrivals: Vec<Arrival>,
        policy: &mut dyn PlacementPolicy,
        opts: &ExecOptions,
        caches: &mut CacheSet,
    ) -> Result<RunOutcome, EngineError> {
        debug_assert!(
            arrivals.windows(2).all(|w| w[0].at <= w[1].at),
            "arrival schedule must be sorted by time"
        );
        self.run_inner(
            Vec::new(),
            arrivals,
            FeedSchedule::default(),
            Vec::new(),
            policy,
            opts,
            caches,
        )
    }

    /// Execute a streaming run: an open-loop arrival schedule interleaved
    /// with a feed replay, plus standing queries fired per window tick
    /// (DESIGN.md §16). The database must already contain every scheduled
    /// append (build it, then replay it); `Ev`-level append events only
    /// flip epochs and cache residency in virtual time. Starts from cold
    /// co-processor caches.
    pub fn run_streaming(
        &self,
        arrivals: Vec<Arrival>,
        feed: FeedSchedule,
        standing: Vec<StandingQuery>,
        policy: &mut dyn PlacementPolicy,
        opts: &ExecOptions,
    ) -> Result<RunOutcome, EngineError> {
        let mut caches =
            CacheSet::for_topology(&self.config.topology, self.config.cache_policy);
        self.run_streaming_with_cache(arrivals, feed, standing, policy, opts, &mut caches)
    }

    /// Like [`Executor::run_streaming`] but continuing from (and
    /// updating) existing caches.
    pub fn run_streaming_with_cache(
        &self,
        arrivals: Vec<Arrival>,
        feed: FeedSchedule,
        standing: Vec<StandingQuery>,
        policy: &mut dyn PlacementPolicy,
        opts: &ExecOptions,
        caches: &mut CacheSet,
    ) -> Result<RunOutcome, EngineError> {
        debug_assert!(
            arrivals.windows(2).all(|w| w[0].at <= w[1].at),
            "arrival schedule must be sorted by time"
        );
        debug_assert!(
            feed.events.windows(2).all(|w| w[0].at <= w[1].at),
            "feed schedule must be sorted by time"
        );
        self.run_inner(Vec::new(), arrivals, feed, standing, policy, opts, caches)
    }

    #[allow(clippy::too_many_arguments)]
    fn run_inner(
        &self,
        sessions: Vec<Vec<PlanNode>>,
        arrivals: Vec<Arrival>,
        feed: FeedSchedule,
        standing: Vec<StandingQuery>,
        policy: &mut dyn PlacementPolicy,
        opts: &ExecOptions,
        caches: &mut CacheSet,
    ) -> Result<RunOutcome, EngineError> {
        let feed_rt = crate::exec::feed::build_feed(self.db, &feed, &standing)?;
        if !opts.preload.is_empty() {
            for (_, cache) in caches.iter_mut() {
                let mut budget = cache.capacity();
                let mut pins = Vec::new();
                for &col in &opts.preload {
                    let bytes = self.db.column_size(col);
                    // Pin at the column's *initial* epoch so preloaded
                    // residency survives until the first append touches
                    // it. Batch runs have an empty epoch table — the key
                    // degenerates to the classic epoch-0 encoding.
                    let epoch =
                        feed_rt.col_epochs.get(col.index()).copied().unwrap_or(0);
                    if bytes <= budget {
                        budget -= bytes;
                        pins.push((CacheKey::column_at(col.0, epoch), bytes));
                    }
                }
                cache.set_pinned(&pins);
            }
        }
        let total_queries: usize = sessions.iter().map(Vec::len).sum::<usize>()
            + arrivals.len()
            + standing.iter().map(|s| s.ticks as usize).sum::<usize>();
        let session_count = sessions.len();
        let device_count = self.config.topology.device_count();
        let mut sim = Sim {
            db: self.db,
            config: &self.config,
            policy,
            opts,
            cost: SimCostModel::new(self.config.cost.clone()),
            caches,
            heaps: HeapSet::for_topology(&self.config.topology),
            link: Interconnect::for_topology(&self.config.topology),
            fault: opts.fault.clone(),
            query_faults: Vec::new(),
            events: EventQueue::new(),
            tasks: Vec::new(),
            queries: Vec::new(),
            devices: DeviceSet::new(device_count),
            sessions: sessions.into_iter().map(VecDeque::from).collect(),
            session_seq: vec![0; session_count],
            arrivals: arrivals
                .into_iter()
                .map(|a| {
                    Some(Submission {
                        session: a.session as usize,
                        seq: a.seq as usize,
                        plan: a.plan,
                        submit: a.at,
                        window: None,
                        standing: None,
                    })
                })
                .collect(),
            admission_queue: VecDeque::new(),
            feed: feed_rt,
            active_queries: 0,
            completed_since_update: 0,
            metrics: RunMetrics {
                // Topology-sized so reports always print every device,
                // busy or not (and K = 1 output keeps its exact shape).
                device_busy: PerDevice::splat(VirtualTime::ZERO, device_count),
                ops_completed: PerDevice::splat(0, device_count),
                ..RunMetrics::default()
            },
            outcomes: Vec::new(),
            model_samples: Vec::new(),
            staging: StagingStats::default(),
            now: VirtualTime::ZERO,
            tracer: opts.tracer.clone(),
        };
        sim.run(total_queries)
    }
}

/// Postorder `(input_bytes, output_bytes)` estimates aligned with
/// [`crate::exec::task::flatten`]'s task order.
pub(crate) fn postorder_estimates(plan: &PlanNode, db: &Database) -> Vec<(f64, f64)> {
    fn rec(node: &PlanNode, db: &Database, out: &mut Vec<(f64, f64)>) {
        for c in node.children() {
            rec(c, db, out);
        }
        let e = estimate::estimate(node, db);
        out.push((estimate::estimate_input_bytes(node, db), e.bytes));
    }
    let mut out = Vec::new();
    rec(plan, db, &mut out);
    out
}
