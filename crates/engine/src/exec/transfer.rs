//! Interconnect staging: transfers with fault injection and retry, and
//! the cache consults that decide what actually crosses a host link.
//!
//! Every byte entering or leaving a co-processor goes through
//! [`Sim::xfer`], which schedules the payload on *that device's* host
//! link (links are independent FIFOs; traffic to one co-processor never
//! queues behind another's) and lets the fault layer fail, retry or slow
//! the attempt. Base-column inputs first consult the device's column
//! cache ([`Sim::stage_base_columns`]); sibling- or co-processor-resident
//! intermediates return to the host via [`Sim::pull_child_to_host`].

use crate::error::EngineError;
use crate::exec::event_loop::Sim;
use robustq_sim::{
    partition_bytes, CacheKey, DeviceId, Direction, TransferFault, VirtualTime,
};
use robustq_trace::{FaultKind, TraceEvent, TransferKind};

impl Sim<'_, '_> {
    /// Bytes that cross the bus when the host consumes a device-resident
    /// output. Scan outputs travel as *position lists* (4 bytes/row): the
    /// host already holds every base column, so only the qualifying
    /// positions matter — CoGaDB's positional processing model. All other
    /// operators materialize payloads that must move in full.
    pub(crate) fn d2h_consume_bytes(&self, task: usize) -> u64 {
        let t = &self.tasks[task];
        match t.node.op {
            crate::exec::task::TaskOp::Scan { .. }
            | crate::exec::task::TaskOp::ScanShard { .. } => {
                (t.output_rows * 4).min(t.output_bytes)
            }
            _ => t.output_bytes,
        }
    }

    /// The trace id of an optionally attributable query.
    pub(crate) fn qid(query: Option<usize>) -> u32 {
        query.map_or(TraceEvent::NO_QUERY, |q| q as u32)
    }

    /// Record one fired injection, attributed to `query` when known.
    /// Emitted fault kinds mirror the plan's own `FaultStats` accounting
    /// one-to-one, so trace-derived stats reconcile exactly.
    pub(crate) fn note_injected(
        &mut self,
        query: Option<usize>,
        kind: FaultKind,
        at: VirtualTime,
    ) {
        self.metrics.faults.injected += 1;
        if let Some(q) = query {
            self.query_faults[q].injected += 1;
        }
        self.tracer.emit(TraceEvent::Fault { kind, query: Self::qid(query), at });
    }

    /// Record one scheduled transfer retry.
    pub(crate) fn note_retry(
        &mut self,
        query: Option<usize>,
        backoff: VirtualTime,
        at: VirtualTime,
    ) {
        self.metrics.faults.retries += 1;
        if let Some(q) = query {
            self.query_faults[q].retries += 1;
        }
        self.tracer.emit(TraceEvent::Retry { query: Self::qid(query), backoff, at });
    }

    /// Record virtual time lost to injections.
    pub(crate) fn note_injected_wasted(&mut self, query: Option<usize>, t: VirtualTime) {
        self.metrics.faults.injected_wasted += t;
        if let Some(q) = query {
            self.query_faults[q].injected_wasted += t;
        }
    }

    /// Charge one transfer attempt to the run metrics (aggregated over
    /// links: the headline h2d/d2h figures stay fleet totals).
    pub(crate) fn charge_transfer(&mut self, dir: Direction, service: VirtualTime, bytes: u64) {
        match dir {
            Direction::HostToDevice => {
                self.metrics.h2d_time += service;
                self.metrics.h2d_bytes += bytes;
            }
            Direction::DeviceToHost => {
                self.metrics.d2h_time += service;
                self.metrics.d2h_bytes += bytes;
            }
        }
    }

    /// One logical transfer over `device`'s host link, with fault
    /// injection and bounded retry-with-backoff in *virtual* time (every
    /// failed attempt occupies the FIFO for its full service window, then
    /// the retry waits out an exponential backoff).
    ///
    /// Returns `Some(end)` when the payload arrived. Returns `None` —
    /// only possible when `abortable` — for a permanent fault or for
    /// transient faults exhausting the retry budget; the caller then
    /// aborts the operator to the CPU. Non-abortable transfers (results
    /// returning to the host, background placement traffic) always
    /// complete: permanent faults degrade to transient and the fault
    /// layer stops injecting once the budget is spent.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn xfer(
        &mut self,
        now: VirtualTime,
        device: DeviceId,
        dir: Direction,
        kind: TransferKind,
        bytes: u64,
        query: Option<usize>,
        abortable: bool,
    ) -> Option<VirtualTime> {
        let qid = Self::qid(query);
        let mut at = now;
        let mut failures: u32 = 0;
        loop {
            // Capture the raw draw before the degradation below: the plan
            // already counted a permanent in its stats, and the trace
            // reports the same kind so the two always reconcile.
            let (decision, raw_kind) = if failures > self.opts.retry.max_retries {
                (None, None) // budget spent: durable transfers complete clean
            } else {
                let raw = self.fault.transfer_fault(dir);
                let raw_kind = raw.map(|f| match f {
                    TransferFault::Transient => FaultKind::TransferTransient,
                    TransferFault::Permanent => FaultKind::TransferPermanent,
                    TransferFault::Spike(_) => FaultKind::TransferSpike,
                });
                let d = match raw {
                    Some(TransferFault::Permanent) if !abortable => {
                        Some(TransferFault::Transient)
                    }
                    d => d,
                };
                (d, raw_kind)
            };
            match decision {
                None => {
                    let tr = self.link.transfer(at, device, dir, bytes);
                    self.charge_transfer(dir, tr.service, bytes);
                    self.tracer.emit(TraceEvent::Transfer {
                        device,
                        dir,
                        kind,
                        query: qid,
                        bytes,
                        start: tr.start,
                        end: tr.end,
                        service: tr.service,
                        faulted: false,
                        waste: VirtualTime::ZERO,
                    });
                    return Some(tr.end);
                }
                Some(TransferFault::Spike(f)) => {
                    let tr = self.link.transfer_scaled(at, device, dir, bytes, f);
                    self.charge_transfer(dir, tr.service, bytes);
                    let clean = self.link.params(device).service_time(bytes);
                    let waste = tr.service.saturating_sub(clean);
                    self.note_injected(query, FaultKind::TransferSpike, at);
                    self.note_injected_wasted(query, waste);
                    self.tracer.emit(TraceEvent::Transfer {
                        device,
                        dir,
                        kind,
                        query: qid,
                        bytes,
                        start: tr.start,
                        end: tr.end,
                        service: tr.service,
                        faulted: true,
                        waste,
                    });
                    return Some(tr.end);
                }
                Some(TransferFault::Permanent) => {
                    // The link errors out before the payload moves.
                    self.note_injected(query, FaultKind::TransferPermanent, at);
                    return None;
                }
                Some(TransferFault::Transient) => {
                    // The failed attempt still occupied the bus.
                    let tr = self.link.transfer(at, device, dir, bytes);
                    self.charge_transfer(dir, tr.service, bytes);
                    let fault_kind =
                        raw_kind.expect("a transient decision implies a fault draw");
                    self.note_injected(query, fault_kind, at);
                    failures += 1;
                    if abortable && failures > self.opts.retry.max_retries {
                        self.note_injected_wasted(query, tr.service);
                        self.tracer.emit(TraceEvent::Transfer {
                            device,
                            dir,
                            kind,
                            query: qid,
                            bytes,
                            start: tr.start,
                            end: tr.end,
                            service: tr.service,
                            faulted: true,
                            waste: tr.service,
                        });
                        return None;
                    }
                    let backoff = self.opts.retry.backoff(failures);
                    self.note_retry(query, backoff, tr.end);
                    self.note_injected_wasted(query, tr.service + backoff);
                    self.tracer.emit(TraceEvent::Transfer {
                        device,
                        dir,
                        kind,
                        query: qid,
                        bytes,
                        start: tr.start,
                        end: tr.end,
                        service: tr.service,
                        faulted: true,
                        waste: tr.service + backoff,
                    });
                    at = tr.end + backoff;
                }
            }
        }
    }

    /// Consult `device`'s column cache for every base column of `task`,
    /// transferring misses over its host link (and caching them when the
    /// policy uses operator-driven placement).
    ///
    /// A sharded task only touches its row slice, so it probes the
    /// matching *partition* key first (a placement manager may have homed
    /// exactly that slice here), falls back to the whole-column key, and
    /// on a full miss transfers and caches just the partition's bytes.
    ///
    /// Returns `Ok(Some(ready_at))` once every column is resident,
    /// `Ok(None)` when a permanent transfer fault aborted the operator
    /// (the abort is already handled inside).
    pub(crate) fn stage_base_columns(
        &mut self,
        task: usize,
        device: DeviceId,
        now: VirtualTime,
    ) -> Result<Option<VirtualTime>, EngineError> {
        let query = self.tasks[task].query;
        let shard = self.tasks[task].node.op.shard_spec();
        let caches_on_miss = self.policy.caches_on_miss();
        let mut ready_at = now;
        for &col in &self.tasks[task].base_columns.clone() {
            let full = self.db.column_size(col);
            let epoch = self.col_epoch(col);
            let (key, bytes) = match shard {
                Some(s) => {
                    let pkey = CacheKey::partition_at(col.0, s.index, s.of, epoch);
                    let ckey = CacheKey::column_at(col.0, epoch);
                    // Prefer whichever key is resident (peeked without
                    // touching stats) so the single counted probe below
                    // records exactly one hit or miss per staged column.
                    if !self.caches.device(device).contains(pkey)
                        && self.caches.device(device).contains(ckey)
                    {
                        (ckey, full)
                    } else {
                        (pkey, partition_bytes(full, s.index, s.of))
                    }
                }
                None => (CacheKey::column_at(col.0, epoch), full),
            };
            let hit = self.caches.device_mut(device).probe(key);
            self.tracer.emit(TraceEvent::CacheProbe { device, key, bytes, hit, at: now });
            if !hit {
                match self.xfer(
                    now,
                    device,
                    Direction::HostToDevice,
                    TransferKind::Input,
                    bytes,
                    Some(query),
                    true,
                ) {
                    Some(end) => ready_at = ready_at.max(end),
                    None => {
                        self.abort_task(task, true)?;
                        return Ok(None);
                    }
                }
                if caches_on_miss {
                    let outcome = self.caches.device_mut(device).insert(key, bytes);
                    for &(k, b) in &outcome.evicted {
                        self.tracer.emit(TraceEvent::CacheEvict {
                            device,
                            key: k,
                            bytes: b,
                            at: now,
                        });
                    }
                    if outcome.inserted {
                        self.tracer.emit(TraceEvent::CacheInsert {
                            device,
                            key,
                            bytes,
                            at: now,
                        });
                    }
                }
            }
        }
        Ok(Some(ready_at))
    }

    /// Return a co-processor-resident child output to the host: a durable
    /// device→host transfer over the child's link, releasing its retained
    /// result from that device's heap. Returns when the payload arrived.
    pub(crate) fn pull_child_to_host(
        &mut self,
        child: usize,
        query: usize,
        now: VirtualTime,
    ) -> VirtualTime {
        let source = self.tasks[child]
            .output_device
            .expect("pulling an unplaced output");
        debug_assert!(source.is_coprocessor(), "host-resident outputs need no pull");
        let bytes = self.d2h_consume_bytes(child);
        let end = self
            .xfer(
                now,
                source,
                Direction::DeviceToHost,
                TransferKind::Input,
                bytes,
                Some(query),
                false,
            )
            .expect("non-abortable transfers always complete");
        self.heap_free(source, Self::result_tag(child));
        self.tasks[child].output_device = Some(DeviceId::Cpu);
        end
    }
}
