//! Feed replay and standing-query windows (DESIGN.md §16).
//!
//! Streaming runs replay a pre-built append history in virtual time: the
//! executor receives the database with every batch already appended
//! (epochs `1..=N` in the append log), plus a schedule that says *when*
//! each epoch commits. Because appends are strictly additive — row
//! prefixes, string-dictionary prefixes and sealed segments are never
//! rewritten — a query that bounds its feed-table scan by the rows
//! visible at its submission instant observes exactly the database state
//! of that virtual moment. `Ev::Append` therefore moves no data; it
//! bumps the per-column data epochs and invalidates stale cache
//! residency, so only the touched columns re-stage.
//!
//! Standing queries are plans registered once and re-executed per
//! tumbling or sliding window tick. Every fire is an ordinary query
//! through admission control (it can shed, queue and fault like any
//! other), tagged with the window's feed-table row range.

use crate::error::EngineError;
use crate::exec::event_loop::{QueryWindow, Sim, Submission};
use crate::exec::executor::{FeedSchedule, StandingQuery, WindowKind};
use crate::plan::PlanNode;
use robustq_storage::{ColumnId, Database};
use robustq_trace::TraceEvent;
use robustq_sim::VirtualTime;
use std::collections::HashMap;

/// One scheduled append: epoch `epoch` of table `table` commits at `at`.
/// The rows are already in the database; this event only flips epochs.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FeedAppendRt {
    pub(crate) at: VirtualTime,
    /// Registration index of the appended table.
    pub(crate) table: usize,
    /// Rows the batch added.
    pub(crate) rows: u64,
    /// Raw payload bytes the batch added.
    pub(crate) bytes: u64,
    /// The epoch the batch committed under.
    pub(crate) epoch: u64,
}

/// One precomputed window tick of a standing query.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WindowFireRt {
    /// Standing-query registration index.
    pub(crate) standing: u32,
    /// Tick number (0-based; doubles as the submission `seq`).
    pub(crate) tick: u32,
    pub(crate) at: VirtualTime,
    /// Feed-table row range `[lo, hi)` the tick scans.
    pub(crate) lo: u64,
    pub(crate) hi: u64,
}

/// The registered plan behind a standing query.
pub(crate) struct StandingPlanRt {
    pub(crate) plan: PlanNode,
    /// Virtual session the ticks report under (above all arrival
    /// sessions, so per-session metrics separate cleanly).
    pub(crate) session: usize,
    /// Registration index of the windowed feed table.
    pub(crate) table: usize,
}

/// All per-run feed state. `FeedRt::default()` (no appends, no standing
/// queries, per-column epochs from the database) is a batch run — every
/// epoch is 0 for a never-appended database, so cache keys and goldens
/// are unchanged.
#[derive(Default)]
pub(crate) struct FeedRt {
    pub(crate) appends: Vec<FeedAppendRt>,
    pub(crate) fires: Vec<WindowFireRt>,
    pub(crate) plans: Vec<StandingPlanRt>,
    /// Per-column data epoch as of the current virtual instant, indexed
    /// by [`ColumnId::index`]. Starts at each column's pre-feed epoch and
    /// is bumped by `Ev::Append` as the replay advances.
    pub(crate) col_epochs: Vec<u64>,
}

/// Resolve a feed schedule and standing-query registrations against the
/// (pre-built) database into replay-ready runtime state: the append
/// events, every window tick's precomputed `[lo, hi)` feed-table bounds,
/// and the initial per-column epochs.
///
/// Returns the all-empty [`FeedRt`] when both inputs are empty, so batch
/// entry points stay bit-identical to earlier releases.
pub(crate) fn build_feed(
    db: &Database,
    feed: &FeedSchedule,
    standing: &[StandingQuery],
) -> Result<FeedRt, EngineError> {
    if feed.events.is_empty() && standing.is_empty() {
        return Ok(FeedRt::default());
    }
    let mut appends = Vec::with_capacity(feed.events.len());
    // Rows of each fed table visible after each scheduled commit, in
    // schedule order — the window-bound lookup table.
    let mut table_feed: HashMap<usize, Vec<(VirtualTime, u64)>> = HashMap::new();
    // Per-table first scheduled epoch (everything below is pre-run).
    let mut min_sched: HashMap<usize, (u64, u64)> = HashMap::new();
    for ev in &feed.events {
        let rec = db
            .append_log()
            .iter()
            .find(|r| r.epoch == ev.epoch.0)
            .ok_or_else(|| {
                EngineError::Internal(format!(
                    "feed schedules epoch {} but no append committed under it",
                    ev.epoch.0
                ))
            })?;
        appends.push(FeedAppendRt {
            at: ev.at,
            table: rec.table,
            rows: rec.rows as u64,
            bytes: rec.bytes,
            epoch: rec.epoch,
        });
        let visible_after = (rec.base_rows + rec.rows) as u64;
        table_feed.entry(rec.table).or_default().push((ev.at, visible_after));
        let e = min_sched
            .entry(rec.table)
            .or_insert((rec.epoch, rec.base_rows as u64));
        if rec.epoch < e.0 {
            *e = (rec.epoch, rec.base_rows as u64);
        }
    }
    debug_assert!(
        appends.windows(2).all(|w| w[0].at <= w[1].at),
        "feed schedule must be sorted by commit instant"
    );
    debug_assert!(
        table_feed.values().all(|v| v.windows(2).all(|w| w[0].1 <= w[1].1)),
        "per-table appends must replay in epoch order"
    );

    // A fed table's columns start at the last *pre-run* epoch (the
    // greatest committed epoch below the first scheduled one); unfed
    // tables keep their committed column epochs.
    let mut col_epochs: Vec<u64> = (0..db.num_columns() as u32)
        .map(|i| db.column_epoch(ColumnId(i)))
        .collect();
    for id in db.all_column_ids() {
        let t = db.table_of(id);
        if let Some(&(first, _)) = min_sched.get(&t) {
            col_epochs[id.index()] = db
                .append_log()
                .iter()
                .filter(|r| r.table == t && r.epoch < first)
                .map(|r| r.epoch)
                .max()
                .unwrap_or(0);
        }
    }

    let visible = |table: usize, at: VirtualTime| -> u64 {
        let last = table_feed
            .get(&table)
            .and_then(|v| v.iter().rev().find(|&&(t, _)| t <= at));
        match last {
            Some(&(_, rows)) => rows,
            // Before the first scheduled commit (or with no feed at all)
            // the table shows its pre-run rows.
            None => match min_sched.get(&table) {
                Some(&(_, base)) => base,
                None => db.tables()[table].num_rows() as u64,
            },
        }
    };

    let mut plans = Vec::with_capacity(standing.len());
    let mut fires = Vec::new();
    for (s, sq) in standing.iter().enumerate() {
        let table = db.table_position(&sq.table).ok_or_else(|| {
            EngineError::Internal(format!("standing query over unknown table {}", sq.table))
        })?;
        let period = sq.period.as_nanos().max(1);
        for tick in 0..sq.ticks {
            let close = VirtualTime::from_nanos(period * (tick as u64 + 1));
            let open = match sq.kind {
                WindowKind::Tumbling => VirtualTime::from_nanos(period * tick as u64),
                WindowKind::Sliding { length } => close.saturating_sub(length),
            };
            let hi = visible(table, close);
            let lo = visible(table, open).min(hi);
            fires.push(WindowFireRt { standing: s as u32, tick, at: close, lo, hi });
        }
        plans.push(StandingPlanRt {
            plan: sq.plan.clone(),
            session: sq.session as usize,
            table,
        });
    }
    // Fires are scheduled after appends at equal instants but must still
    // arrive time-sorted relative to each other for deterministic heap
    // insertion order across standing queries.
    fires.sort_by_key(|f| (f.at, f.standing, f.tick));

    Ok(FeedRt { appends, fires, plans, col_epochs })
}

impl Sim<'_, '_> {
    /// Current data epoch of `col` (0 in batch runs, where the epoch
    /// table is empty).
    pub(crate) fn col_epoch(&self, col: ColumnId) -> u64 {
        self.feed.col_epochs.get(col.index()).copied().unwrap_or(0)
    }

    /// An append batch commits: advance the touched columns' epochs,
    /// drop stale cache residency on every co-processor, and trace the
    /// commit (plus any segment seal it caused).
    pub(crate) fn on_append(&mut self, index: usize) {
        let rec = self.feed.appends[index];
        let cols: Vec<ColumnId> = self
            .db
            .all_column_ids()
            .filter(|&id| self.db.table_of(id) == rec.table)
            .collect();
        for &id in &cols {
            if let Some(e) = self.feed.col_epochs.get_mut(id.index()) {
                *e = rec.epoch;
            }
        }
        // Epoch-based invalidation: only entries of the appended table's
        // columns leave; every other resident column survives untouched.
        for device in self.config.topology.coprocessors() {
            for &id in &cols {
                let evicted = self
                    .caches
                    .device_mut(device)
                    .invalidate_column(id.0, rec.epoch);
                for (key, bytes) in evicted {
                    self.tracer.emit(TraceEvent::CacheEvict {
                        device,
                        key,
                        bytes,
                        at: self.now,
                    });
                }
            }
        }
        self.tracer.emit(TraceEvent::Append {
            table: rec.table as u32,
            rows: rec.rows,
            bytes: rec.bytes,
            epoch: rec.epoch as u32,
            at: self.now,
        });
        // An append crossing the seal threshold sealed an open segment
        // under this epoch; the segment list records which.
        for (i, seg) in self.db.tables()[rec.table].segments().iter().enumerate() {
            if seg.is_sealed() && seg.epoch() == rec.epoch {
                self.tracer.emit(TraceEvent::EpochSeal {
                    table: rec.table as u32,
                    segment: i as u32,
                    rows: seg.num_rows() as u64,
                    epoch: rec.epoch as u32,
                    at: self.now,
                });
            }
        }
    }

    /// A standing query's window closes: submit its plan for admission,
    /// tagged with the window's feed-table row range. The tick is the
    /// submission `seq`, so shed ticks are attributable in the trace.
    pub(crate) fn on_window_fire(&mut self, fire: usize) -> Result<(), EngineError> {
        let f = self.feed.fires[fire];
        let sp = &self.feed.plans[f.standing as usize];
        let sub = Submission {
            session: sp.session,
            seq: f.tick as usize,
            plan: sp.plan.clone(),
            submit: f.at,
            window: Some(QueryWindow { table: sp.table as u32, lo: f.lo, hi: f.hi }),
            standing: Some(f.standing),
        };
        self.submit_query(sub);
        self.process_admissions()
    }
}
