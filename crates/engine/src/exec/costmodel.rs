//! The unified cost-estimation surface.
//!
//! Placement strategies used to hard-wire their learned estimator
//! (`robustq_core::HypeEstimator`); this module redesigns that surface
//! into a [`CostModel`] trait so the estimator is *chosen per run*:
//!
//! * `StaticCostModel` (crate `robustq-core`) — the existing HyPE-style
//!   per-(class, device) linear regressions. The default; runs are
//!   bit-identical to the pre-trait executor.
//! * `AdaptiveCostModel` (crate `robustq-core`) — seeded, deterministic
//!   per-(class, device) EWMA throughput refinement in virtual time
//!   (Section 4's runtime learning loop).
//!
//! The executor threads a [`CostModelKind`] through
//! `ExecOptions`/`RunnerConfig` into every policy via
//! [`crate::exec::policy::PlacementPolicy::set_cost_model`]; each
//! completed operator produces a [`ModelUpdate`] predicted-vs-actual
//! sample, so estimation error is auditable per run.

use robustq_sim::{DeviceId, OpClass, VirtualTime};

/// Which cost-model implementation a run should use.
///
/// Threaded through `ExecOptions` → `PlacementPolicy::set_cost_model`;
/// strategies without a learned model ignore it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CostModelKind {
    /// The HyPE-style linear-regression estimator — current behaviour
    /// and the default (golden fixtures pin bit-identity).
    #[default]
    Static,
    /// Online EWMA throughput refinement from traced span durations,
    /// deterministic for a given seed.
    Adaptive {
        /// Seed for the deterministic prior perturbation (distinct seeds
        /// model distinct cold-start calibrations).
        seed: u64,
    },
}

/// One predicted-vs-actual sample from a completed operator.
///
/// `predicted` is the model's estimate *before* ingesting the sample, so
/// the sequence of updates is exactly the model's online error curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelUpdate {
    /// Operator class observed.
    pub class: OpClass,
    /// Device the operator ran on.
    pub device: DeviceId,
    /// The model's estimate before this sample was ingested.
    pub predicted: VirtualTime,
    /// The observed operator *span* (start → completion in virtual
    /// time): the duration placement actually paid, including processor
    /// sharing with concurrent operators — not the idealized
    /// uncontended kernel duration.
    pub actual: VirtualTime,
    /// True when the sample comes from an adaptive model and should be
    /// surfaced as a `ModelUpdate` trace event. Static models return
    /// `false`: the sample is still collected for run-level auditing,
    /// but nothing new enters the default trace stream (golden
    /// fixtures stay byte-identical).
    pub refined: bool,
}

impl ModelUpdate {
    /// Relative estimation error `|predicted − actual| / actual`
    /// (zero when the actual duration is zero).
    pub fn relative_error(&self) -> f64 {
        let actual = self.actual.as_secs_f64();
        if actual <= 0.0 {
            return 0.0;
        }
        (self.predicted.as_secs_f64() - actual).abs() / actual
    }
}

/// A learned operator cost model: estimates kernel durations and
/// transfer times, and refines itself from observed executions.
///
/// Implementations never read the simulator's ground-truth
/// `robustq_sim::CostModel` — they learn, exactly as HyPE does on real
/// hardware.
pub trait CostModel: std::fmt::Debug {
    /// Short display name (used in bench tables).
    fn name(&self) -> &'static str;

    /// The kind this model was built from.
    fn kind(&self) -> CostModelKind;

    /// Estimated kernel duration of one operator.
    fn estimate(
        &self,
        class: OpClass,
        device: DeviceId,
        bytes_in: u64,
        bytes_out: u64,
    ) -> VirtualTime;

    /// Estimated one-way host-link transfer time for `bytes`.
    fn estimate_transfer(&self, bytes: u64) -> VirtualTime;

    /// Ingest one completed operator and report the predicted-vs-actual
    /// sample (prediction taken before the update).
    ///
    /// Two durations arrive because the two models learn from different
    /// signals: `kernel` is the uncontended kernel duration (what the
    /// static regressions have always been fed — their state stays
    /// bit-identical), `span` is the traced operator span including
    /// processor sharing (what the adaptive EWMA refines from, and the
    /// `actual` every [`ModelUpdate`] audits against).
    fn observe(
        &mut self,
        class: OpClass,
        device: DeviceId,
        bytes_in: u64,
        bytes_out: u64,
        kernel: VirtualTime,
        span: VirtualTime,
    ) -> ModelUpdate;

    /// Total samples ingested across all (class, device) cells.
    fn total_observations(&self) -> u64;

    /// Clone into a box (object-safe `Clone`).
    fn clone_box(&self) -> Box<dyn CostModel>;
}

impl Clone for Box<dyn CostModel> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_kind_is_static() {
        assert_eq!(CostModelKind::default(), CostModelKind::Static);
    }

    #[test]
    fn relative_error_is_symmetric_in_sign() {
        let upd = |p: u64, a: u64| ModelUpdate {
            class: OpClass::Selection,
            device: DeviceId::Cpu,
            predicted: VirtualTime::from_nanos(p),
            actual: VirtualTime::from_nanos(a),
            refined: true,
        };
        assert!((upd(150, 100).relative_error() - 0.5).abs() < 1e-9);
        assert!((upd(50, 100).relative_error() - 0.5).abs() < 1e-9);
        assert_eq!(upd(10, 0).relative_error(), 0.0);
    }
}
