//! The placement-policy interface.
//!
//! Strategies (crate `robustq-core`) implement [`PlacementPolicy`]; the
//! executor consults it at three points:
//!
//! 1. **query admission** — [`PlacementPolicy::plan_query`] may fix a
//!    compile-time placement per operator (the classic approach of
//!    Section 2.5.2) or defer by returning `None` entries;
//! 2. **task readiness** — deferred tasks are placed by
//!    [`PlacementPolicy::place_ready`] with *exact* input cardinalities
//!    (run-time placement, Section 4);
//! 3. **operator completion** — [`PlacementPolicy::observe`] feeds the
//!    learned cost models, and periodically
//!    [`PlacementPolicy::update_data_placement`] lets a data-driven
//!    strategy re-pin the co-processor caches (Section 3.2, Algorithm 1).
//!
//! Policies return [`Placement`] records — the chosen device *plus* the
//! per-device cost estimates and the reason behind the pick — so the
//! tracer can emit a placement-decision event for every placed operator
//! without re-deriving the policy's internal state.
//!
//! Policies see the whole machine through [`PolicyCtx`]: the
//! [`Topology`] (1 CPU + K co-processors), one column cache and one
//! heap-free figure per co-processor, and per-device load signals.
//! Nothing in the interface assumes K = 1; strategies rank candidate
//! devices by iterating [`PolicyCtx::devices`].

use crate::exec::costmodel::{CostModelKind, ModelUpdate};
use robustq_sim::{
    CacheKey, CacheSet, DataCache, DeviceId, OpClass, PerDevice, Topology, VirtualTime,
};
use robustq_storage::{ColumnId, Database};
pub use robustq_trace::PlaceReason;

/// A placement decision: the chosen device annotated with the evidence
/// behind it (estimated per-device cost and a categorical reason).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// The device the operator should run on.
    pub device: DeviceId,
    /// Estimated runtime per device, in dense device order. Strategies
    /// without a cost model leave this empty (read back as `ZERO`).
    pub est: PerDevice<VirtualTime>,
    /// Why this device was picked.
    pub reason: PlaceReason,
}

impl Placement {
    /// A placement fixed by strategy structure, not a cost comparison.
    pub fn fixed(device: DeviceId) -> Self {
        Placement {
            device,
            est: PerDevice::empty(),
            reason: PlaceReason::Static,
        }
    }

    /// A placement backed by a cost-model comparison.
    pub fn modeled(device: DeviceId, est: PerDevice<VirtualTime>) -> Self {
        Placement { device, est, reason: PlaceReason::CostModel }
    }

    /// Override the reason, keeping device and estimates.
    pub fn because(mut self, reason: PlaceReason) -> Self {
        self.reason = reason;
        self
    }
}

/// Everything a policy may inspect when placing one task.
#[derive(Debug, Clone)]
pub struct TaskInfo {
    /// Query instance the task belongs to.
    pub query: usize,
    /// Task index within the executor.
    pub task: usize,
    /// Cost-model class of the operator.
    pub op_class: OpClass,
    /// Base columns read directly (non-empty only for scans).
    pub base_columns: Vec<ColumnId>,
    /// Input payload bytes: an estimate at compile time, exact at run time.
    pub bytes_in: u64,
    /// Output payload bytes: an estimate at compile time, exact only
    /// after execution (so still an estimate in `place_ready`).
    pub bytes_out_estimate: u64,
    /// Devices holding each child's output (empty at compile time).
    pub children_devices: Vec<DeviceId>,
    /// Output bytes per child: exact at run time, the child's estimate at
    /// compile time. Aligned with `children_tasks`.
    pub children_bytes: Vec<u64>,
    /// Global task ids of the children (build side first for joins). In
    /// `plan_query` these index into the same `tasks` slice after
    /// subtracting the first task's id, exposing the plan tree to
    /// compile-time strategies like Critical Path.
    pub children_tasks: Vec<usize>,
    /// True if this task was already aborted on the co-processor once.
    pub was_aborted: bool,
    /// For sharded scans: which piece of the partitioned operator this
    /// is. Shard-aware strategies spread shards across the fleet instead
    /// of argmin-ing a single winner (DESIGN.md §12).
    pub shard: Option<crate::exec::task::ShardSpec>,
    /// For tasks of a standing query: `(standing id, task slot)`. Every
    /// window tick re-submits the same plan, so the slot identifies "the
    /// same operator as last tick" — strategies may memoize its placement
    /// ([`PlaceReason::Recurring`]) instead of re-ranking each fire.
    pub recurring: Option<(u32, u32)>,
}

/// Read-only snapshot of execution state exposed to policies.
pub struct PolicyCtx<'a> {
    /// The database being queried.
    pub db: &'a Database,
    /// The machine's device and link tables.
    pub topology: &'a Topology,
    /// One column cache per co-processor (residency checks).
    pub caches: &'a CacheSet,
    /// Estimated outstanding work queued per device — HyPE's load
    /// tracking signal (Section 5.2).
    pub queued_work: PerDevice<VirtualTime>,
    /// Operators currently running per device.
    pub running: PerDevice<usize>,
    /// Free heap bytes per device (`u64::MAX` for the CPU's unbounded
    /// host memory).
    pub heap_free: PerDevice<u64>,
    /// Current virtual time.
    pub now: VirtualTime,
    /// Per-column data epoch (indexed by [`ColumnId::index`]): the epoch
    /// of the last append that touched the column, as tracked by the
    /// executor's feed replay. Empty for batch runs — every column then
    /// reads as epoch 0, which matches the pre-streaming cache keys.
    pub col_epochs: &'a [u64],
}

impl PolicyCtx<'_> {
    /// All device ids, CPU first.
    pub fn devices(&self) -> impl Iterator<Item = DeviceId> + '_ {
        self.topology.devices()
    }

    /// The co-processor ids, in dense order.
    pub fn coprocessors(&self) -> impl Iterator<Item = DeviceId> + '_ {
        self.topology.coprocessors()
    }

    /// The column cache of co-processor `device`.
    pub fn cache(&self, device: DeviceId) -> &DataCache {
        self.caches.device(device)
    }

    /// Current data epoch of column `col` (0 in batch runs).
    pub fn epoch_of(&self, col: ColumnId) -> u64 {
        self.col_epochs.get(col.index()).copied().unwrap_or(0)
    }

    /// The epoch-tagged whole-column cache key for `col`.
    pub fn column_key(&self, col: ColumnId) -> CacheKey {
        CacheKey::column_at(col.0, self.epoch_of(col))
    }

    /// The epoch-tagged partition cache key for shard `index`/`of` of `col`.
    pub fn partition_key(&self, col: ColumnId, index: u32, of: u32) -> CacheKey {
        CacheKey::partition_at(col.0, index, of, self.epoch_of(col))
    }

    /// True if every base column in `cols` is resident in `device`'s
    /// cache *at its current epoch* (vacuously true for an empty list).
    /// Stale-epoch entries do not count — an append demotes residency.
    pub fn all_cached_on(&self, device: DeviceId, cols: &[ColumnId]) -> bool {
        cols.iter().all(|c| self.caches.device(device).contains(self.column_key(*c)))
    }

    /// The first co-processor whose cache holds *all* of `cols`, or
    /// `None` when no device does (or `cols` is empty — an empty input
    /// set carries no residency signal).
    pub fn cached_device(&self, cols: &[ColumnId]) -> Option<DeviceId> {
        if cols.is_empty() {
            return None;
        }
        self.coprocessors().find(|&d| self.all_cached_on(d, cols))
    }

    /// The co-processor with the least queued work (ties: lowest
    /// index), or `None` on a CPU-only topology.
    pub fn least_loaded_coprocessor(&self) -> Option<DeviceId> {
        self.coprocessors()
            .min_by_key(|&d| (self.queued_work.get_padded(d), d))
    }

    /// Like [`PolicyCtx::all_cached_on`] for one shard of a partitioned
    /// scan: a column counts as resident when either its matching
    /// partition entry or the whole column is cached on `device`.
    pub fn shard_cached_on(
        &self,
        device: DeviceId,
        cols: &[ColumnId],
        shard: crate::exec::task::ShardSpec,
    ) -> bool {
        let cache = self.caches.device(device);
        cols.iter().all(|c| {
            cache.contains(self.partition_key(*c, shard.index, shard.of))
                || cache.contains(self.column_key(*c))
        })
    }

    /// The co-processor holding all of `cols` for `shard`, or `None`.
    ///
    /// A device caching the matching *partition* entries is the shard's
    /// home and wins outright. When only whole-column replicas exist
    /// (the placement manager replicated a small table into every
    /// cache), the candidates are interchangeable — sibling shards deal
    /// themselves round-robin by shard index so the fan-out actually
    /// spreads instead of every shard picking the first replica.
    pub fn shard_cached_device(
        &self,
        cols: &[ColumnId],
        shard: crate::exec::task::ShardSpec,
    ) -> Option<DeviceId> {
        if cols.is_empty() {
            return None;
        }
        let partition_home = self.coprocessors().find(|&d| {
            let cache = self.caches.device(d);
            cols.iter()
                .all(|c| cache.contains(self.partition_key(*c, shard.index, shard.of)))
        });
        if partition_home.is_some() {
            return partition_home;
        }
        let replicas: Vec<DeviceId> = self
            .coprocessors()
            .filter(|&d| self.shard_cached_on(d, cols, shard))
            .collect();
        if replicas.is_empty() {
            None
        } else {
            Some(replicas[shard.index as usize % replicas.len()])
        }
    }
}

/// A placement strategy.
///
/// The default implementations describe a plain run-time CPU-only policy;
/// strategies override what they need.
pub trait PlacementPolicy {
    /// Human-readable strategy name (used in reports).
    fn name(&self) -> &'static str;

    /// Compile-time placement for a whole query. One entry per task (same
    /// order as `tasks`): `Some(placement)` fixes the placement, `None`
    /// defers to [`PlacementPolicy::place_ready`].
    fn plan_query(&mut self, tasks: &[TaskInfo], ctx: &PolicyCtx) -> Vec<Option<Placement>> {
        let _ = ctx;
        vec![None; tasks.len()]
    }

    /// Run-time placement of one ready task.
    fn place_ready(&mut self, task: &TaskInfo, ctx: &PolicyCtx) -> Placement {
        let _ = (task, ctx);
        Placement::fixed(DeviceId::Cpu)
    }

    /// Worker-slot bound for `device`; `spec_slots` is the device's
    /// configured thread-pool size. Non-chopping strategies return
    /// `usize::MAX` (operators are pushed, not pulled — Section 5.1).
    fn worker_slots(&self, device: DeviceId, spec_slots: usize) -> usize {
        let _ = (device, spec_slots);
        usize::MAX
    }

    /// Whether a co-processor scan inserts missing columns into the cache
    /// (operator-driven data placement). Data-driven strategies return
    /// `false`: only the placement manager writes the caches.
    fn caches_on_miss(&self) -> bool {
        true
    }

    /// Select the cost model backing this policy's estimates
    /// ([`crate::exec::costmodel::CostModelKind`], threaded from
    /// `ExecOptions`). Policies without a learned model ignore it; the
    /// executor calls this once per run, before any query is admitted.
    fn set_cost_model(&mut self, kind: CostModelKind) {
        let _ = kind;
    }

    /// Observe one completed operator (kernel time only, no transfers) —
    /// the learning signal for HyPE-style cost models.
    ///
    /// Policies backed by a [`crate::exec::costmodel::CostModel`] return
    /// the predicted-vs-actual [`ModelUpdate`] so the executor can audit
    /// estimation error per run; model-free policies return `None`.
    fn observe(
        &mut self,
        op_class: OpClass,
        device: DeviceId,
        bytes_in: u64,
        bytes_out: u64,
        kernel: VirtualTime,
        span: VirtualTime,
    ) -> Option<ModelUpdate> {
        let _ = (op_class, device, bytes_in, bytes_out, kernel, span);
        None
    }

    /// Periodic data-placement update (the background job of Section 3.2).
    /// May re-pin any co-processor cache; returns `(device, key)` pairs
    /// newly cached so the executor can charge each link's transfer time.
    /// `epochs` is the per-column data epoch table (empty in batch runs):
    /// data-driven strategies pin epoch-tagged keys so a fresh append
    /// re-stages only the touched columns.
    fn update_data_placement(
        &mut self,
        db: &Database,
        caches: &mut CacheSet,
        epochs: &[u64],
    ) -> Vec<(DeviceId, CacheKey)> {
        let _ = (db, caches, epochs);
        Vec::new()
    }
}

/// The trivial CPU-only baseline (also useful in tests).
#[derive(Debug, Default, Clone)]
pub struct CpuOnlyPolicy;

impl PlacementPolicy for CpuOnlyPolicy {
    fn name(&self) -> &'static str {
        "cpu-only"
    }

    fn plan_query(&mut self, tasks: &[TaskInfo], _ctx: &PolicyCtx) -> Vec<Option<Placement>> {
        vec![Some(Placement::fixed(DeviceId::Cpu)); tasks.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robustq_sim::{CachePolicy, DeviceSpec, LinkParams};

    fn topology() -> Topology {
        Topology::cpu_gpu(
            DeviceSpec::cpu(4),
            DeviceSpec::coprocessor(4, 1_000, 500),
            LinkParams::default(),
        )
    }

    fn ctx<'a>(db: &'a Database, topology: &'a Topology, caches: &'a CacheSet) -> PolicyCtx<'a> {
        PolicyCtx {
            db,
            topology,
            caches,
            queued_work: PerDevice::splat(VirtualTime::ZERO, topology.device_count()),
            running: PerDevice::splat(0, topology.device_count()),
            heap_free: PerDevice::splat(0, topology.device_count()),
            now: VirtualTime::ZERO,
            col_epochs: &[],
        }
    }

    fn info() -> TaskInfo {
        TaskInfo {
            query: 0,
            task: 0,
            op_class: OpClass::Selection,
            base_columns: vec![],
            bytes_in: 0,
            bytes_out_estimate: 0,
            children_devices: vec![],
            children_bytes: vec![],
            children_tasks: vec![],
            was_aborted: false,
            shard: None,
            recurring: None,
        }
    }

    #[test]
    fn default_trait_methods() {
        struct Noop;
        impl PlacementPolicy for Noop {
            fn name(&self) -> &'static str {
                "noop"
            }
        }
        let mut p = Noop;
        let db = Database::new();
        let t = topology();
        let caches = CacheSet::for_topology(&t, CachePolicy::Lru);
        let ctx = ctx(&db, &t, &caches);
        let info = info();
        assert_eq!(p.plan_query(std::slice::from_ref(&info), &ctx), vec![None]);
        let placed = p.place_ready(&info, &ctx);
        assert_eq!(placed.device, DeviceId::Cpu);
        assert_eq!(placed.reason, PlaceReason::Static);
        assert_eq!(p.worker_slots(DeviceId::Gpu, 4), usize::MAX);
        assert!(p.caches_on_miss());
        p.set_cost_model(CostModelKind::Adaptive { seed: 7 });
        assert!(p
            .observe(
                OpClass::Selection,
                DeviceId::Cpu,
                8,
                4,
                VirtualTime::from_micros(1),
                VirtualTime::from_micros(1),
            )
            .is_none());
        let mut caches2 = CacheSet::for_topology(&t, CachePolicy::Lru);
        assert!(p.update_data_placement(&db, &mut caches2, &[]).is_empty());
    }

    #[test]
    fn placement_constructors() {
        let est = PerDevice::new(VirtualTime::from_micros(10), VirtualTime::from_micros(2));
        let p = Placement::modeled(DeviceId::Gpu, est);
        assert_eq!(p.device, DeviceId::Gpu);
        assert_eq!(p.est[DeviceId::Cpu], VirtualTime::from_micros(10));
        assert_eq!(p.reason, PlaceReason::CostModel);
        let q = p.clone().because(PlaceReason::HeapPressure);
        assert_eq!(q.reason, PlaceReason::HeapPressure);
        assert_eq!(q.est, p.est);
        // The empty estimate table equals an all-zero one (padded
        // equality), so "no cost model" placements compare stable.
        assert_eq!(
            Placement::fixed(DeviceId::Cpu).est,
            PerDevice::splat(VirtualTime::ZERO, 2)
        );
    }

    #[test]
    fn residency_helpers_are_per_device() {
        let db = Database::new();
        let t = topology().with_coprocessor(
            DeviceSpec::coprocessor(4, 1_000, 500),
            LinkParams::default(),
        );
        let mut caches = CacheSet::for_topology(&t, CachePolicy::Lru);
        let g2 = DeviceId::coprocessor(2);
        caches.device_mut(g2).insert(CacheKey(1), 10);
        let ctx = ctx(&db, &t, &caches);
        assert!(!ctx.all_cached_on(DeviceId::Gpu, &[ColumnId(1)]));
        assert!(ctx.all_cached_on(g2, &[ColumnId(1)]));
        assert_eq!(ctx.cached_device(&[ColumnId(1)]), Some(g2));
        assert_eq!(ctx.cached_device(&[ColumnId(1), ColumnId(2)]), None);
        assert_eq!(ctx.cached_device(&[]), None, "empty set has no residency signal");
        assert!(ctx.all_cached_on(DeviceId::Gpu, &[]));
    }

    #[test]
    fn least_loaded_coprocessor_breaks_ties_low() {
        let db = Database::new();
        let t = topology().with_coprocessor(
            DeviceSpec::coprocessor(4, 1_000, 500),
            LinkParams::default(),
        );
        let caches = CacheSet::for_topology(&t, CachePolicy::Lru);
        let mut c = ctx(&db, &t, &caches);
        assert_eq!(c.least_loaded_coprocessor(), Some(DeviceId::Gpu));
        c.queued_work[DeviceId::Gpu] = VirtualTime::from_micros(10);
        assert_eq!(c.least_loaded_coprocessor(), Some(DeviceId::coprocessor(2)));
    }

    #[test]
    fn cpu_only_pins_everything_to_cpu() {
        let mut p = CpuOnlyPolicy;
        let db = Database::new();
        let t = topology();
        let caches = CacheSet::for_topology(&t, CachePolicy::Lru);
        let ctx = ctx(&db, &t, &caches);
        let info = info();
        assert_eq!(
            p.plan_query(&[info.clone(), info], &ctx),
            vec![Some(Placement::fixed(DeviceId::Cpu)); 2]
        );
        assert_eq!(p.name(), "cpu-only");
    }
}
