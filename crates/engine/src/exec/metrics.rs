//! Run metrics.
//!
//! Everything the paper's figures report: workload execution time
//! (makespan), per-query latencies, CPU→GPU and GPU→CPU transfer time and
//! bytes, aborted-operator counts and the *wasted time* metric of
//! Figure 20 (total time from operator begin to abort).

use robustq_sim::{DeviceId, VirtualTime};

/// Outcome of one executed query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Session that issued the query.
    pub session: usize,
    /// Position within the session's queue.
    pub seq: usize,
    /// Time from admission to result on the host.
    pub latency: VirtualTime,
    /// Result row count.
    pub rows: usize,
    /// Order-insensitive result checksum.
    pub checksum: u64,
    /// Full result, when `ExecOptions::capture_results` is set.
    pub result: Option<crate::batch::Chunk>,
}

/// Aggregated metrics of one workload run.
#[derive(Debug, Clone, Default)]
pub struct RunMetrics {
    /// Virtual time from start to the last query's completion.
    pub makespan: VirtualTime,
    /// Total CPU→GPU transfer service time / bytes.
    pub h2d_time: VirtualTime,
    /// Total CPU→GPU bytes moved.
    pub h2d_bytes: u64,
    /// Total GPU→CPU transfer service time / bytes.
    pub d2h_time: VirtualTime,
    /// Total GPU→CPU bytes moved.
    pub d2h_bytes: u64,
    /// Number of co-processor operator aborts.
    pub aborts: u64,
    /// Total time from operator begin to abort (Figure 20's metric).
    pub wasted_time: VirtualTime,
    /// Busy time per device (indexed by [`DeviceId::index`]).
    pub device_busy: [VirtualTime; 2],
    /// Operators completed per device.
    pub ops_completed: [u64; 2],
    /// Co-processor heap high-water mark in bytes.
    pub gpu_heap_peak: u64,
    /// Co-processor cache hits / misses.
    pub cache_hits: u64,
    /// Co-processor cache misses.
    pub cache_misses: u64,
    /// Number of queries executed.
    pub queries: usize,
}

impl RunMetrics {
    /// Record one completed operator.
    pub(crate) fn record_op(&mut self, device: DeviceId, busy: VirtualTime) {
        self.device_busy[device.index()] += busy;
        self.ops_completed[device.index()] += 1;
    }

    /// Total transfer service time in both directions.
    pub fn total_transfer_time(&self) -> VirtualTime {
        self.h2d_time + self.d2h_time
    }

    /// Mean query latency over `outcomes`.
    pub fn mean_latency(outcomes: &[QueryOutcome]) -> VirtualTime {
        if outcomes.is_empty() {
            return VirtualTime::ZERO;
        }
        let total: u64 = outcomes.iter().map(|o| o.latency.as_nanos()).sum();
        VirtualTime::from_nanos(total / outcomes.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_op_accumulates() {
        let mut m = RunMetrics::default();
        m.record_op(DeviceId::Cpu, VirtualTime::from_millis(2));
        m.record_op(DeviceId::Cpu, VirtualTime::from_millis(3));
        m.record_op(DeviceId::Gpu, VirtualTime::from_millis(1));
        assert_eq!(m.device_busy[0], VirtualTime::from_millis(5));
        assert_eq!(m.ops_completed[0], 2);
        assert_eq!(m.ops_completed[1], 1);
    }

    #[test]
    fn transfer_total() {
        let m = RunMetrics {
            h2d_time: VirtualTime::from_millis(3),
            d2h_time: VirtualTime::from_millis(4),
            ..Default::default()
        };
        assert_eq!(m.total_transfer_time(), VirtualTime::from_millis(7));
    }

    #[test]
    fn mean_latency_of_outcomes() {
        let out = |l: u64| QueryOutcome {
            session: 0,
            seq: 0,
            latency: VirtualTime::from_millis(l),
            rows: 0,
            checksum: 0,
            result: None,
        };
        assert_eq!(
            RunMetrics::mean_latency(&[out(10), out(20)]),
            VirtualTime::from_millis(15)
        );
        assert_eq!(RunMetrics::mean_latency(&[]), VirtualTime::ZERO);
    }
}
