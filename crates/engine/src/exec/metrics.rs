//! Run metrics.
//!
//! Everything the paper's figures report: workload execution time
//! (makespan), per-query latencies, CPU→GPU and GPU→CPU transfer time and
//! bytes, aborted-operator counts and the *wasted time* metric of
//! Figure 20 (total time from operator begin to abort).
//!
//! When tracing is enabled the same numbers are independently derivable
//! from the event stream via [`RunMetrics::from_events`]; debug builds
//! cross-check the two at the end of every run, so the legacy counters
//! and the trace can never drift apart silently.

use robustq_sim::{DeviceId, Direction, FaultStats, LinkStats, PerDevice, VirtualTime};
use robustq_trace::{FaultKind, OpOutcome, TraceEvent};

/// Fault-recovery counters, kept per query and aggregated per run.
///
/// `injected` counts fault-layer decisions that fired (all kinds);
/// `retries` counts transfer retry attempts scheduled by the bounded
/// backoff policy; `fallbacks` counts operators restarted on the CPU
/// after an abort (organic or injected); `injected_wasted` is virtual
/// time lost *because of injections*: abort waste of injected aborts,
/// stall-window waits, failed transfer attempts plus their backoff, and
/// the excess service time of latency spikes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Fault-layer decisions that fired.
    pub injected: u64,
    /// Transfer retries scheduled (each preceded by a transient fault).
    pub retries: u64,
    /// Operators restarted on the CPU after an abort.
    pub fallbacks: u64,
    /// Virtual time lost to injected faults.
    pub injected_wasted: VirtualTime,
}

impl FaultCounters {
    /// Accumulate `other` into `self`.
    pub fn absorb(&mut self, other: &FaultCounters) {
        self.injected += other.injected;
        self.retries += other.retries;
        self.fallbacks += other.fallbacks;
        self.injected_wasted += other.injected_wasted;
    }
}

/// Chunked out-of-core staging counters (DESIGN.md §15).
///
/// Carried on `RunOutcome` beside [`RunMetrics`] — deliberately *not*
/// inside it, so the Debug fingerprint of default (non-staging) runs is
/// byte-identical to earlier releases.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StagingStats {
    /// Operators whose footprint exceeded the device heap and executed
    /// on-device via chunked staging.
    pub staged_ops: u64,
    /// Chunks transferred and executed across all staged operators.
    pub staged_chunks: u64,
    /// Oversize operators that still fell back to the CPU because even
    /// a single chunk could not fit the device heap.
    pub oversize_fallbacks: u64,
}

/// Outcome of one executed query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Session that issued the query.
    pub session: usize,
    /// Position within the session's queue.
    pub seq: usize,
    /// Time from submission to result on the host (admission waiting
    /// included).
    pub latency: VirtualTime,
    /// The admission-waiting share of `latency` (zero when the query was
    /// admitted the instant it was submitted).
    pub admit_wait: VirtualTime,
    /// Result row count.
    pub rows: usize,
    /// Order-insensitive result checksum.
    pub checksum: u64,
    /// Fault-recovery counters attributed to this query.
    pub faults: FaultCounters,
    /// Full result, when `ExecOptions::capture_results` is set.
    pub result: Option<crate::batch::Chunk>,
}

/// Aggregated metrics of one workload run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunMetrics {
    /// Virtual time from start to the last query's completion.
    pub makespan: VirtualTime,
    /// Total CPU→GPU transfer service time / bytes.
    pub h2d_time: VirtualTime,
    /// Total CPU→GPU bytes moved.
    pub h2d_bytes: u64,
    /// Total GPU→CPU transfer service time / bytes.
    pub d2h_time: VirtualTime,
    /// Total GPU→CPU bytes moved.
    pub d2h_bytes: u64,
    /// Number of co-processor operator aborts.
    pub aborts: u64,
    /// Total time from operator begin to abort (Figure 20's metric).
    pub wasted_time: VirtualTime,
    /// Busy time per device.
    pub device_busy: PerDevice<VirtualTime>,
    /// Operators completed per device.
    pub ops_completed: PerDevice<u64>,
    /// Co-processor heap high-water mark in bytes.
    pub gpu_heap_peak: u64,
    /// Co-processor cache hits during this run.
    pub cache_hits: u64,
    /// Co-processor cache misses during this run.
    pub cache_misses: u64,
    /// Number of queries executed.
    pub queries: usize,
    /// Queries shed by admission control instead of executed (open-loop
    /// overload protection, DESIGN.md §13). Always zero in closed-loop
    /// runs with default options.
    pub shed: u64,
    /// Aggregated fault-recovery counters (sum of per-query counters
    /// plus injections not attributable to one query, e.g. on
    /// placement-update transfers).
    pub faults: FaultCounters,
    /// Injection counters straight from the fault plan; cross-checks
    /// `faults.injected` (chaos invariant: the two `injected` totals
    /// are equal).
    pub fault_stats: FaultStats,
    /// Host→device link statistics as accounted by the interconnect
    /// itself (chaos invariant: `link_h2d.bytes == h2d_bytes`).
    pub link_h2d: LinkStats,
    /// Device→host link statistics from the interconnect.
    pub link_d2h: LinkStats,
    /// Bytes still allocated on the co-processor heap after the run
    /// drained (chaos invariant: zero — no leaked tags).
    pub gpu_heap_leaked: u64,
}

impl RunMetrics {
    /// Record one completed operator. The per-device tables grow on
    /// demand so the same path serves the executor (topology-sized
    /// tables) and event-stream re-derivation (tables learned from the
    /// data); padded equality makes the two comparable.
    pub(crate) fn record_op(&mut self, device: DeviceId, busy: VirtualTime) {
        *self.device_busy.get_mut_or_grow(device) += busy;
        *self.ops_completed.get_mut_or_grow(device) += 1;
    }

    /// Total transfer service time in both directions.
    pub fn total_transfer_time(&self) -> VirtualTime {
        self.h2d_time + self.d2h_time
    }

    /// Total device time: busy time across devices plus abort waste.
    /// By construction `wasted_time <= total_device_time()` — the
    /// metrics-consistency invariant the chaos harness checks.
    pub fn total_device_time(&self) -> VirtualTime {
        self.device_busy
            .values()
            .fold(self.wasted_time, |acc, &t| acc + t)
    }

    /// Mean query latency over `outcomes`.
    pub fn mean_latency(outcomes: &[QueryOutcome]) -> VirtualTime {
        if outcomes.is_empty() {
            return VirtualTime::ZERO;
        }
        let total: u64 = outcomes.iter().map(|o| o.latency.as_nanos()).sum();
        VirtualTime::from_nanos(total / outcomes.len() as u64)
    }

    /// Re-derive run metrics from one run's trace-event stream.
    ///
    /// With tracing enabled the executor emits an event at every
    /// accounting site, so this reconstruction matches the incrementally
    /// maintained counters *exactly* — the invariant behind the
    /// debug-build cross-check in `Executor::run` and the chaos
    /// differential suite.
    pub fn from_events(events: &[TraceEvent]) -> RunMetrics {
        let mut m = RunMetrics::default();
        // Last reported heap occupancy per co-processor: the leak figure
        // sums them, the peak is the largest single-device occupancy seen
        // (each device has its own heap).
        let mut last_heap_used: PerDevice<u64> = PerDevice::empty();
        for ev in events {
            match *ev {
                TraceEvent::QueryDone { end, .. } => {
                    m.queries += 1;
                    m.makespan = m.makespan.max(end);
                }
                TraceEvent::QueryShed { .. } => m.shed += 1,
                TraceEvent::OpSpan { device, start, end, outcome, .. } => match outcome {
                    OpOutcome::Completed => m.record_op(device, end.saturating_sub(start)),
                    OpOutcome::Aborted { injected } => {
                        let wasted = end.saturating_sub(start);
                        m.aborts += 1;
                        m.wasted_time += wasted;
                        m.faults.fallbacks += 1;
                        if injected {
                            m.faults.injected_wasted += wasted;
                        }
                    }
                },
                TraceEvent::Transfer { dir, bytes, service, waste, .. } => {
                    let (time, total, link) = match dir {
                        Direction::HostToDevice => {
                            (&mut m.h2d_time, &mut m.h2d_bytes, &mut m.link_h2d)
                        }
                        Direction::DeviceToHost => {
                            (&mut m.d2h_time, &mut m.d2h_bytes, &mut m.link_d2h)
                        }
                    };
                    *time += service;
                    *total += bytes;
                    link.bytes += bytes;
                    link.transfers += 1;
                    link.busy_time += service;
                    m.faults.injected_wasted += waste;
                }
                TraceEvent::CacheProbe { hit, .. } => {
                    if hit {
                        m.cache_hits += 1;
                    } else {
                        m.cache_misses += 1;
                    }
                }
                TraceEvent::HeapAlloc { device, ok, used, .. } => {
                    if ok {
                        m.gpu_heap_peak = m.gpu_heap_peak.max(used);
                        *last_heap_used.get_mut_or_grow(device) = used;
                    }
                }
                TraceEvent::HeapFree { device, used, .. } => {
                    *last_heap_used.get_mut_or_grow(device) = used;
                }
                TraceEvent::Fault { kind, .. } => {
                    m.faults.injected += 1;
                    m.fault_stats.injected += 1;
                    match kind {
                        FaultKind::AllocFail { .. } => m.fault_stats.alloc_failures += 1,
                        FaultKind::TransferTransient => m.fault_stats.transfer_transient += 1,
                        FaultKind::TransferPermanent => m.fault_stats.transfer_permanent += 1,
                        FaultKind::TransferSpike => m.fault_stats.transfer_spikes += 1,
                        FaultKind::KernelAbort => m.fault_stats.kernel_aborts += 1,
                        FaultKind::Stall { wait } => {
                            m.fault_stats.stall_time += wait;
                            m.faults.injected_wasted += wait;
                        }
                    }
                }
                TraceEvent::Retry { .. } => m.faults.retries += 1,
                TraceEvent::QuerySubmit { .. }
                | TraceEvent::CacheInsert { .. }
                | TraceEvent::CacheEvict { .. }
                | TraceEvent::Placement { .. }
                | TraceEvent::ShardFanout { .. }
                | TraceEvent::ShardMerge { .. }
                // Model refinements, staging markers and feed activity
                // are side data (`RunOutcome::{model_samples, staging}`,
                // the feed report), not part of the legacy counter set
                // this reconstruction mirrors.
                | TraceEvent::ModelUpdate { .. }
                | TraceEvent::OpStaged { .. }
                | TraceEvent::Append { .. }
                | TraceEvent::EpochSeal { .. }
                | TraceEvent::WindowFire { .. } => {}
            }
        }
        m.gpu_heap_leaked = last_heap_used.values().sum();
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_op_accumulates() {
        let mut m = RunMetrics::default();
        m.record_op(DeviceId::Cpu, VirtualTime::from_millis(2));
        m.record_op(DeviceId::Cpu, VirtualTime::from_millis(3));
        m.record_op(DeviceId::Gpu, VirtualTime::from_millis(1));
        assert_eq!(m.device_busy[DeviceId::Cpu], VirtualTime::from_millis(5));
        assert_eq!(m.ops_completed[DeviceId::Cpu], 2);
        assert_eq!(m.ops_completed[DeviceId::Gpu], 1);
    }

    #[test]
    fn transfer_total() {
        let m = RunMetrics {
            h2d_time: VirtualTime::from_millis(3),
            d2h_time: VirtualTime::from_millis(4),
            ..Default::default()
        };
        assert_eq!(m.total_transfer_time(), VirtualTime::from_millis(7));
    }

    #[test]
    fn mean_latency_of_outcomes() {
        let out = |l: u64| QueryOutcome {
            session: 0,
            seq: 0,
            latency: VirtualTime::from_millis(l),
            admit_wait: VirtualTime::ZERO,
            rows: 0,
            checksum: 0,
            faults: FaultCounters::default(),
            result: None,
        };
        assert_eq!(
            RunMetrics::mean_latency(&[out(10), out(20)]),
            VirtualTime::from_millis(15)
        );
        assert_eq!(RunMetrics::mean_latency(&[]), VirtualTime::ZERO);
    }

    #[test]
    fn from_events_rebuilds_counters() {
        use robustq_sim::OpClass;
        let t = VirtualTime::from_micros;
        let events = vec![
            TraceEvent::OpSpan {
                query: 0,
                task: 0,
                op: OpClass::Selection,
                device: DeviceId::Gpu,
                queued_at: t(0),
                start: t(0),
                end: t(5),
                bytes_in: 64,
                bytes_out: 32,
                rows_out: 8,
                outcome: OpOutcome::Completed,
            },
            TraceEvent::OpSpan {
                query: 0,
                task: 1,
                op: OpClass::HashJoin,
                device: DeviceId::Gpu,
                queued_at: t(0),
                start: t(2),
                end: t(4),
                bytes_in: 64,
                bytes_out: 0,
                rows_out: 0,
                outcome: OpOutcome::Aborted { injected: true },
            },
            TraceEvent::Transfer {
                device: DeviceId::Gpu,
                dir: Direction::HostToDevice,
                kind: robustq_trace::TransferKind::Input,
                query: 0,
                bytes: 64,
                start: t(0),
                end: t(1),
                service: t(1),
                faulted: false,
                waste: VirtualTime::ZERO,
            },
            TraceEvent::HeapAlloc {
                device: DeviceId::Gpu,
                tag: 0,
                bytes: 64,
                used: 64,
                ok: true,
                at: t(0),
            },
            TraceEvent::HeapFree { device: DeviceId::Gpu, tag: 0, bytes: 64, used: 0, at: t(5) },
            TraceEvent::Fault { kind: FaultKind::KernelAbort, query: 0, at: t(4) },
            TraceEvent::QueryDone { query: 0, session: 0, seq: 0, submit: t(0), admit: t(0), end: t(6), rows: 8 },
            TraceEvent::QueryShed {
                session: 1,
                seq: 0,
                submit: t(1),
                reason: robustq_trace::ShedReason::Timeout,
                at: t(6),
            },
        ];
        let m = RunMetrics::from_events(&events);
        assert_eq!(m.queries, 1);
        assert_eq!(m.shed, 1);
        assert_eq!(m.makespan, t(6));
        assert_eq!(m.ops_completed[DeviceId::Gpu], 1);
        assert_eq!(m.device_busy[DeviceId::Gpu], t(5));
        assert_eq!(m.aborts, 1);
        assert_eq!(m.wasted_time, t(2));
        assert_eq!(m.faults.fallbacks, 1);
        assert_eq!(m.faults.injected, 1);
        assert_eq!(m.faults.injected_wasted, t(2));
        assert_eq!(m.h2d_bytes, 64);
        assert_eq!(m.h2d_time, t(1));
        assert_eq!(m.link_h2d.transfers, 1);
        assert_eq!(m.gpu_heap_peak, 64);
        assert_eq!(m.gpu_heap_leaked, 0);
        assert_eq!(m.fault_stats.kernel_aborts, 1);
        assert_eq!(m.fault_stats.injected, 1);
    }

    #[test]
    fn from_events_tracks_heaps_per_device() {
        let t = VirtualTime::from_micros;
        let g2 = DeviceId::coprocessor(2);
        let events = vec![
            TraceEvent::HeapAlloc {
                device: DeviceId::Gpu,
                tag: 0,
                bytes: 100,
                used: 100,
                ok: true,
                at: t(0),
            },
            TraceEvent::HeapAlloc { device: g2, tag: 2, bytes: 70, used: 70, ok: true, at: t(1) },
            TraceEvent::HeapFree { device: DeviceId::Gpu, tag: 0, bytes: 60, used: 40, at: t(2) },
        ];
        let m = RunMetrics::from_events(&events);
        // Peak is the largest single-device occupancy, not the fleet sum.
        assert_eq!(m.gpu_heap_peak, 100);
        // Leaked bytes sum across every device's heap: 40 + 70.
        assert_eq!(m.gpu_heap_leaked, 110);
    }
}
