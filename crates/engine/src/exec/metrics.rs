//! Run metrics.
//!
//! Everything the paper's figures report: workload execution time
//! (makespan), per-query latencies, CPU→GPU and GPU→CPU transfer time and
//! bytes, aborted-operator counts and the *wasted time* metric of
//! Figure 20 (total time from operator begin to abort).

use robustq_sim::{DeviceId, FaultStats, LinkStats, VirtualTime};

/// Fault-recovery counters, kept per query and aggregated per run.
///
/// `injected` counts fault-layer decisions that fired (all kinds);
/// `retries` counts transfer retry attempts scheduled by the bounded
/// backoff policy; `fallbacks` counts operators restarted on the CPU
/// after an abort (organic or injected); `injected_wasted` is virtual
/// time lost *because of injections*: abort waste of injected aborts,
/// stall-window waits, failed transfer attempts plus their backoff, and
/// the excess service time of latency spikes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Fault-layer decisions that fired.
    pub injected: u64,
    /// Transfer retries scheduled (each preceded by a transient fault).
    pub retries: u64,
    /// Operators restarted on the CPU after an abort.
    pub fallbacks: u64,
    /// Virtual time lost to injected faults.
    pub injected_wasted: VirtualTime,
}

impl FaultCounters {
    /// Accumulate `other` into `self`.
    pub fn absorb(&mut self, other: &FaultCounters) {
        self.injected += other.injected;
        self.retries += other.retries;
        self.fallbacks += other.fallbacks;
        self.injected_wasted += other.injected_wasted;
    }
}

/// Outcome of one executed query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Session that issued the query.
    pub session: usize,
    /// Position within the session's queue.
    pub seq: usize,
    /// Time from admission to result on the host.
    pub latency: VirtualTime,
    /// Result row count.
    pub rows: usize,
    /// Order-insensitive result checksum.
    pub checksum: u64,
    /// Fault-recovery counters attributed to this query.
    pub faults: FaultCounters,
    /// Full result, when `ExecOptions::capture_results` is set.
    pub result: Option<crate::batch::Chunk>,
}

/// Aggregated metrics of one workload run.
#[derive(Debug, Clone, Default)]
pub struct RunMetrics {
    /// Virtual time from start to the last query's completion.
    pub makespan: VirtualTime,
    /// Total CPU→GPU transfer service time / bytes.
    pub h2d_time: VirtualTime,
    /// Total CPU→GPU bytes moved.
    pub h2d_bytes: u64,
    /// Total GPU→CPU transfer service time / bytes.
    pub d2h_time: VirtualTime,
    /// Total GPU→CPU bytes moved.
    pub d2h_bytes: u64,
    /// Number of co-processor operator aborts.
    pub aborts: u64,
    /// Total time from operator begin to abort (Figure 20's metric).
    pub wasted_time: VirtualTime,
    /// Busy time per device (indexed by [`DeviceId::index`]).
    pub device_busy: [VirtualTime; 2],
    /// Operators completed per device.
    pub ops_completed: [u64; 2],
    /// Co-processor heap high-water mark in bytes.
    pub gpu_heap_peak: u64,
    /// Co-processor cache hits / misses.
    pub cache_hits: u64,
    /// Co-processor cache misses.
    pub cache_misses: u64,
    /// Number of queries executed.
    pub queries: usize,
    /// Aggregated fault-recovery counters (sum of per-query counters
    /// plus injections not attributable to one query, e.g. on
    /// placement-update transfers).
    pub faults: FaultCounters,
    /// Injection counters straight from the fault plan; cross-checks
    /// `faults.injected` (chaos invariant: the two `injected` totals
    /// are equal).
    pub fault_stats: FaultStats,
    /// Host→device link statistics as accounted by the interconnect
    /// itself (chaos invariant: `link_h2d.bytes == h2d_bytes`).
    pub link_h2d: LinkStats,
    /// Device→host link statistics from the interconnect.
    pub link_d2h: LinkStats,
    /// Bytes still allocated on the co-processor heap after the run
    /// drained (chaos invariant: zero — no leaked tags).
    pub gpu_heap_leaked: u64,
}

impl RunMetrics {
    /// Record one completed operator.
    pub(crate) fn record_op(&mut self, device: DeviceId, busy: VirtualTime) {
        self.device_busy[device.index()] += busy;
        self.ops_completed[device.index()] += 1;
    }

    /// Total transfer service time in both directions.
    pub fn total_transfer_time(&self) -> VirtualTime {
        self.h2d_time + self.d2h_time
    }

    /// Total device time: busy time across devices plus abort waste.
    /// By construction `wasted_time <= total_device_time()` — the
    /// metrics-consistency invariant the chaos harness checks.
    pub fn total_device_time(&self) -> VirtualTime {
        self.device_busy[0] + self.device_busy[1] + self.wasted_time
    }

    /// Mean query latency over `outcomes`.
    pub fn mean_latency(outcomes: &[QueryOutcome]) -> VirtualTime {
        if outcomes.is_empty() {
            return VirtualTime::ZERO;
        }
        let total: u64 = outcomes.iter().map(|o| o.latency.as_nanos()).sum();
        VirtualTime::from_nanos(total / outcomes.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_op_accumulates() {
        let mut m = RunMetrics::default();
        m.record_op(DeviceId::Cpu, VirtualTime::from_millis(2));
        m.record_op(DeviceId::Cpu, VirtualTime::from_millis(3));
        m.record_op(DeviceId::Gpu, VirtualTime::from_millis(1));
        assert_eq!(m.device_busy[0], VirtualTime::from_millis(5));
        assert_eq!(m.ops_completed[0], 2);
        assert_eq!(m.ops_completed[1], 1);
    }

    #[test]
    fn transfer_total() {
        let m = RunMetrics {
            h2d_time: VirtualTime::from_millis(3),
            d2h_time: VirtualTime::from_millis(4),
            ..Default::default()
        };
        assert_eq!(m.total_transfer_time(), VirtualTime::from_millis(7));
    }

    #[test]
    fn mean_latency_of_outcomes() {
        let out = |l: u64| QueryOutcome {
            session: 0,
            seq: 0,
            latency: VirtualTime::from_millis(l),
            rows: 0,
            checksum: 0,
            faults: FaultCounters::default(),
            result: None,
        };
        assert_eq!(
            RunMetrics::mean_latency(&[out(10), out(20)]),
            VirtualTime::from_millis(15)
        );
        assert_eq!(RunMetrics::mean_latency(&[]), VirtualTime::ZERO);
    }
}
