//! Pipeline fusion over flattened task graphs.
//!
//! The flattened [`TaskNode`] list makes producer→consumer chains visible
//! by index. This pass recognizes the two chain shapes that dominate the
//! SSB/TPC-H subset —
//!
//! * filter → `Aggregate` (optionally through a `Project`), and
//! * filter → `HashJoin` where the selection feeds the **probe** side,
//!
//! — and runs each as *one fused morsel loop per worker*
//! ([`parallel::fused_filter_aggregate`] /
//! [`parallel::fused_filter_probe`], reusing [`ParallelCtx`]): the filter
//! emits selection-vector positions that are grouped or probed
//! immediately, so the filtered intermediate is never materialized. A
//! "filter" here is either a standalone `Select` task or a
//! predicate-bearing `Scan` (the planner pushes filters into scans, so
//! that is the common case). Everything else executes through the
//! materializing kernels, which makes materialization points explicit:
//! join build sides, sort inputs, projection outputs and the final
//! result.
//!
//! For filter → `Project` → `Aggregate`, the projection is folded away by
//! *expression substitution*: aggregate inputs are rewritten through the
//! projection's expressions and grouping columns are remapped to the base
//! columns they rename (the chain is left unfused if a grouping key is a
//! computed expression). Scan-sourced chains additionally require that
//! every column the consumer reads survives the scan's column pruning, so
//! "no column" errors stay identical to the materializing path. The
//! fused result is bit-identical to the materializing pipeline —
//! positions keep row order, grouping follows first-occurrence order over
//! the selection, and `f64` accumulation runs in selection order.

use crate::batch::Chunk;
use crate::exec::task::{flatten, TaskNode, TaskOp};
use crate::expr::Expr;
use crate::parallel::{self, ParallelCtx};
use crate::plan::{AggSpec, PlanNode};
use crate::predicate::Predicate;
use robustq_storage::{Database, Field};
use std::collections::HashMap;

/// The chain shape a fused site executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusedKind {
    /// Filter → `Aggregate` as one filter+group morsel loop.
    FilterAggregate,
    /// Filter → `Project` → `Aggregate`, the projection folded into the
    /// aggregate by expression substitution.
    FilterProjectAggregate,
    /// Filter → `HashJoin` (probe side) as one filter+probe morsel loop.
    FilterProbe,
}

/// Fusion decisions for one flattened task list: `(consumer index, kind)`
/// per fused chain, in consumer order.
///
/// A chain is only fused when the intermediate nodes have no other
/// consumer, which the tree shape guarantees (every node has exactly one
/// parent).
pub fn fusion_sites(tasks: &[TaskNode]) -> Vec<(usize, FusedKind)> {
    let mut sites = Vec::new();
    for (i, t) in tasks.iter().enumerate() {
        match &t.op {
            TaskOp::Aggregate { group_by, aggs } => {
                let child = t.children[0];
                let mut needed: Vec<String> = group_by.clone();
                for a in aggs {
                    needed.extend(a.input.referenced_columns());
                }
                if source_covers(&tasks[child].op, &needed) {
                    sites.push((i, FusedKind::FilterAggregate));
                } else if let TaskOp::Project { exprs } = &tasks[child].op {
                    let grandchild = tasks[child].children[0];
                    let mut proj_needs = Vec::new();
                    for (_, e) in exprs {
                        proj_needs.extend(e.referenced_columns());
                    }
                    if source_covers(&tasks[grandchild].op, &proj_needs)
                        && project_folds(exprs, group_by, aggs)
                    {
                        sites.push((i, FusedKind::FilterProjectAggregate));
                    }
                }
            }
            TaskOp::HashJoin { .. } => {
                let probe = t.children[1];
                // Scan-sourced probes additionally require the scan to
                // read exactly its kept columns (no predicate-only
                // columns), since the fused join gathers *every* probe
                // column into the output.
                let probe_ok = match &tasks[probe].op {
                    TaskOp::Select { .. } => true,
                    TaskOp::Scan { columns, predicate: Some(p), .. } => {
                        p.referenced_columns().iter().all(|c| columns.contains(c))
                    }
                    _ => false,
                };
                if probe_ok {
                    sites.push((i, FusedKind::FilterProbe));
                }
            }
            _ => {}
        }
    }
    sites
}

/// Is `op` a fusible filter whose *output* is guaranteed to contain every
/// column in `needed`? `Select` passes its input through unchanged, so it
/// always qualifies; a predicate-bearing `Scan` qualifies only when its
/// kept columns cover `needed` (otherwise the materializing path would
/// report "no column" and fusion must not mask that).
fn source_covers(op: &TaskOp, needed: &[String]) -> bool {
    match op {
        TaskOp::Select { .. } => true,
        TaskOp::Scan { columns, predicate: Some(_), .. } => {
            needed.iter().all(|c| columns.contains(c))
        }
        _ => false,
    }
}

/// Can the projection be folded into the aggregate? Grouping keys must be
/// plain column renames (computed group keys would need materialized key
/// columns) and every column an aggregate input reads must be produced by
/// the projection.
fn project_folds(
    exprs: &[(String, Expr)],
    group_by: &[String],
    aggs: &[AggSpec],
) -> bool {
    let map: HashMap<&str, &Expr> =
        exprs.iter().map(|(n, e)| (n.as_str(), e)).collect();
    let group_keys_are_renames = group_by
        .iter()
        .all(|g| matches!(map.get(g.as_str()), Some(Expr::Col(_))));
    let agg_inputs_covered = aggs.iter().all(|a| {
        a.input
            .referenced_columns()
            .iter()
            .all(|c| map.contains_key(c.as_str()))
    });
    group_keys_are_renames && agg_inputs_covered
}

/// Rewrite `e` so every column reference goes through the projection's
/// defining expression. Returns `None` if a referenced column is not
/// produced by the projection (callers then leave the chain unfused).
fn subst(e: &Expr, map: &HashMap<&str, &Expr>) -> Option<Expr> {
    match e {
        Expr::Col(n) => map.get(n.as_str()).map(|&def| def.clone()),
        Expr::Lit(v) => Some(Expr::Lit(*v)),
        Expr::Add(a, b) => {
            Some(Expr::Add(Box::new(subst(a, map)?), Box::new(subst(b, map)?)))
        }
        Expr::Sub(a, b) => {
            Some(Expr::Sub(Box::new(subst(a, map)?), Box::new(subst(b, map)?)))
        }
        Expr::Mul(a, b) => {
            Some(Expr::Mul(Box::new(subst(a, map)?), Box::new(subst(b, map)?)))
        }
        Expr::Div(a, b) => {
            Some(Expr::Div(Box::new(subst(a, map)?), Box::new(subst(b, map)?)))
        }
        Expr::IntDiv(a, d) => Some(Expr::IntDiv(Box::new(subst(a, map)?), *d)),
    }
}

/// Execute a flattened task list with pipeline fusion, returning the root
/// output. Bit-identical to executing every task through the
/// materializing kernels.
pub fn execute_tasks_fused(
    tasks: &[TaskNode],
    db: &Database,
    ctx: ParallelCtx,
) -> Result<Chunk, String> {
    let sites: HashMap<usize, FusedKind> = fusion_sites(tasks).into_iter().collect();
    // Mark chain interiors so they are skipped (their work happens inside
    // the fused loop at the consumer).
    let mut skip = vec![false; tasks.len()];
    for (&i, &kind) in &sites {
        match kind {
            FusedKind::FilterAggregate => skip[tasks[i].children[0]] = true,
            FusedKind::FilterProjectAggregate => {
                let project = tasks[i].children[0];
                skip[project] = true;
                skip[tasks[project].children[0]] = true;
            }
            FusedKind::FilterProbe => skip[tasks[i].children[1]] = true,
        }
    }

    let mut outputs: Vec<Option<Chunk>> = vec![None; tasks.len()];
    // Every non-root node has exactly one parent, so child outputs can be
    // moved out (`take`) rather than cloned.
    for (i, t) in tasks.iter().enumerate() {
        if skip[i] {
            continue;
        }
        let out = match sites.get(&i) {
            Some(FusedKind::FilterAggregate) => {
                let (input, predicate) =
                    filter_input(tasks, t.children[0], &mut outputs, db)?;
                let (group_by, aggs) = aggregate_spec(&t.op);
                parallel::fused_filter_aggregate(&input, predicate, group_by, aggs, ctx)?
            }
            Some(FusedKind::FilterProjectAggregate) => {
                let project = tasks[i].children[0];
                let (input, predicate) = filter_input(
                    tasks,
                    tasks[project].children[0],
                    &mut outputs,
                    db,
                )?;
                let exprs = match &tasks[project].op {
                    TaskOp::Project { exprs } => exprs,
                    _ => unreachable!("fusion site shape checked"),
                };
                let (group_by, aggs) = aggregate_spec(&t.op);
                let map: HashMap<&str, &Expr> =
                    exprs.iter().map(|(n, e)| (n.as_str(), e)).collect();
                // Remap grouping keys to the base columns they rename and
                // rewrite aggregate inputs through the projection.
                let base_group_by: Vec<String> = group_by
                    .iter()
                    .map(|g| match map.get(g.as_str()) {
                        Some(Expr::Col(base)) => Ok(base.clone()),
                        _ => Err(format!("group key {g} is not a rename")),
                    })
                    .collect::<Result<_, String>>()?;
                let base_aggs: Vec<AggSpec> = aggs
                    .iter()
                    .map(|a| {
                        let input = subst(&a.input, &map).ok_or_else(|| {
                            format!("aggregate input {} not covered", a.input)
                        })?;
                        Ok(AggSpec::new(a.func, input, a.output_name.clone()))
                    })
                    .collect::<Result<_, String>>()?;
                let out = parallel::fused_filter_aggregate(
                    &input,
                    predicate,
                    &base_group_by,
                    &base_aggs,
                    ctx,
                )?;
                // Key columns carry base names; restore the projected ones.
                rename_key_columns(out, group_by)
            }
            Some(FusedKind::FilterProbe) => {
                let build = take_output(&mut outputs, t.children[0]);
                let (probe, predicate) =
                    filter_input(tasks, t.children[1], &mut outputs, db)?;
                let (build_key, probe_key, kind) = match &t.op {
                    TaskOp::HashJoin { build_key, probe_key, kind } => {
                        (build_key, probe_key, *kind)
                    }
                    _ => unreachable!("fusion site shape checked"),
                };
                parallel::fused_filter_probe(
                    &build, &probe, predicate, build_key, probe_key, kind, ctx,
                )?
            }
            None => {
                let children: Vec<Chunk> = t
                    .children
                    .iter()
                    .map(|&c| take_output(&mut outputs, c))
                    .collect();
                t.op.execute_ctx(&children, db, ctx)?
            }
        };
        outputs[i] = Some(out);
    }
    Ok(outputs
        .pop()
        .flatten()
        .expect("root is last in postorder and never skipped"))
}

/// Execute a plan with pipeline fusion (flatten + [`execute_tasks_fused`]).
pub fn execute_plan_fused(
    plan: &PlanNode,
    db: &Database,
    ctx: ParallelCtx,
) -> Result<Chunk, String> {
    execute_tasks_fused(&flatten(plan), db, ctx)
}

/// Resolve a fused chain's filter task to `(unfiltered input, predicate)`:
/// a `Select` contributes its child's output, a predicate-bearing `Scan`
/// loads its table columns directly (the predicate is *not* applied here —
/// that is the fused loop's job).
fn filter_input<'t>(
    tasks: &'t [TaskNode],
    filt: usize,
    outputs: &mut [Option<Chunk>],
    db: &Database,
) -> Result<(Chunk, &'t Predicate), String> {
    match &tasks[filt].op {
        TaskOp::Select { predicate } => {
            Ok((take_output(outputs, tasks[filt].children[0]), predicate))
        }
        TaskOp::Scan { table, predicate: Some(p), .. } => {
            let (_, read_cols) =
                tasks[filt].op.scan_access().expect("scan op has access");
            let t = db.table(table).ok_or_else(|| format!("no table {table}"))?;
            Ok((Chunk::from_table(t, &read_cols)?, p))
        }
        _ => unreachable!("fusion site shape checked"),
    }
}

fn take_output(outputs: &mut [Option<Chunk>], idx: usize) -> Chunk {
    outputs[idx].take().expect("postorder guarantees children done")
}

fn aggregate_spec(op: &TaskOp) -> (&[String], &[AggSpec]) {
    match op {
        TaskOp::Aggregate { group_by, aggs } => (group_by, aggs),
        _ => unreachable!("fusion site shape checked"),
    }
}

/// Rebuild `chunk` with its leading key columns renamed to `names` (the
/// aggregate columns that follow keep their names).
fn rename_key_columns(chunk: Chunk, names: &[String]) -> Chunk {
    let fields: Vec<Field> = chunk
        .fields()
        .iter()
        .enumerate()
        .map(|(i, f)| match names.get(i) {
            Some(n) => Field::new(n.clone(), f.data_type),
            None => f.clone(),
        })
        .collect();
    Chunk::new(fields, chunk.columns().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use crate::plan::AggSpec;
    use robustq_storage::gen::ssb::SsbGenerator;

    fn test_ctx(workers: usize) -> ParallelCtx {
        ParallelCtx::serial()
            .with_workers(workers)
            .with_morsel_rows(64)
            .with_min_rows_per_worker(0)
    }

    /// Scan-sourced filter → aggregate (the planner pushes the filter
    /// into the scan).
    fn agg_plan() -> PlanNode {
        PlanNode::scan("lineorder", ["lo_orderdate", "lo_revenue", "lo_discount"])
            .filter(Predicate::between("lo_discount", 1, 3))
            .aggregate(
                ["lo_orderdate"],
                vec![AggSpec::sum(Expr::col("lo_revenue"), "revenue")],
            )
    }

    /// Select-sourced filter → aggregate: the second filter cannot merge
    /// into the scan, so it stays a standalone `Select` task.
    fn select_agg_plan() -> PlanNode {
        PlanNode::scan(
            "lineorder",
            ["lo_orderdate", "lo_revenue", "lo_discount", "lo_quantity"],
        )
        .filter(Predicate::between("lo_discount", 1, 3))
        .filter(Predicate::between("lo_quantity", 1, 25))
        .aggregate([] as [&str; 0], vec![AggSpec::sum(Expr::col("lo_revenue"), "s")])
    }

    fn proj_agg_plan() -> PlanNode {
        PlanNode::scan("lineorder", ["lo_orderdate", "lo_revenue", "lo_discount"])
            .filter(Predicate::between("lo_discount", 1, 3))
            .project(vec![
                ("od".to_string(), Expr::col("lo_orderdate")),
                (
                    "scaled".to_string(),
                    Expr::col("lo_revenue") * Expr::col("lo_discount"),
                ),
            ])
            .aggregate(["od"], vec![AggSpec::sum(Expr::col("scaled"), "s")])
    }

    fn probe_plan() -> PlanNode {
        PlanNode::scan("lineorder", ["lo_orderdate", "lo_revenue", "lo_discount"])
            .filter(Predicate::between("lo_discount", 1, 3))
            .join(
                PlanNode::scan("date", ["d_datekey", "d_year"]),
                "lo_orderdate",
                "d_datekey",
            )
    }

    #[test]
    fn recognizes_chain_shapes() {
        for (plan, kind) in [
            (agg_plan(), FusedKind::FilterAggregate),
            (select_agg_plan(), FusedKind::FilterAggregate),
            (proj_agg_plan(), FusedKind::FilterProjectAggregate),
            (probe_plan(), FusedKind::FilterProbe),
        ] {
            let tasks = flatten(&plan);
            assert_eq!(fusion_sites(&tasks), vec![(tasks.len() - 1, kind)], "{plan}");
        }
    }

    #[test]
    fn computed_group_keys_are_not_fused() {
        let plan = PlanNode::scan("lineorder", ["lo_orderdate", "lo_revenue"])
            .filter(Predicate::between("lo_orderdate", 19_940_101, 19_941_231))
            .project(vec![
                ("year".to_string(), Expr::year_of("lo_orderdate")),
                ("r".to_string(), Expr::col("lo_revenue")),
            ])
            .aggregate(["year"], vec![AggSpec::sum(Expr::col("r"), "s")]);
        assert!(fusion_sites(&flatten(&plan)).is_empty());
        // Still executes correctly, just unfused.
        let db = SsbGenerator::new(1).with_rows_per_sf(400).generate();
        let fused = execute_plan_fused(&plan, &db, test_ctx(4)).unwrap();
        let serial = ops::execute_plan(&plan, &db).unwrap();
        assert_eq!(fused, serial);
    }

    #[test]
    fn pruned_scan_columns_block_fusion_and_errors_match() {
        // The aggregate reads a column the scan prunes away: fusion must
        // not rescue the query — the "no column" error is part of the
        // contract with the materializing path.
        let plan = PlanNode::scan("lineorder", ["lo_revenue"])
            .filter(Predicate::between("lo_discount", 1, 3))
            .aggregate(
                [] as [&str; 0],
                vec![AggSpec::sum(Expr::col("lo_discount"), "s")],
            );
        assert!(fusion_sites(&flatten(&plan)).is_empty());
        let db = SsbGenerator::new(1).with_rows_per_sf(200).generate();
        let serial = ops::execute_plan(&plan, &db).unwrap_err();
        let fused = execute_plan_fused(&plan, &db, test_ctx(4)).unwrap_err();
        assert_eq!(fused, serial);
    }

    #[test]
    fn fused_execution_is_bit_identical_to_serial() {
        let db = SsbGenerator::new(1).with_rows_per_sf(600).generate();
        for plan in [agg_plan(), select_agg_plan(), proj_agg_plan(), probe_plan()] {
            let serial = ops::execute_plan(&plan, &db).unwrap();
            for workers in [1, 4, 8] {
                let fused = execute_plan_fused(&plan, &db, test_ctx(workers)).unwrap();
                assert_eq!(fused, serial, "workers={workers} plan={plan}");
            }
        }
    }
}
