//! Scalar expressions, evaluated column-at-a-time.
//!
//! Expressions cover what the SSB/TPC-H query subset needs: column
//! references, numeric literals, the four arithmetic operators and integer
//! division (`year(yyyymmdd) = col // 10000`). Evaluation is columnar:
//! an expression over an `n`-row chunk produces an `n`-row column.

use crate::batch::Chunk;
use robustq_storage::{ColumnData, DataType};
use std::fmt;

/// A scalar expression over the columns of one chunk.
///
/// Arithmetic composes through the `std::ops` traits: `a + b`, `a - b`,
/// `a * b` and `a / b` build AST nodes (they do not compute).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A column of the input chunk, by name.
    Col(String),
    /// A numeric literal.
    Lit(f64),
    /// Addition.
    Add(Box<Expr>, Box<Expr>),
    /// Subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Multiplication.
    Mul(Box<Expr>, Box<Expr>),
    /// Division.
    Div(Box<Expr>, Box<Expr>),
    /// Truncating integer division (both operands rounded toward zero
    /// first). `IntDiv(Col("l_shipdate"), 10000)` extracts the year from a
    /// `yyyymmdd` date.
    IntDiv(Box<Expr>, f64),
}

impl Expr {
    /// A column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Col(name.into())
    }

    /// A numeric literal.
    pub fn lit(v: f64) -> Expr {
        Expr::Lit(v)
    }

    /// `self // divisor` with truncation.
    pub fn int_div(self, divisor: f64) -> Expr {
        Expr::IntDiv(Box::new(self), divisor)
    }

    /// Extract the year from a `yyyymmdd`-encoded date column.
    pub fn year_of(col: impl Into<String>) -> Expr {
        Expr::col(col).int_div(10_000.0)
    }

    /// Names of all columns the expression reads.
    pub fn referenced_columns(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns(&self, out: &mut Vec<String>) {
        match self {
            Expr::Col(n) => {
                if !out.contains(n) {
                    out.push(n.clone());
                }
            }
            Expr::Lit(_) => {}
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Expr::IntDiv(a, _) => a.collect_columns(out),
        }
    }

    /// The result type of the expression over `chunk`.
    ///
    /// A bare column reference keeps its type; any arithmetic yields
    /// `Float64` except [`Expr::IntDiv`], which yields `Int64`.
    pub fn result_type(&self, chunk: &Chunk) -> Result<DataType, String> {
        match self {
            Expr::Col(n) => chunk
                .column_type(n)
                .ok_or_else(|| format!("no column {n} in chunk")),
            Expr::Lit(_) => Ok(DataType::Float64),
            Expr::IntDiv(_, _) => Ok(DataType::Int64),
            _ => Ok(DataType::Float64),
        }
    }

    /// Evaluate over every row of `chunk`.
    pub fn evaluate(&self, chunk: &Chunk) -> Result<ColumnData, String> {
        match self {
            Expr::Col(n) => Ok(chunk.require_column(n)?.clone()),
            Expr::Lit(v) => Ok(ColumnData::Float64(vec![*v; chunk.num_rows()])),
            Expr::IntDiv(a, d) => {
                let vals = a.evaluate_f64(chunk)?;
                Ok(ColumnData::Int64(
                    vals.into_iter().map(|v| (v / *d).trunc() as i64).collect(),
                ))
            }
            _ => Ok(ColumnData::Float64(self.evaluate_f64(chunk)?)),
        }
    }

    /// Evaluate to a dense `f64` vector (numeric expressions only).
    pub fn evaluate_f64(&self, chunk: &Chunk) -> Result<Vec<f64>, String> {
        let n = chunk.num_rows();
        match self {
            Expr::Col(name) => {
                let col = chunk.require_column(name)?;
                if col.data_type() == DataType::Str {
                    return Err(format!("column {name} is not numeric"));
                }
                Ok((0..n).map(|i| col.get_f64(i)).collect())
            }
            Expr::Lit(v) => Ok(vec![*v; n]),
            Expr::Add(a, b) => binary(a, b, chunk, |x, y| x + y),
            Expr::Sub(a, b) => binary(a, b, chunk, |x, y| x - y),
            Expr::Mul(a, b) => binary(a, b, chunk, |x, y| x * y),
            Expr::Div(a, b) => binary(a, b, chunk, |x, y| x / y),
            Expr::IntDiv(a, d) => {
                let vals = a.evaluate_f64(chunk)?;
                Ok(vals.into_iter().map(|v| (v / *d).trunc()).collect())
            }
        }
    }

    /// Evaluate at the given row positions only, producing one value per
    /// position (in position order).
    ///
    /// Expressions are row-wise pure, so this equals gathering the chunk
    /// at `positions` and evaluating densely — without materializing the
    /// gathered input columns. Selection-vector aggregation uses it to
    /// compute inputs for qualifying rows only.
    pub fn evaluate_f64_at(
        &self,
        chunk: &Chunk,
        positions: &[u32],
    ) -> Result<Vec<f64>, String> {
        match self {
            Expr::Col(name) => {
                let col = chunk.require_column(name)?;
                if col.data_type() == DataType::Str {
                    return Err(format!("column {name} is not numeric"));
                }
                Ok(positions.iter().map(|&p| col.get_f64(p as usize)).collect())
            }
            Expr::Lit(v) => Ok(vec![*v; positions.len()]),
            Expr::Add(a, b) => binary_at(a, b, chunk, positions, |x, y| x + y),
            Expr::Sub(a, b) => binary_at(a, b, chunk, positions, |x, y| x - y),
            Expr::Mul(a, b) => binary_at(a, b, chunk, positions, |x, y| x * y),
            Expr::Div(a, b) => binary_at(a, b, chunk, positions, |x, y| x / y),
            Expr::IntDiv(a, d) => {
                let vals = a.evaluate_f64_at(chunk, positions)?;
                Ok(vals.into_iter().map(|v| (v / *d).trunc()).collect())
            }
        }
    }

    /// Positional form of [`Expr::evaluate`]: the result column holds one
    /// row per entry of `positions`, identical to evaluating over the
    /// gathered chunk.
    pub fn evaluate_at(
        &self,
        chunk: &Chunk,
        positions: &[u32],
    ) -> Result<ColumnData, String> {
        match self {
            Expr::Col(n) => Ok(chunk.require_column(n)?.gather(positions)),
            Expr::Lit(v) => Ok(ColumnData::Float64(vec![*v; positions.len()])),
            Expr::IntDiv(a, d) => {
                let vals = a.evaluate_f64_at(chunk, positions)?;
                Ok(ColumnData::Int64(
                    vals.into_iter().map(|v| (v / *d).trunc() as i64).collect(),
                ))
            }
            _ => Ok(ColumnData::Float64(self.evaluate_f64_at(chunk, positions)?)),
        }
    }
}

impl std::ops::Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Div for Expr {
    type Output = Expr;
    fn div(self, rhs: Expr) -> Expr {
        Expr::Div(Box::new(self), Box::new(rhs))
    }
}

fn binary(
    a: &Expr,
    b: &Expr,
    chunk: &Chunk,
    f: impl Fn(f64, f64) -> f64,
) -> Result<Vec<f64>, String> {
    let mut x = a.evaluate_f64(chunk)?;
    let y = b.evaluate_f64(chunk)?;
    for (xi, yi) in x.iter_mut().zip(y) {
        *xi = f(*xi, yi);
    }
    Ok(x)
}

fn binary_at(
    a: &Expr,
    b: &Expr,
    chunk: &Chunk,
    positions: &[u32],
    f: impl Fn(f64, f64) -> f64,
) -> Result<Vec<f64>, String> {
    let mut x = a.evaluate_f64_at(chunk, positions)?;
    let y = b.evaluate_f64_at(chunk, positions)?;
    for (xi, yi) in x.iter_mut().zip(y) {
        *xi = f(*xi, yi);
    }
    Ok(x)
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(n) => f.write_str(n),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Mul(a, b) => write!(f, "({a} * {b})"),
            Expr::Div(a, b) => write!(f, "({a} / {b})"),
            Expr::IntDiv(a, d) => write!(f, "({a} // {d})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robustq_storage::Field;

    fn chunk() -> Chunk {
        Chunk::new(
            vec![
                Field::new("price", DataType::Float64),
                Field::new("disc", DataType::Int32),
                Field::new("date", DataType::Int32),
            ],
            vec![
                ColumnData::Float64(vec![100.0, 200.0]),
                ColumnData::Int32(vec![5, 10]),
                ColumnData::Int32(vec![19_940_215, 19_971_231]),
            ],
        )
    }

    #[test]
    fn arithmetic_revenue_expression() {
        // l_extendedprice * (1 - l_discount/100)
        let e = Expr::col("price")
            * (Expr::lit(1.0) - Expr::col("disc") / Expr::lit(100.0));
        let v = e.evaluate_f64(&chunk()).unwrap();
        assert_eq!(v, vec![95.0, 180.0]);
    }

    #[test]
    fn year_extraction() {
        let e = Expr::year_of("date");
        match e.evaluate(&chunk()).unwrap() {
            ColumnData::Int64(v) => assert_eq!(v, vec![1994, 1997]),
            other => panic!("expected Int64, got {other:?}"),
        }
    }

    #[test]
    fn bare_column_keeps_type() {
        let e = Expr::col("disc");
        assert_eq!(e.result_type(&chunk()).unwrap(), DataType::Int32);
        match e.evaluate(&chunk()).unwrap() {
            ColumnData::Int32(v) => assert_eq!(v, vec![5, 10]),
            other => panic!("expected Int32, got {other:?}"),
        }
    }

    #[test]
    fn referenced_columns_dedup() {
        let e = Expr::col("price") * Expr::col("price") + Expr::col("disc");
        assert_eq!(e.referenced_columns(), vec!["price".to_string(), "disc".into()]);
    }

    #[test]
    fn missing_column_is_an_error() {
        let e = Expr::col("nope");
        assert!(e.evaluate(&chunk()).is_err());
        assert!(e.result_type(&chunk()).is_err());
    }

    #[test]
    fn string_column_in_arithmetic_is_an_error() {
        use robustq_storage::DictColumn;
        let c = Chunk::new(
            vec![Field::new("s", DataType::Str)],
            vec![ColumnData::Str(DictColumn::from_strings(["a"]))],
        );
        assert!((Expr::col("s") + Expr::lit(1.0)).evaluate_f64(&c).is_err());
    }

    #[test]
    fn display_roundtrip_shape() {
        let e = (Expr::col("a") + Expr::lit(2.0)) * Expr::col("b");
        assert_eq!(e.to_string(), "((a + 2) * b)");
    }
}
