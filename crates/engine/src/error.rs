//! Typed executor errors.
//!
//! `Executor::run*` and the workload runners used to return
//! `Result<_, String>`; callers could only grep the message. The
//! [`EngineError`] enum classifies every failure the execution layer can
//! produce so harnesses can match on the *kind* (e.g. treat
//! [`EngineError::Stalled`] as a scheduler bug but surface
//! [`EngineError::Storage`] as a workload configuration problem).
//!
//! `From<EngineError> for String` keeps pre-existing `Result<_, String>`
//! call sites (examples, ad-hoc tools) compiling with `?`.

use std::error::Error;
use std::fmt;

/// An execution-layer failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The physical plan was malformed (unknown column, bad tree shape).
    Plan(String),
    /// A referenced table or column does not exist in the database.
    Storage(String),
    /// A host-side kernel failed while materializing an operator.
    Kernel(String),
    /// The event loop drained with queries still outstanding — a
    /// scheduler invariant violation, not a workload problem.
    Stalled {
        /// Queries that did complete.
        completed: usize,
        /// Queries submitted.
        total: usize,
    },
    /// An internal invariant broke (e.g. a child output went missing).
    Internal(String),
    /// Invalid configuration: a bad CLI flag, an out-of-range knob, or a
    /// malformed benchmark artifact fed to a gate.
    Config(String),
}

impl EngineError {
    /// Shorthand for a [`EngineError::Config`] from any displayable value
    /// (the typed replacement for the bench harness' old
    /// `Result<_, String>` plumbing).
    pub fn config(msg: impl fmt::Display) -> Self {
        EngineError::Config(msg.to_string())
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Plan(msg) => write!(f, "plan error: {msg}"),
            EngineError::Storage(msg) => write!(f, "storage error: {msg}"),
            EngineError::Kernel(msg) => write!(f, "kernel error: {msg}"),
            EngineError::Stalled { completed, total } => write!(
                f,
                "executor stalled: {completed}/{total} queries completed"
            ),
            EngineError::Internal(msg) => write!(f, "internal error: {msg}"),
            EngineError::Config(msg) => write!(f, "configuration error: {msg}"),
        }
    }
}

impl Error for EngineError {}

impl From<EngineError> for String {
    fn from(e: EngineError) -> String {
        e.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_converts() {
        let e = EngineError::Stalled { completed: 3, total: 5 };
        assert_eq!(e.to_string(), "executor stalled: 3/5 queries completed");
        let s: String = EngineError::Plan("bad".into()).into();
        assert_eq!(s, "plan error: bad");
        fn takes_err(_: &dyn Error) {}
        takes_err(&e);
    }
}
