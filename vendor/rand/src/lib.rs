//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to the crates.io registry, so this
//! vendored crate provides exactly the surface the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] over integer (and `f64`) ranges.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (which is ChaCha12), but the workspace only
//! requires *determinism* (same seed ⇒ same database), not upstream
//! bit-compatibility. Range sampling uses the widening-multiply method; it is
//! deterministic and unbiased to within 2⁻⁶⁴.

#![warn(missing_docs)]

/// Concrete generator types.
pub mod rngs {
    /// A deterministic pseudo-random generator (xoshiro256**).
    ///
    /// Construct with [`crate::SeedableRng::seed_from_u64`]; the same seed
    /// always produces the same stream on every platform.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: [u64; 4],
    }

    impl StdRng {
        /// Next raw 64-bit output of the generator.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A generator that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the xoshiro state, as
        // recommended by the xoshiro authors.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let state = [next(), next(), next(), next()];
        rngs::StdRng { state }
    }
}

/// Uniform range sampling, mirroring `rand::distributions::uniform`.
pub mod uniform {
    use crate::Rng;

    /// Types that can be sampled uniformly from a range.
    pub trait SampleUniform: Copy + PartialOrd {
        /// A uniform sample from `[lo, hi]` if `inclusive`, else `[lo, hi)`.
        /// Panics on an empty range.
        fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool)
            -> Self;
    }

    /// A range that can produce a uniformly distributed `T`.
    ///
    /// Blanket-implemented for `Range<T>` and `RangeInclusive<T>` over any
    /// [`SampleUniform`] `T` — a single impl per range shape, so integer
    /// literal inference flows through `gen_range` exactly as with upstream
    /// rand (`base + rng.gen_range(30..=90)` infers the range as `usize`).
    pub trait SampleRange<T> {
        /// Draw one sample from the range. Panics on an empty range.
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
            T::sample_uniform(rng, self.start, self.end, false)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
            T::sample_uniform(rng, *self.start(), *self.end(), true)
        }
    }

    // Widening-multiply mapping of a raw u64 onto [0, span).
    pub(crate) fn below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((rng.next_u64() as u128 * span as u128) >> 64) as u64
    }

    macro_rules! impl_sample_uniform_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_uniform<R: Rng + ?Sized>(
                    rng: &mut R,
                    lo: Self,
                    hi: Self,
                    inclusive: bool,
                ) -> Self {
                    if inclusive {
                        assert!(lo <= hi, "gen_range: empty range");
                        let span = (hi as i128 - lo as i128) as u128 + 1;
                        if span > u64::MAX as u128 {
                            // Full-width range: every u64 is a valid offset.
                            return (lo as i128 + rng.next_u64() as i128) as $t;
                        }
                        (lo as i128 + below(rng, span as u64) as i128) as $t
                    } else {
                        assert!(lo < hi, "gen_range: empty range");
                        let span = (hi as i128 - lo as i128) as u64;
                        (lo as i128 + below(rng, span) as i128) as $t
                    }
                }
            }
        )*};
    }

    impl_sample_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl SampleUniform for f64 {
        fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool)
            -> Self {
            assert!(lo < hi, "gen_range: empty range");
            let frac = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            lo + frac * (hi - lo)
        }
    }
}

/// User-facing generator methods, mirroring `rand::Rng`.
pub trait Rng {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range` (`Range` or `RangeInclusive`).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        let frac = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        frac < p
    }
}

impl Rng for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        rngs::StdRng::next_u64(self)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert!((0..8).any(|_| a.next_u64() != b.next_u64()));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
            let w = rng.gen_range(1u32..=50);
            assert!((1..=50).contains(&w));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
            let f = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn inclusive_range_reaches_both_ends() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 3];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..=2)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
