//! Offline drop-in subset of the `proptest` 1.x API.
//!
//! The build environment has no access to the crates.io registry, so this
//! vendored crate implements the slice of proptest the workspace's property
//! tests use: the [`proptest!`] macro, [`prop_assert!`]/[`prop_assert_eq!`],
//! the [`strategy::Strategy`] trait with `prop_map`, integer-range / tuple /
//! `vec` / `select` / `bool` strategies, [`strategy::Just`] and the uniform
//! [`prop_oneof!`] union, a tiny `.{lo,hi}`-style string pattern strategy,
//! and [`test_runner::ProptestConfig`].
//!
//! Differences from upstream, by design:
//! - **No shrinking.** A failing case panics with the generated inputs
//!   reproducible from the (deterministic) per-test seed.
//! - **Deterministic.** Each test derives its seed from its module path and
//!   name, so runs are stable across machines and invocations.
//! - `prop_assert!` is plain `assert!` (panic, not `Err`-return).

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Test-case generation strategies.
pub mod strategy {
    use super::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Mirrors `proptest::strategy::Strategy`, minus value trees and
    /// shrinking: `generate` directly produces a value.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform every generated value with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, func: f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        func: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.func)(self.source.generate(rng))
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// One of several strategies producing the same value type, chosen
    /// uniformly per case. Built by [`crate::prop_oneof!`]; upstream's
    /// per-arm weights are not supported.
    pub struct Union<V> {
        arms: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// A union over `arms`. Panics if `arms` is empty.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof!: no arms");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    /// Box a strategy as a uniform [`Union`] arm (used by
    /// [`crate::prop_oneof!`] so `as`-cast type placeholders are not
    /// needed at the call site).
    pub fn union_arm<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_int_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),*) => {
            impl<$($name: Strategy),*> Strategy for ($($name,)*) {
                type Value = ($($name::Value,)*);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)*) = self;
                    ($($name.generate(rng),)*)
                }
            }
        };
    }

    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, G);

    /// `&str` as a string pattern strategy.
    ///
    /// Upstream proptest treats `&str` as a full regex; this subset supports
    /// the one shape the workspace uses — `.{lo,hi}`: a string of `lo..=hi`
    /// characters drawn from a printable-heavy alphabet (with quotes,
    /// operators and a couple of multi-byte characters to stress lexers).
    /// Any pattern without `.{` generates the literal pattern itself.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            const ALPHABET: &[char] = &[
                'a', 'b', 'c', 'x', 'y', 'z', 'S', 'E', 'L', 'C', 'T', '0', '1', '2', '7',
                '9', ' ', ' ', '\t', '\n', '(', ')', ',', '.', '*', '+', '-', '/', '=',
                '<', '>', '\'', '"', '_', ';', '%', '{', '}', 'é', '漢', '🦀', '\u{0}',
            ];
            let Some((lo, hi)) = parse_dot_repeat(self) else {
                return (*self).to_string();
            };
            let len = rng.gen_range(lo..=hi);
            (0..len)
                .map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())])
                .collect()
        }
    }

    fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
        let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
        let (lo, hi) = rest.split_once(',')?;
        Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// A length constraint for [`vec`], converted from `usize` ranges.
    ///
    /// Mirrors `proptest::collection::SizeRange`: taking a concrete type
    /// with `From<Range<usize>>` (rather than a generic strategy) is what
    /// lets a bare `0..200` literal infer as `usize`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "collection::vec: empty size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "collection::vec: empty size range");
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    /// A `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Pick one of `options` uniformly. Panics if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "sample::select: empty options");
        Select { options }
    }

    /// Strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }
}

/// Boolean strategies (`prop::bool`).
pub mod bool {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy generating `true` or `false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The any-bool strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen_range(0u32..2) == 1
        }
    }
}

/// Test-runner configuration and the per-test RNG.
pub mod test_runner {
    use super::{Rng, SeedableRng, StdRng};

    /// Runner configuration (subset: case count only).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps the deterministic suite fast
            // while still exercising each property across a spread of inputs.
            ProptestConfig { cases: 64 }
        }
    }

    /// Per-test-case deterministic RNG.
    ///
    /// Seeded from the test's module path + name and the case index, so every
    /// run of the suite generates the same inputs.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// RNG for case number `case` of the test identified by `name`.
        pub fn for_case(name: &str, case: u64) -> Self {
            // FNV-1a over the test identity, mixed with the case index.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(StdRng::seed_from_u64(
                h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ))
        }

        /// A uniform sample from `range`.
        pub fn gen_range<T, S>(&mut self, range: S) -> T
        where
            S: rand::uniform::SampleRange<T>,
        {
            self.0.gen_range(range)
        }
    }
}

/// The strategy namespace re-exported by the prelude as `prop`.
pub mod prop {
    pub use super::bool;
    pub use super::collection;
    pub use super::sample;
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use super::prop;
    pub use super::strategy::{Just, Strategy};
    pub use super::test_runner::ProptestConfig;
    pub use super::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Choose uniformly between several strategies producing the same value
/// type (subset of upstream `prop_oneof!`: no per-arm weights).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::union_arm($strat)),+
        ])
    };
}

/// Define deterministic property tests.
///
/// Supports the upstream surface the workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///     /// doc comments allowed
///     #[test]
///     fn my_property(x in 0i32..10, v in prop::collection::vec(0u64..5, 0..20)) {
///         prop_assert!(x >= 0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __strategies = ($($strat,)*);
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case as u64,
                );
                let ($($arg,)*) = {
                    let ($(ref $arg,)*) = __strategies;
                    ($($crate::strategy::Strategy::generate($arg, &mut __rng),)*)
                };
                $body
            }
        }
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
}

/// Assert a property holds (plain `assert!` in this subset).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert two values are equal (plain `assert_eq!` in this subset).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert two values differ (plain `assert_ne!` in this subset).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(x in -5i32..5, pair in (0u64..3, 1usize..=4)) {
            prop_assert!((-5..5).contains(&x));
            prop_assert!(pair.0 < 3);
            prop_assert!((1..=4).contains(&pair.1));
        }

        #[test]
        fn vectors_respect_length(v in prop::collection::vec(0i32..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| (0..10).contains(&x)));
        }

        #[test]
        fn select_and_bool(word in prop::sample::select(vec!["a", "b"]), flag in prop::bool::ANY) {
            prop_assert!(word == "a" || word == "b");
            let _ = flag;
        }

        #[test]
        fn string_pattern_length(s in ".{0,20}") {
            prop_assert!(s.chars().count() <= 20);
        }

        #[test]
        fn prop_map_applies(doubled in (0i32..10).prop_map(|x| x * 2)) {
            prop_assert_eq!(doubled % 2, 0);
            prop_assert_ne!(doubled, 21);
        }

        #[test]
        fn oneof_and_just(x in prop_oneof![Just(-1i32), 0i32..10, (100i32..200).prop_map(|v| v * 2)]) {
            prop_assert!(x == -1 || (0..10).contains(&x) || (200..400).contains(&x));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]
        #[test]
        fn config_is_respected(x in 0i32..100) {
            let _ = x;
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = crate::collection::vec(0i32..1000, 5..6);
        let a = strat.generate(&mut TestRng::for_case("t", 0));
        let b = strat.generate(&mut TestRng::for_case("t", 0));
        let c = strat.generate(&mut TestRng::for_case("t", 1));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
