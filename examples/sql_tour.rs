//! A tour of the SQL front end: parse, plan (Selinger join ordering,
//! predicate classification, projection pushdown) and execute a set of
//! analytical queries, printing plans and results.
//!
//! ```text
//! cargo run --release --example sql_tour
//! ```

use robustq::engine::ops;
use robustq::sql::plan_sql;
use robustq::storage::gen::ssb::SsbGenerator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = SsbGenerator::new(1).with_rows_per_sf(10_000).generate();

    let queries = [
        (
            "simple filter + projection",
            "select lo_orderkey, lo_revenue from lineorder \
             where lo_discount > 9 and lo_quantity < 3 \
             order by lo_revenue desc limit 5",
        ),
        (
            "star join with grouping (SSB Q3.1 shape)",
            "select c_nation, s_nation, d_year, sum(lo_revenue) as revenue \
             from customer, lineorder, supplier, date \
             where lo_custkey = c_custkey and lo_suppkey = s_suppkey \
             and lo_orderdate = d_datekey and c_region = 'ASIA' \
             and s_region = 'ASIA' and d_year >= 1992 and d_year <= 1997 \
             group by c_nation, s_nation, d_year \
             order by d_year asc, revenue desc limit 8",
        ),
        (
            "IN lists and string ranges",
            "select p_brand1, count(*) as parts from part \
             where p_brand1 between 'MFGR#2221' and 'MFGR#2228' \
             group by p_brand1 order by p_brand1",
        ),
        (
            "aggregates over arithmetic",
            "select d_year, sum(lo_extendedprice * lo_discount) as discounted, \
             avg(lo_quantity) as avg_qty \
             from lineorder, date where lo_orderdate = d_datekey \
             group by d_year order by d_year",
        ),
    ];

    for (title, sql) in queries {
        println!("=== {title} ===");
        println!("SQL: {sql}\n");
        let plan = plan_sql(sql, &db)?;
        println!("plan:\n{plan}");
        let result = ops::execute_plan(&plan, &db)?;
        let names: Vec<&str> =
            result.fields().iter().map(|f| f.name.as_str()).collect();
        println!("result ({} rows): {}", result.num_rows(), names.join(" | "));
        for i in 0..result.num_rows().min(10) {
            let row: Vec<String> =
                result.row(i).iter().map(|v| v.to_string()).collect();
            println!("  {}", row.join(" | "));
        }
        println!();
    }
    Ok(())
}
