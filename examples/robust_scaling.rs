//! The paper's headline experiment in miniature: scale the database past
//! the co-processor's cache and watch naive GPU execution collapse while
//! Data-Driven Chopping degrades gracefully (Figure 14).
//!
//! ```text
//! cargo run --release --example robust_scaling
//! ```

use robustq::prelude::*;
use robustq::storage::gen::ssb::SsbGenerator;
use robustq::workloads::ssb;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Size the GPU cache to the workload's working set at SF 3, so the
    // cache-thrashing crossover lands mid-sweep.
    let rows_per_sf = 4_000;
    let probe = SsbGenerator::new(3).with_rows_per_sf(rows_per_sf).generate();
    let cache: u64 = probe
        .all_column_ids()
        .map(|id| probe.column_size(id))
        .sum::<u64>()
        * 6
        / 10;
    let sim = SimConfig::default()
        .with_gpu_memory(cache * 5)
        .with_gpu_cache(cache);

    println!("GPU cache: {} KiB\n", cache / 1024);
    println!("{:>3}  {:>14}  {:>14}  {:>22}", "SF", "CPU Only", "GPU Only", "Data-Driven Chopping");
    for sf in [1u32, 2, 3, 4, 5, 6] {
        let db = SsbGenerator::new(sf).with_rows_per_sf(rows_per_sf).generate();
        let queries = ssb::workload(&db)?;
        let runner = WorkloadRunner::new(&db, sim.clone());
        let cfg = RunnerConfig::default().with_preload();
        let mut cells = Vec::new();
        for strategy in
            [Strategy::CpuOnly, Strategy::GpuPreferred, Strategy::DataDrivenChopping]
        {
            let report = runner.run(&queries, strategy, &cfg)?;
            cells.push(report.metrics.makespan);
        }
        println!(
            "{sf:>3}  {:>14}  {:>14}  {:>22}",
            cells[0].to_string(),
            cells[1].to_string(),
            cells[2].to_string()
        );
    }
    println!(
        "\nPast the cache crossover, GPU-only pays the bus on every query; \
         Data-Driven Chopping only uses the co-processor where its inputs \
         are resident and never falls behind the CPU."
    );
    Ok(())
}
