//! Heap contention in miniature (Figures 3 and 12): a fixed workload of
//! selection queries shared by more and more concurrent users. Naive GPU
//! execution degrades once concurrent operator footprints exceed the
//! co-processor heap; query chopping's thread pool keeps it flat.
//!
//! ```text
//! cargo run --release --example multi_user
//! ```

use robustq::prelude::*;
use robustq::storage::gen::ssb::SsbGenerator;
use robustq::workloads::micro;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = SsbGenerator::new(10).with_rows_per_sf(4_000).generate();
    let queries = micro::parallel_selection_workload(40);

    // Heap sized so ~7 concurrent selections fit (the paper's Section 3.4
    // break-even: n = M / (3.25 |C|) ≈ 7).
    let column_bytes: u64 = ["lo_discount", "lo_quantity"]
        .iter()
        .map(|c| db.column_size(db.column_id("lineorder", c).expect("column exists")))
        .sum();
    let heap = (3.45 * column_bytes as f64) as u64 * 7;
    let cache = column_bytes * 2;
    let sim = SimConfig::default()
        .with_gpu_memory(cache + heap)
        .with_gpu_cache(cache);
    let runner = WorkloadRunner::new(&db, sim);

    println!(
        "{:>5}  {:>12}  {:>20}  {:>12}  {:>12}",
        "users", "GPU Only", "Data-Driven Chopping", "GPU aborts", "chop aborts"
    );
    for users in [1usize, 4, 8, 12, 16, 20] {
        let cfg = RunnerConfig::default()
            .with_users(users)
            .with_placement_period(queries.len())
            .with_preload();
        let gpu = runner.run(&queries, Strategy::GpuPreferred, &cfg)?;
        let chop = runner.run(&queries, Strategy::DataDrivenChopping, &cfg)?;
        println!(
            "{users:>5}  {:>12}  {:>20}  {:>12}  {:>12}",
            gpu.metrics.makespan.to_string(),
            chop.metrics.makespan.to_string(),
            gpu.metrics.aborts,
            chop.metrics.aborts
        );
    }
    println!(
        "\nThe thread pool bounds how many operators allocate co-processor \
         memory at once, so chopping avoids the aborts entirely."
    );
    Ok(())
}
