//! Quickstart: generate a benchmark database, run SQL against it, and
//! execute the same query on the simulated CPU/GPU machine under the
//! robust placement strategy.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use robustq::engine::ops;
use robustq::prelude::*;
use robustq::sql::plan_sql;
use robustq::storage::gen::ssb::SsbGenerator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A Star Schema Benchmark database at scale factor 1 (downscaled).
    let db = SsbGenerator::new(1).with_rows_per_sf(20_000).generate();
    println!(
        "generated SSB SF1: {} lineorder rows, {} total bytes",
        db.table("lineorder").expect("lineorder exists").num_rows(),
        db.byte_size()
    );

    // 2. Plan a query through the SQL front end and execute it directly.
    let plan = plan_sql(
        "select d_year, sum(lo_revenue) as revenue \
         from lineorder, date \
         where lo_orderdate = d_datekey and lo_discount between 1 and 3 \
         group by d_year order by d_year",
        &db,
    )?;
    println!("\nphysical plan:\n{plan}");
    let result = ops::execute_plan(&plan, &db)?;
    println!("revenue by year:");
    for i in 0..result.num_rows() {
        let row = result.row(i);
        println!("  {}  {}", row[0], row[1]);
    }

    // 3. Execute the same query on the simulated machine: a CPU plus a
    //    memory-constrained GPU, placed by Data-Driven Chopping.
    let runner = WorkloadRunner::new(&db, SimConfig::default());
    let report = runner.run(
        std::slice::from_ref(&plan),
        Strategy::DataDrivenChopping,
        &RunnerConfig::default(),
    )?;
    println!(
        "\nsimulated execution under {}: {} (CPU ops: {}, GPU ops: {}, \
         CPU→GPU transfer: {})",
        report.strategy,
        report.metrics.makespan,
        report.metrics.ops_completed[robustq_sim::DeviceId::Cpu],
        report.metrics.ops_completed[robustq_sim::DeviceId::Gpu],
        report.metrics.h2d_time,
    );
    Ok(())
}
